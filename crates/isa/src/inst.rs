//! The instruction set and its 32-bit encoding.
//!
//! Encoding layout (bit 31 is the most significant):
//!
//! ```text
//! | 31..24 opcode | 23..20 A | 19..16 B | 15..12 C | 11..0 unused |
//! | 31..24 opcode | 23..20 A | 19..16 B | 15..0  imm16           |
//! ```
//!
//! Field `A` is usually the destination register, `B`/`C` are sources.
//! Control-flow instructions keep their target address in the low 16
//! bits (`imm16`), which is what a PECOS assertion block extracts at
//! run time with [`TARGET_MASK`] to validate the *actual bits* of the
//! upcoming jump before it executes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Bit position of the opcode field.
pub const OPCODE_SHIFT: u32 = 24;

/// Mask selecting the 16-bit target/immediate field of an encoded
/// instruction.
pub const TARGET_MASK: u32 = 0xFFFF;

/// Errors from [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte does not name an instruction.
    BadOpcode(u8),
    /// A reserved (unused) bit is set.
    ReservedBits(u32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "illegal opcode {op:#04x}"),
            DecodeError::ReservedBits(word) => {
                write!(f, "reserved bits set in instruction word {word:#010x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// One machine instruction. Registers are encoded 0–15.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Inst {
    /// No operation.
    Nop,
    /// Stop the executing thread normally.
    Halt,
    /// `rd ← imm` (zero-extended 16-bit immediate).
    Movi {
        /// Destination register.
        rd: u8,
        /// Immediate value.
        imm: u16,
    },
    /// `rd ← rs`.
    Mov {
        /// Destination register.
        rd: u8,
        /// Source register.
        rs: u8,
    },
    /// `rd ← rs + rt` (wrapping).
    Add {
        /// Destination register.
        rd: u8,
        /// First source.
        rs: u8,
        /// Second source.
        rt: u8,
    },
    /// `rd ← rs - rt` (wrapping).
    Sub {
        /// Destination register.
        rd: u8,
        /// First source.
        rs: u8,
        /// Second source.
        rt: u8,
    },
    /// `rd ← rs * rt` (wrapping).
    Mul {
        /// Destination register.
        rd: u8,
        /// First source.
        rs: u8,
        /// Second source.
        rt: u8,
    },
    /// `rd ← rs / rt`; raises a divide-by-zero exception when
    /// `rt == 0`. PECOS assertion blocks end in this instruction.
    Divu {
        /// Destination register.
        rd: u8,
        /// Dividend.
        rs: u8,
        /// Divisor.
        rt: u8,
    },
    /// `rd ← rs & rt`.
    And {
        /// Destination register.
        rd: u8,
        /// First source.
        rs: u8,
        /// Second source.
        rt: u8,
    },
    /// `rd ← rs | rt`.
    Or {
        /// Destination register.
        rd: u8,
        /// First source.
        rs: u8,
        /// Second source.
        rt: u8,
    },
    /// `rd ← rs ^ rt`.
    Xor {
        /// Destination register.
        rd: u8,
        /// First source.
        rs: u8,
        /// Second source.
        rt: u8,
    },
    /// `rd ← rs + imm` (sign-extended 16-bit immediate, wrapping).
    Addi {
        /// Destination register.
        rd: u8,
        /// Source register.
        rs: u8,
        /// Signed immediate.
        imm: i16,
    },
    /// `rd ← rs & imm` (zero-extended).
    Andi {
        /// Destination register.
        rd: u8,
        /// Source register.
        rs: u8,
        /// Immediate mask.
        imm: u16,
    },
    /// `rd ← (rs == 0) ? 1 : 0` — the logical NOT of the PECOS
    /// signature formula.
    Seqz {
        /// Destination register.
        rd: u8,
        /// Source register.
        rs: u8,
    },
    /// `rd ← mem[rs + imm]` (per-thread data memory, word addressed).
    Ld {
        /// Destination register.
        rd: u8,
        /// Base register.
        rs: u8,
        /// Signed word offset.
        imm: i16,
    },
    /// `mem[rs + imm] ← rt`.
    St {
        /// Base register.
        rs: u8,
        /// Source register.
        rt: u8,
        /// Signed word offset.
        imm: i16,
    },
    /// `rd ← text[imm]` — load a word from the text segment. Used by
    /// assertion blocks to read the actual bits of the protected CFI.
    Ldt {
        /// Destination register.
        rd: u8,
        /// Text address.
        addr: u16,
    },
    /// Unconditional jump (CFI).
    Jmp {
        /// Target text address.
        addr: u16,
    },
    /// Branch if `rs == rt` (CFI).
    Beq {
        /// First comparand.
        rs: u8,
        /// Second comparand.
        rt: u8,
        /// Target text address.
        addr: u16,
    },
    /// Branch if `rs != rt` (CFI).
    Bne {
        /// First comparand.
        rs: u8,
        /// Second comparand.
        rt: u8,
        /// Target text address.
        addr: u16,
    },
    /// Branch if `rs < rt` (unsigned, CFI).
    Blt {
        /// First comparand.
        rs: u8,
        /// Second comparand.
        rt: u8,
        /// Target text address.
        addr: u16,
    },
    /// Branch if `rs >= rt` (unsigned, CFI).
    Bge {
        /// First comparand.
        rs: u8,
        /// Second comparand.
        rt: u8,
        /// Target text address.
        addr: u16,
    },
    /// Push the return address and jump (CFI).
    Call {
        /// Target text address.
        addr: u16,
    },
    /// Pop the return address and jump to it (CFI with a
    /// runtime-determined target).
    Ret,
    /// Indirect call through a register (CFI with a
    /// runtime-determined target; models function pointers and dynamic
    /// library calls).
    Callr {
        /// Register holding the target address.
        rs: u8,
    },
    /// Indirect jump through a register (CFI with a
    /// runtime-determined target).
    Jr {
        /// Register holding the target address.
        rs: u8,
    },
    /// System call; the handler receives `num` and the argument
    /// registers.
    Sys {
        /// Syscall number.
        num: u8,
    },
    /// PECOS table check: raise divide-by-zero unless the value of
    /// `rs` is a member of the target table at text address `table`
    /// (layout: `count, target0, target1, …`).
    Pckt {
        /// Register holding the runtime target address.
        rs: u8,
        /// Text address of the valid-target table.
        table: u16,
    },
}

impl Inst {
    /// True for control-flow instructions — the instructions PECOS
    /// protects with assertion blocks.
    pub fn is_cfi(self) -> bool {
        matches!(
            self,
            Inst::Jmp { .. }
                | Inst::Beq { .. }
                | Inst::Bne { .. }
                | Inst::Blt { .. }
                | Inst::Bge { .. }
                | Inst::Call { .. }
                | Inst::Ret
                | Inst::Callr { .. }
                | Inst::Jr { .. }
        )
    }

    /// The statically encoded target of a CFI, if it has one.
    pub fn static_target(self) -> Option<u16> {
        match self {
            Inst::Jmp { addr }
            | Inst::Beq { addr, .. }
            | Inst::Bne { addr, .. }
            | Inst::Blt { addr, .. }
            | Inst::Bge { addr, .. }
            | Inst::Call { addr } => Some(addr),
            _ => None,
        }
    }

    /// True for conditional branches (two static successors).
    pub fn is_branch(self) -> bool {
        matches!(self, Inst::Beq { .. } | Inst::Bne { .. } | Inst::Blt { .. } | Inst::Bge { .. })
    }
}

const fn r3(op: u8, a: u8, b: u8, c: u8) -> u32 {
    ((op as u32) << OPCODE_SHIFT)
        | (((a & 0xF) as u32) << 20)
        | (((b & 0xF) as u32) << 16)
        | (((c & 0xF) as u32) << 12)
}

const fn ri(op: u8, a: u8, b: u8, imm: u16) -> u32 {
    ((op as u32) << OPCODE_SHIFT)
        | (((a & 0xF) as u32) << 20)
        | (((b & 0xF) as u32) << 16)
        | imm as u32
}

/// Encodes an instruction into its 32-bit word.
pub fn encode(inst: Inst) -> u32 {
    match inst {
        Inst::Nop => ri(0x00, 0, 0, 0),
        Inst::Halt => ri(0x01, 0, 0, 0),
        Inst::Movi { rd, imm } => ri(0x02, rd, 0, imm),
        Inst::Mov { rd, rs } => r3(0x03, rd, rs, 0),
        Inst::Add { rd, rs, rt } => r3(0x04, rd, rs, rt),
        Inst::Sub { rd, rs, rt } => r3(0x05, rd, rs, rt),
        Inst::Mul { rd, rs, rt } => r3(0x06, rd, rs, rt),
        Inst::Divu { rd, rs, rt } => r3(0x07, rd, rs, rt),
        Inst::And { rd, rs, rt } => r3(0x08, rd, rs, rt),
        Inst::Or { rd, rs, rt } => r3(0x09, rd, rs, rt),
        Inst::Xor { rd, rs, rt } => r3(0x0A, rd, rs, rt),
        Inst::Addi { rd, rs, imm } => ri(0x0C, rd, rs, imm as u16),
        Inst::Seqz { rd, rs } => r3(0x0D, rd, rs, 0),
        Inst::Andi { rd, rs, imm } => ri(0x0F, rd, rs, imm),
        Inst::Ld { rd, rs, imm } => ri(0x10, rd, rs, imm as u16),
        Inst::St { rs, rt, imm } => ri(0x11, rs, rt, imm as u16),
        Inst::Ldt { rd, addr } => ri(0x12, rd, 0, addr),
        Inst::Jmp { addr } => ri(0x20, 0, 0, addr),
        Inst::Beq { rs, rt, addr } => ri(0x21, rs, rt, addr),
        Inst::Bne { rs, rt, addr } => ri(0x22, rs, rt, addr),
        Inst::Blt { rs, rt, addr } => ri(0x23, rs, rt, addr),
        Inst::Bge { rs, rt, addr } => ri(0x24, rs, rt, addr),
        Inst::Call { addr } => ri(0x25, 0, 0, addr),
        Inst::Ret => ri(0x26, 0, 0, 0),
        Inst::Callr { rs } => r3(0x27, 0, rs, 0),
        Inst::Jr { rs } => r3(0x28, 0, rs, 0),
        Inst::Sys { num } => ri(0x30, 0, 0, num as u16),
        Inst::Pckt { rs, table } => ri(0x31, 0, rs, table),
    }
}

/// Decodes a 32-bit word into an instruction.
///
/// Decoding is **strict**: reserved bits must be zero, as on a densely
/// encoded real ISA. A bit flip landing in an unused field therefore
/// raises an illegal-instruction exception instead of being silently
/// ignored — which is what makes instruction-stream fault injection
/// behave realistically.
///
/// # Errors
///
/// Returns [`DecodeError::BadOpcode`] for opcode bytes that name no
/// instruction and [`DecodeError::ReservedBits`] for set bits in
/// unused fields.
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    let inst = decode_fields(word)?;
    if encode(inst) != word {
        return Err(DecodeError::ReservedBits(word));
    }
    Ok(inst)
}

fn decode_fields(word: u32) -> Result<Inst, DecodeError> {
    let op = (word >> OPCODE_SHIFT) as u8;
    let a = ((word >> 20) & 0xF) as u8;
    let b = ((word >> 16) & 0xF) as u8;
    let c = ((word >> 12) & 0xF) as u8;
    let imm = (word & 0xFFFF) as u16;
    Ok(match op {
        0x00 => Inst::Nop,
        0x01 => Inst::Halt,
        0x02 => Inst::Movi { rd: a, imm },
        0x03 => Inst::Mov { rd: a, rs: b },
        0x04 => Inst::Add { rd: a, rs: b, rt: c },
        0x05 => Inst::Sub { rd: a, rs: b, rt: c },
        0x06 => Inst::Mul { rd: a, rs: b, rt: c },
        0x07 => Inst::Divu { rd: a, rs: b, rt: c },
        0x08 => Inst::And { rd: a, rs: b, rt: c },
        0x09 => Inst::Or { rd: a, rs: b, rt: c },
        0x0A => Inst::Xor { rd: a, rs: b, rt: c },
        0x0C => Inst::Addi { rd: a, rs: b, imm: imm as i16 },
        0x0D => Inst::Seqz { rd: a, rs: b },
        0x0F => Inst::Andi { rd: a, rs: b, imm },
        0x10 => Inst::Ld { rd: a, rs: b, imm: imm as i16 },
        0x11 => Inst::St { rs: a, rt: b, imm: imm as i16 },
        0x12 => Inst::Ldt { rd: a, addr: imm },
        0x20 => Inst::Jmp { addr: imm },
        0x21 => Inst::Beq { rs: a, rt: b, addr: imm },
        0x22 => Inst::Bne { rs: a, rt: b, addr: imm },
        0x23 => Inst::Blt { rs: a, rt: b, addr: imm },
        0x24 => Inst::Bge { rs: a, rt: b, addr: imm },
        0x25 => Inst::Call { addr: imm },
        0x26 => Inst::Ret,
        0x27 => Inst::Callr { rs: b },
        0x28 => Inst::Jr { rs: b },
        0x30 => Inst::Sys { num: imm as u8 },
        0x31 => Inst::Pckt { rs: b, table: imm },
        other => return Err(DecodeError::BadOpcode(other)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_samples() -> Vec<Inst> {
        vec![
            Inst::Nop,
            Inst::Halt,
            Inst::Movi { rd: 3, imm: 0xBEEF },
            Inst::Mov { rd: 1, rs: 2 },
            Inst::Add { rd: 1, rs: 2, rt: 3 },
            Inst::Sub { rd: 4, rs: 5, rt: 6 },
            Inst::Mul { rd: 7, rs: 8, rt: 9 },
            Inst::Divu { rd: 10, rs: 11, rt: 12 },
            Inst::And { rd: 13, rs: 14, rt: 15 },
            Inst::Or { rd: 0, rs: 1, rt: 2 },
            Inst::Xor { rd: 3, rs: 4, rt: 5 },
            Inst::Addi { rd: 6, rs: 7, imm: -42 },
            Inst::Seqz { rd: 8, rs: 9 },
            Inst::Andi { rd: 10, rs: 11, imm: 0xFFFF },
            Inst::Ld { rd: 12, rs: 13, imm: 100 },
            Inst::St { rs: 14, rt: 15, imm: -1 },
            Inst::Ldt { rd: 1, addr: 500 },
            Inst::Jmp { addr: 1234 },
            Inst::Beq { rs: 1, rt: 2, addr: 10 },
            Inst::Bne { rs: 3, rt: 4, addr: 20 },
            Inst::Blt { rs: 5, rt: 6, addr: 30 },
            Inst::Bge { rs: 7, rt: 8, addr: 40 },
            Inst::Call { addr: 99 },
            Inst::Ret,
            Inst::Callr { rs: 5 },
            Inst::Jr { rs: 6 },
            Inst::Sys { num: 7 },
            Inst::Pckt { rs: 12, table: 600 },
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for inst in all_samples() {
            let word = encode(inst);
            assert_eq!(decode(word), Ok(inst), "round trip failed for {inst:?}");
        }
    }

    #[test]
    fn cfi_classification() {
        let cfis: Vec<Inst> = all_samples().into_iter().filter(|i| i.is_cfi()).collect();
        assert_eq!(cfis.len(), 9);
        assert!(Inst::Jmp { addr: 0 }.is_cfi());
        assert!(!Inst::Pckt { rs: 0, table: 0 }.is_cfi(), "assertion checks add no CFIs");
        assert!(!Inst::Sys { num: 0 }.is_cfi());
    }

    #[test]
    fn static_targets() {
        assert_eq!(Inst::Jmp { addr: 7 }.static_target(), Some(7));
        assert_eq!(Inst::Beq { rs: 0, rt: 0, addr: 9 }.static_target(), Some(9));
        assert_eq!(Inst::Ret.static_target(), None);
        assert_eq!(Inst::Callr { rs: 1 }.static_target(), None);
    }

    #[test]
    fn target_lives_in_low_16_bits() {
        for inst in all_samples() {
            if let Some(t) = inst.static_target() {
                assert_eq!(encode(inst) & TARGET_MASK, t as u32);
            }
        }
    }

    #[test]
    fn bad_opcode_decodes_to_error() {
        let word = 0xFFu32 << OPCODE_SHIFT;
        assert_eq!(decode(word), Err(DecodeError::BadOpcode(0xFF)));
        let word = 0x0Bu32 << OPCODE_SHIFT; // gap in the opcode map
        assert!(decode(word).is_err());
    }

    #[test]
    fn register_fields_mask_to_four_bits() {
        let word = encode(Inst::Mov { rd: 31, rs: 18 });
        let decoded = decode(word).unwrap();
        assert_eq!(decoded, Inst::Mov { rd: 15, rs: 2 });
    }
}
