//! The predecoded fast-path execution cache.
//!
//! The interpreter's original hot loop re-decoded every fetched word on
//! every step — and strict decoding ([`decode`]) is expensive, because
//! it re-encodes the candidate instruction to reject set reserved bits.
//! The [`DecodedCache`] decodes each text word **once**, on first
//! execution, into a slot that [`Machine::step`](crate::Machine::step)
//! dispatches from directly. A word that fails to decode is cached as
//! *poisoned* and keeps raising the same `SIGILL`-class exception the
//! slow path would.
//!
//! Because the text segment is mutable at run time (the fault injector
//! flips live instruction bits), every cached artifact carries an
//! **invalidation protocol**:
//!
//! * [`Machine::store_text`](crate::Machine::store_text) writes one
//!   word and invalidates exactly the state derived from it: the
//!   decoded slot, any fused-block plan whose input range covers the
//!   word, and any materialized `PCKT` target table containing it.
//! * [`Machine::text_mut`](crate::Machine::text_mut) hands out the raw
//!   slice, so it conservatively invalidates everything.
//!
//! On top of the per-word cache sit two PECOS-specific fast paths:
//!
//! * **Sorted target tables** — a `PCKT` membership test materializes
//!   its in-text table `{count, t0, t1, …}` into a sorted vector once
//!   and binary-searches it afterwards, replacing the O(n) scan of the
//!   live text. Build-time faults (count word out of text, corrupted
//!   count, table overrunning the segment) are cached as the *same*
//!   [`ExceptionKind`] the scan would raise.
//! * **Fused assertion superstep** — an installed straight-line region
//!   (a PECOS assertion block) whose instructions match one of the
//!   instrumenter's four shapes is compiled to a [`FusedPlan`] that
//!   [`Machine::run`](crate::Machine::run) can apply in O(1): scratch
//!   registers get their precomputed final values and the PC
//!   short-circuits to the protected CFI when the check passes, while a
//!   failing check raises the identical divide-by-zero at the identical
//!   PC (and books the identical step counts) as word-at-a-time
//!   execution.

use crate::inst::{decode, Inst};
use crate::machine::ExceptionKind;

/// One predecoded text word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Slot {
    /// Not decoded since load or last invalidation.
    Cold,
    /// Decoded successfully.
    Hot(Inst),
    /// The word does not decode; executing it raises
    /// [`ExceptionKind::IllegalInstruction`].
    Poisoned,
}

/// A materialized `PCKT` target table.
#[derive(Debug, Clone)]
pub(crate) struct TableEntry {
    /// Words after the count word that the entry depends on (0 for
    /// build-time faults, which depend only on the count word).
    pub(crate) span: u32,
    /// Sorted member words, or the exception the slow path would raise
    /// before the membership test.
    pub result: Result<Vec<u32>, ExceptionKind>,
}

/// Precomputed effect of one fused assertion block.
///
/// Register/PC effects are derived from the exact instruction
/// sequences the PECOS instrumenter emits (scratch registers
/// `r11`–`r13`); a region that does not match a known shape stays
/// [`PlanSlot::Unfusable`] and executes word-at-a-time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FusedPlan {
    /// A block whose inputs are all static (`jmp`/`call`/branch
    /// protection): outcome and final scratch values are known at
    /// build time. `r13` always ends as `pass as u64`.
    Static {
        /// Final `r11`, for branch blocks (two-target formula).
        r11: Option<u64>,
        /// Final `r12` (the masked CFI target bits).
        r12: u64,
        /// Whether the assertion passes.
        pass: bool,
    },
    /// `ret` protection: `ld r12, [r15+0]; pckt r12, table`.
    StackTable {
        /// Text address of the shared return-site table.
        table: u16,
    },
    /// `callr`/`jr` protection: `mov r12, rs; pckt r12, table`.
    RegTable {
        /// The register holding the runtime target.
        src: u8,
        /// Text address of the valid-target table.
        table: u16,
    },
}

/// Build state of one installed region's plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PlanSlot {
    /// Needs (re)building from the current text.
    Stale,
    /// The region does not match a fusable shape; execute it
    /// word-at-a-time.
    Unfusable,
    /// Ready to apply.
    Ready(FusedPlan),
}

/// The machine's per-program decoded state. See the module docs for
/// the invalidation protocol.
#[derive(Debug, Clone)]
pub(crate) struct DecodedCache {
    slots: Vec<Slot>,
    /// Installed fusable regions `[start, end)`, sorted and disjoint;
    /// `end` is the protected CFI's address (also an input word for
    /// static plans, which read it via `ldt`).
    regions: Vec<(u16, u16)>,
    plans: Vec<PlanSlot>,
    /// `region_at_start[pc]` = region index + 1, or 0 — O(1) block
    /// entry detection in the run loop.
    region_at_start: Vec<u32>,
    /// Materialized `PCKT` tables, keyed by table address. Programs
    /// hold a handful of tables, so an association list beats a map.
    tables: Vec<(u16, TableEntry)>,
}

impl DecodedCache {
    pub fn new(text_len: usize) -> Self {
        DecodedCache {
            slots: vec![Slot::Cold; text_len],
            regions: Vec::new(),
            plans: Vec::new(),
            region_at_start: Vec::new(),
            tables: Vec::new(),
        }
    }

    /// Decodes `word` at `pc`, filling the slot on a miss. `None`
    /// means the word is poisoned (illegal instruction).
    #[inline]
    pub fn decode_at(&mut self, pc: usize, word: u32) -> Option<Inst> {
        match self.slots[pc] {
            Slot::Hot(inst) => Some(inst),
            Slot::Poisoned => None,
            Slot::Cold => match decode(word) {
                Ok(inst) => {
                    self.slots[pc] = Slot::Hot(inst);
                    Some(inst)
                }
                Err(_) => {
                    self.slots[pc] = Slot::Poisoned;
                    None
                }
            },
        }
    }

    /// Per-word invalidation: drops the decoded slot, marks any plan
    /// whose input range `[start, end]` covers the word stale, and
    /// drops any materialized table containing it.
    pub fn invalidate_word(&mut self, addr: usize) {
        if let Some(slot) = self.slots.get_mut(addr) {
            *slot = Slot::Cold;
        }
        if addr > u16::MAX as usize {
            return;
        }
        let a = addr as u16;
        // Regions are disjoint but a word can be the *end* of one block
        // (its CFI, read via `ldt`) and sit before the start of the
        // next, so check the two nearest candidates.
        let i = self.regions.partition_point(|&(start, _)| start <= a);
        for j in i.saturating_sub(2)..i {
            let (start, end) = self.regions[j];
            if a >= start && a <= end {
                self.plans[j] = PlanSlot::Stale;
            }
        }
        self.tables.retain(|&(table, ref entry)| {
            !(a == table || (a > table && u32::from(a - table) <= entry.span))
        });
    }

    /// Conservative full invalidation (the `text_mut` escape hatch).
    pub fn invalidate_all(&mut self) {
        self.slots.fill(Slot::Cold);
        self.plans.fill(PlanSlot::Stale);
        self.tables.clear();
    }

    /// Registers fusable candidate regions (sorted, deduplicated,
    /// clipped to the text segment). Replaces any previous set.
    pub fn install_regions(&mut self, ranges: &[(u16, u16)]) {
        let mut regions: Vec<(u16, u16)> = ranges
            .iter()
            .copied()
            .filter(|&(start, end)| start < end && (end as usize) < self.slots.len())
            .collect();
        regions.sort_unstable();
        // Drop any region overlapping its predecessor (defensive; the
        // instrumenter emits disjoint blocks).
        regions.dedup_by(|next, prev| next.0 <= prev.1);
        self.plans = vec![PlanSlot::Stale; regions.len()];
        self.region_at_start = vec![0; self.slots.len()];
        for (i, &(start, _)) in regions.iter().enumerate() {
            self.region_at_start[start as usize] = i as u32 + 1;
        }
        self.regions = regions;
    }

    /// True when any fusable region is installed.
    #[inline]
    pub fn has_regions(&self) -> bool {
        !self.regions.is_empty()
    }

    /// The region starting exactly at `pc`, if any.
    #[inline]
    pub fn region_starting_at(&self, pc: u16) -> Option<usize> {
        match self.region_at_start.get(pc as usize) {
            Some(&i) if i != 0 => Some(i as usize - 1),
            _ => None,
        }
    }

    /// Bounds of an installed region.
    #[inline]
    pub fn region(&self, idx: usize) -> (u16, u16) {
        self.regions[idx]
    }

    /// The region's plan, rebuilding from the current text if stale.
    pub fn plan(&mut self, text: &[u32], idx: usize) -> PlanSlot {
        if self.plans[idx] == PlanSlot::Stale {
            self.plans[idx] = Self::build_plan(text, self.regions[idx]);
        }
        self.plans[idx]
    }

    fn build_plan(text: &[u32], (start, end): (u16, u16)) -> PlanSlot {
        let (s, e) = (start as usize, end as usize);
        if e >= text.len() {
            return PlanSlot::Unfusable;
        }
        let mut insts = Vec::with_capacity(e - s);
        for &word in &text[s..e] {
            match decode(word) {
                Ok(inst) => insts.push(inst),
                Err(_) => return PlanSlot::Unfusable,
            }
        }
        use Inst::*;
        match insts.as_slice() {
            // jmp/call protection (Figure 7 degenerate case).
            [Ldt { rd: 12, addr }, Andi { rd: 12, rs: 12, imm: 0xFFFF }, Movi { rd: 13, imm: t }, Sub { rd: 13, rs: 12, rt: 13 }, Seqz { rd: 13, rs: 13 }, Divu { rd: 12, rs: 12, rt: 13 }]
                if *addr == end =>
            {
                let r12 = (text[e] & 0xFFFF) as u64;
                let pass = r12 == *t as u64;
                PlanSlot::Ready(FusedPlan::Static { r11: None, r12, pass })
            }
            // Conditional-branch protection (the literal Figure 7
            // two-target formula).
            [Ldt { rd: 12, addr }, Andi { rd: 12, rs: 12, imm: 0xFFFF }, Movi { rd: 13, imm: t }, Sub { rd: 13, rs: 12, rt: 13 }, Movi { rd: 11, imm: ft }, Sub { rd: 11, rs: 12, rt: 11 }, Mul { rd: 13, rs: 13, rt: 11 }, Seqz { rd: 13, rs: 13 }, Divu { rd: 12, rs: 12, rt: 13 }]
                if *addr == end =>
            {
                let r12 = (text[e] & 0xFFFF) as u64;
                let taken = r12.wrapping_sub(*t as u64);
                let fall = r12.wrapping_sub(*ft as u64);
                let pass = taken.wrapping_mul(fall) == 0;
                PlanSlot::Ready(FusedPlan::Static { r11: Some(fall), r12, pass })
            }
            // ret protection: runtime target on top of the stack.
            [Ld { rd: 12, rs: 15, imm: 0 }, Pckt { rs: 12, table }] => {
                PlanSlot::Ready(FusedPlan::StackTable { table: *table })
            }
            // callr/jr protection: runtime target in a register.
            [Mov { rd: 12, rs }, Pckt { rs: 12, table }] => {
                PlanSlot::Ready(FusedPlan::RegTable { src: *rs, table: *table })
            }
            _ => PlanSlot::Unfusable,
        }
    }

    /// The materialized table at `table`, building it on a miss.
    /// `max_count` is [`MachineConfig::max_pckt_table`]
    /// (crate::MachineConfig::max_pckt_table).
    pub fn table(&mut self, text: &[u32], table: u16, max_count: u32) -> &TableEntry {
        if let Some(i) = self.tables.iter().position(|&(t, _)| t == table) {
            return &self.tables[i].1;
        }
        let entry = Self::build_table(text, table, max_count);
        self.tables.push((table, entry));
        &self.tables.last().expect("just pushed").1
    }

    /// Replicates the slow path's fault order exactly: count word out
    /// of text, corrupted count, table overrunning the segment — then
    /// membership.
    fn build_table(text: &[u32], table: u16, max_count: u32) -> TableEntry {
        let Some(&count) = text.get(table as usize) else {
            return TableEntry {
                span: 0,
                result: Err(ExceptionKind::TextFault { addr: table as u32 }),
            };
        };
        if count > max_count {
            // A corrupted table counts as a failed assertion.
            return TableEntry { span: 0, result: Err(ExceptionKind::DivideByZero) };
        }
        let start = table as usize + 1;
        let end = start + count as usize;
        if end > text.len() {
            return TableEntry {
                span: 0,
                result: Err(ExceptionKind::TextFault { addr: end as u32 }),
            };
        }
        let mut words = text[start..end].to_vec();
        words.sort_unstable();
        TableEntry { span: count, result: Ok(words) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::encode;

    fn words(insts: &[Inst]) -> Vec<u32> {
        insts.iter().map(|&i| encode(i)).collect()
    }

    #[test]
    fn decode_at_caches_and_poisons() {
        let text = [encode(Inst::Nop), 0xFF00_0000];
        let mut cache = DecodedCache::new(text.len());
        assert_eq!(cache.decode_at(0, text[0]), Some(Inst::Nop));
        assert_eq!(cache.decode_at(0, text[0]), Some(Inst::Nop));
        assert_eq!(cache.decode_at(1, text[1]), None);
        // Poisoned slots stay poisoned until invalidated.
        assert_eq!(cache.decode_at(1, encode(Inst::Halt)), None);
        cache.invalidate_word(1);
        assert_eq!(cache.decode_at(1, encode(Inst::Halt)), Some(Inst::Halt));
    }

    #[test]
    fn table_build_sorts_and_caches_faults() {
        // {count=3, 9, 2, 5} at address 1.
        let text = vec![encode(Inst::Nop), 3, 9, 2, 5];
        let mut cache = DecodedCache::new(text.len());
        let entry = cache.table(&text, 1, 1_024);
        assert_eq!(entry.result.as_ref().unwrap(), &vec![2, 5, 9]);
        // Overrunning table faults with the slow path's address.
        let mut cache = DecodedCache::new(text.len());
        let entry = cache.table(&text, 3, 1_024);
        assert_eq!(entry.result, Err(ExceptionKind::TextFault { addr: 6 }));
        // Corrupted count is a failed assertion.
        let mut cache = DecodedCache::new(text.len());
        let entry = cache.table(&text, 1, 2);
        assert_eq!(entry.result, Err(ExceptionKind::DivideByZero));
    }

    #[test]
    fn table_invalidation_covers_count_and_members() {
        let text = vec![2, 7, 8, encode(Inst::Halt)];
        let mut cache = DecodedCache::new(text.len());
        cache.table(&text, 0, 16);
        cache.invalidate_word(3); // outside the table
        assert_eq!(cache.tables.len(), 1);
        cache.invalidate_word(2); // member word
        assert_eq!(cache.tables.len(), 0);
        cache.table(&text, 0, 16);
        cache.invalidate_word(0); // count word
        assert_eq!(cache.tables.len(), 0);
    }

    #[test]
    fn static_plan_precomputes_pass_and_fail() {
        // Block at [0, 6): protect `jmp 9` at address 6.
        let mut text = words(&[
            Inst::Ldt { rd: 12, addr: 6 },
            Inst::Andi { rd: 12, rs: 12, imm: 0xFFFF },
            Inst::Movi { rd: 13, imm: 9 },
            Inst::Sub { rd: 13, rs: 12, rt: 13 },
            Inst::Seqz { rd: 13, rs: 13 },
            Inst::Divu { rd: 12, rs: 12, rt: 13 },
            Inst::Jmp { addr: 9 },
        ]);
        let mut cache = DecodedCache::new(text.len());
        cache.install_regions(&[(0, 6)]);
        assert_eq!(
            cache.plan(&text, 0),
            PlanSlot::Ready(FusedPlan::Static { r11: None, r12: 9, pass: true })
        );
        // Corrupt the CFI's target bits: the stale plan must rebuild to
        // a failing one.
        text[6] = encode(Inst::Jmp { addr: 10 });
        cache.invalidate_word(6);
        assert_eq!(
            cache.plan(&text, 0),
            PlanSlot::Ready(FusedPlan::Static { r11: None, r12: 10, pass: false })
        );
    }

    #[test]
    fn unknown_shapes_are_unfusable() {
        let text = words(&[Inst::Nop, Inst::Nop, Inst::Halt]);
        let mut cache = DecodedCache::new(text.len());
        cache.install_regions(&[(0, 2)]);
        assert_eq!(cache.plan(&text, 0), PlanSlot::Unfusable);
        assert_eq!(cache.region_starting_at(0), Some(0));
        assert_eq!(cache.region_starting_at(1), None);
    }
}
