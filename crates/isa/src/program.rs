//! Assembled programs: text segment plus symbol table.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::inst::decode;

/// An assembled program.
///
/// Text addresses are word indices (one instruction per word). The
/// symbol table maps every label to its resolved address; PECOS reads
/// back the addresses of its generated labels from here to learn where
/// its assertion blocks landed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    /// The text segment: one encoded instruction (or data word) per
    /// element.
    pub text: Vec<u32>,
    /// Label → address.
    pub symbols: BTreeMap<String, u16>,
    /// Entry point (the `start` label if present, else address 0).
    pub entry: u16,
}

impl Program {
    /// Address of a label.
    pub fn symbol(&self, name: &str) -> Option<u16> {
        self.symbols.get(name).copied()
    }

    /// Length of the text segment in words.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// True when the program has no text.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Human-readable disassembly listing (labels, addresses, decoded
    /// instructions; undecodable words print as `.word`).
    pub fn disassemble(&self) -> String {
        let mut by_addr: BTreeMap<u16, Vec<&str>> = BTreeMap::new();
        for (name, &addr) in &self.symbols {
            by_addr.entry(addr).or_default().push(name);
        }
        let mut out = String::new();
        for (addr, &word) in self.text.iter().enumerate() {
            if let Some(labels) = by_addr.get(&(addr as u16)) {
                for l in labels {
                    out.push_str(l);
                    out.push_str(":\n");
                }
            }
            match decode(word) {
                Ok(inst) => out.push_str(&format!("  {addr:5}: {inst:?}\n")),
                Err(_) => out.push_str(&format!("  {addr:5}: .word {word:#010x}\n")),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{encode, Inst};

    #[test]
    fn symbols_and_disassembly() {
        let mut symbols = BTreeMap::new();
        symbols.insert("start".to_owned(), 0u16);
        symbols.insert("data".to_owned(), 2u16);
        let program = Program {
            text: vec![encode(Inst::Movi { rd: 1, imm: 5 }), encode(Inst::Halt), 0xFFFF_FFFF],
            symbols,
            entry: 0,
        };
        assert_eq!(program.symbol("start"), Some(0));
        assert_eq!(program.symbol("missing"), None);
        assert_eq!(program.len(), 3);
        let listing = program.disassemble();
        assert!(listing.contains("start:"));
        assert!(listing.contains("Movi"));
        assert!(listing.contains(".word"));
    }
}
