//! The superblock-compiling direct-threaded execution engine.
//!
//! PR 4's [`DecodedCache`] removed per-step *decoding*, but every
//! instruction still re-entered the interpreter's dispatch `match`.
//! This module removes the per-instruction dispatch too: when
//! [`Machine::run`](crate::Machine::run) keeps returning to the same
//! program counter with a single runnable thread, the address is
//! compiled into a **superblock** — a straight-line region from the
//! entry PC to the first side-exit (conditional branch, `PCKT` table
//! check, syscall, fused-assertion fail edge, halt, or an undecodable
//! word) — represented as a flat array of pre-bound fn-pointer ops
//! ending in a typed [`ExitKind`] descriptor. Unconditional control
//! flow does not end a superblock: `jmp` and `call` **chain** straight
//! through their targets, and an installed PECOS assertion block whose
//! [`FusedPlan`] is ready is embedded as a single fused op that retires
//! the whole block and chains on through the protected CFI, so the
//! instrumented client's hot loop runs as a handful of compiled plans
//! with no interpreter dispatch between instructions.
//!
//! # Exactness contract
//!
//! A superblock must be observationally identical to single-stepping:
//!
//! * every op carries its own PC and retired-step weight, so
//!   `total_steps`/per-thread step counts, exception PCs and kinds,
//!   and the final [`StepOutcome::Executed`](crate::StepOutcome) PC
//!   are bit-identical to the slow engine;
//! * a block only runs when the remaining `max_steps` budget covers
//!   its whole weight, so budget cutoffs land on the same instruction
//!   the slow engine would stop at;
//! * a fused table op whose stack pointer would make the underlying
//!   `ld` fault **deopts**: nothing of the op retires and the thread
//!   is left at the op's PC for the word-at-a-time path to raise the
//!   exact memory fault.
//!
//! # Invalidation
//!
//! Every block records the set of text words it was compiled from
//! (instruction words, fused-region inputs including the protected
//! CFI, and any embedded `PCKT` table's count and member words).
//! [`Machine::store_text`](crate::Machine::store_text) eagerly removes
//! every block covering the written word via the per-word cover index,
//! and belt-and-braces, the cache keeps a monotonic **generation
//! counter**: each write stamps the word's generation, each block
//! records the generation it was compiled at, and a block whose input
//! words have a newer generation can never fire — even if the eager
//! cover index were ever wrong, a stale plan is unreachable.

use crate::decoded::{DecodedCache, FusedPlan, PlanSlot};
use crate::inst::Inst;
use crate::machine::{ExceptionKind, SyscallHandler, SyscallRequest};
use crate::ThreadId;

/// Ops per superblock before compilation stops chaining. Bounds both
/// compile time and the budget a block demands before it may run.
const MAX_OPS: usize = 256;

/// Dispatch visits to an uncompiled entry PC before it is compiled.
/// [`SuperblockCache::seed`] primes seeded entries to this threshold
/// so they compile on first entry.
const HOT_THRESHOLD: u16 = 2;

/// Why compilation of a superblock stopped — the typed exit descriptor
/// at the end of every compiled plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitKind {
    /// A conditional branch: the terminal op picks the target at run
    /// time.
    Branch,
    /// An indirect transfer (`ret`/`callr`/`jr`): the terminal op
    /// computes the target at run time.
    Indirect,
    /// A syscall: the block falls through to the next instruction
    /// after the handler returns.
    Syscall,
    /// A standalone `PCKT` table check (outside a fused region).
    TableCheck,
    /// An embedded fused assertion whose check statically fails: the
    /// terminal op raises the assertion's divide-by-zero.
    FusedFail,
    /// `halt`.
    Halt,
    /// The next word does not decode: the terminal op raises the
    /// illegal-instruction exception.
    Poisoned,
    /// Chaining reached a PC already compiled into this block (a
    /// loop back edge); the block falls through to it.
    Loop,
    /// Chaining left the text segment; the next fetch faults.
    OutOfText,
    /// The op-count cap was reached.
    ChainLimit,
}

impl ExitKind {
    /// Short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ExitKind::Branch => "branch",
            ExitKind::Indirect => "indirect",
            ExitKind::Syscall => "syscall",
            ExitKind::TableCheck => "table-check",
            ExitKind::FusedFail => "fused-fail",
            ExitKind::Halt => "halt",
            ExitKind::Poisoned => "poisoned",
            ExitKind::Loop => "loop",
            ExitKind::OutOfText => "out-of-text",
            ExitKind::ChainLimit => "chain-limit",
        }
    }
}

/// A materialized `PCKT` table embedded in a block, or the build-time
/// fault the slow path would raise before the membership test.
#[derive(Debug, Clone)]
pub(crate) enum TableData {
    /// Sorted member words.
    Members(Box<[u32]>),
    /// The cached build fault (corrupted count, count/table out of
    /// text), raised with the op's own PC.
    Fault(ExceptionKind),
}

impl TableData {
    fn contains(&self, value: u32) -> bool {
        match self {
            TableData::Members(words) => words.binary_search(&value).is_ok(),
            TableData::Fault(_) => false,
        }
    }
}

/// Out-of-line data for ops that need more than the inline fields:
/// embedded fused assertion blocks and standalone `PCKT` tables.
#[derive(Debug, Clone)]
pub(crate) enum Aux {
    /// Statically-resolved assertion (`jmp`/`call`/branch protection):
    /// scratch-register finals and pass/fail precomputed.
    FusedStatic {
        /// Final `r11` (branch blocks only).
        r11: Option<u64>,
        /// Final `r12` (the masked CFI target bits).
        r12: u64,
        /// Precomputed check result.
        pass: bool,
    },
    /// `ret` protection: runtime target on top of the stack.
    FusedStackTable {
        /// Embedded sorted target table.
        table: TableData,
    },
    /// `callr`/`jr` protection: runtime target in a register.
    FusedRegTable {
        /// Register holding the target.
        src: u8,
        /// Embedded sorted target table.
        table: TableData,
    },
    /// A standalone `PCKT` membership check.
    Pckt {
        /// Embedded sorted target table or cached build fault.
        table: TableData,
    },
}

/// What an op told the block executor to do next.
pub(crate) enum Flow {
    /// Retired; continue with the next op.
    Next,
    /// Retired; the op transferred control — `OpCtx::pc` holds the
    /// next PC and the block is done.
    Done,
    /// Retired; the thread halted.
    Halt,
    /// Retired; raise this exception at this PC.
    Fault(u16, ExceptionKind),
    /// **Nothing retired**: bail out with the thread left at this
    /// op's PC for the word-at-a-time path.
    Deopt,
}

/// Mutable machine state a block executes against. Field-split from
/// the owning thread so ops touch registers and data directly.
pub(crate) struct OpCtx<'a> {
    pub regs: &'a mut [u64; 16],
    pub data: &'a mut [u64],
    pub text: &'a [u32],
    pub sys: &'a mut dyn SyscallHandler,
    pub tid: ThreadId,
    pub data_words: i64,
    pub aux: &'a [Aux],
    /// Out-parameter: next PC after a [`Flow::Done`] op.
    pub pc: u16,
    /// Fused assertion blocks executed (feeds the machine's
    /// superstep counter).
    pub supersteps: u64,
}

type OpFn = fn(&mut OpCtx<'_>, &Op) -> Flow;

/// One pre-bound handler in a compiled plan: the direct-threaded unit
/// of execution.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Op {
    pub exec: OpFn,
    /// Address of the compiled instruction (fused ops: region start).
    pub pc: u16,
    /// PC reported when this op is the last to retire (fused ops: the
    /// region's final instruction).
    pub out_pc: u16,
    /// Retired-step weight (fused ops: the region length).
    pub weight: u16,
    pub rd: u8,
    pub rs: u8,
    pub rt: u8,
    /// Immediate/address, or an index into the block's [`Aux`] table.
    pub imm: i64,
}

/// A compiled superblock.
#[derive(Debug, Clone)]
pub(crate) struct Superblock {
    pub entry: u16,
    pub ops: Box<[Op]>,
    pub aux: Box<[Aux]>,
    /// Sorted, deduplicated text words this block was compiled from.
    pub words: Box<[u16]>,
    /// Steps the whole block retires (the budget it demands).
    pub total_steps: u64,
    /// Thread PC when every op completes with [`Flow::Next`].
    pub fallthrough: u16,
    pub exit: ExitKind,
    /// Generation the block was compiled at; stale inputs make the
    /// block unreachable (see module docs).
    pub gen: u64,
}

/// Public per-block summary for CLI/bench reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperblockInfo {
    /// Entry PC.
    pub entry: u16,
    /// Compiled ops in the plan.
    pub ops: usize,
    /// Instructions the plan retires per execution (chain length).
    pub steps: u64,
    /// Exit descriptor name.
    pub exit: &'static str,
}

/// Public snapshot of superblock-engine activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SuperblockStats {
    /// Blocks compiled (including recompilations after invalidation).
    pub compiled: u64,
    /// Blocks discarded by text-write invalidation.
    pub invalidated: u64,
    /// Block executions.
    pub entered: u64,
    /// Instructions retired inside blocks.
    pub block_steps: u64,
    /// Currently resident blocks, by entry PC.
    pub blocks: Vec<SuperblockInfo>,
}

/// The per-machine superblock store: compiled plans keyed by entry PC,
/// a per-word cover index for exact invalidation, per-word write
/// generations, and entry-hotness counters.
#[derive(Debug, Clone)]
pub(crate) struct SuperblockCache {
    entries: Vec<Option<Box<Superblock>>>,
    /// `covers[word]` = entry PCs of blocks compiled from that word.
    covers: Vec<Vec<u16>>,
    /// Generation of the last write to each word.
    word_gen: Vec<u64>,
    /// Monotonic invalidation-event counter.
    generation: u64,
    hot: Vec<u16>,
    compiled: u64,
    invalidated: u64,
    pub entered: u64,
    pub block_steps: u64,
}

impl SuperblockCache {
    pub fn new(text_len: usize) -> Self {
        SuperblockCache {
            entries: vec![None; text_len],
            covers: vec![Vec::new(); text_len],
            word_gen: vec![0; text_len],
            generation: 0,
            hot: vec![0; text_len],
            compiled: 0,
            invalidated: 0,
            entered: 0,
            block_steps: 0,
        }
    }

    /// Current generation, stamped into blocks at compile time.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Primes entry PCs to the hotness threshold so they compile on
    /// first dispatch (PECOS seeds CFI-block heads here).
    pub fn seed(&mut self, entries: &[u16]) {
        for &pc in entries {
            if let Some(h) = self.hot.get_mut(pc as usize) {
                *h = HOT_THRESHOLD;
            }
        }
    }

    /// Records a dispatch to an uncompiled entry; true once the PC is
    /// hot enough to compile.
    pub fn note_miss(&mut self, pc: u16) -> bool {
        match self.hot.get_mut(pc as usize) {
            Some(h) => {
                *h = h.saturating_add(1);
                *h >= HOT_THRESHOLD
            }
            None => false,
        }
    }

    /// True when a (possibly stale) block is stored at `pc`.
    pub fn has_entry(&self, pc: u16) -> bool {
        matches!(self.entries.get(pc as usize), Some(Some(_)))
    }

    /// Registers a freshly compiled block.
    pub fn insert(&mut self, block: Box<Superblock>) {
        let entry = block.entry;
        self.remove(entry); // defensive: note_miss only fires on misses
        for &w in block.words.iter() {
            self.covers[w as usize].push(entry);
        }
        self.compiled += 1;
        self.entries[entry as usize] = Some(block);
    }

    /// Borrows the block at `pc` for execution — only if every input
    /// word's write generation is no newer than the block's compile
    /// generation (the stale-plan firewall). A stale block found here
    /// is discarded instead.
    pub fn entry_for_exec(&mut self, pc: u16) -> Option<&Superblock> {
        let stale = match self.entries.get(pc as usize)? {
            Some(block) => block.words.iter().any(|&w| self.word_gen[w as usize] > block.gen),
            None => return None,
        };
        if stale {
            // Unreachable while the eager cover index is exact, but a
            // stale plan must never fire.
            debug_assert!(false, "superblock survived invalidation at pc {pc}");
            self.remove(pc);
            return None;
        }
        self.entries[pc as usize].as_deref()
    }

    /// Drops the block at `entry`, scrubbing its cover references.
    fn remove(&mut self, entry: u16) {
        if let Some(block) = self.entries[entry as usize].take() {
            self.scrub_covers(&block);
            self.invalidated += 1;
        }
    }

    fn scrub_covers(&mut self, block: &Superblock) {
        for &w in block.words.iter() {
            self.covers[w as usize].retain(|&e| e != block.entry);
        }
    }

    /// Word-write invalidation: bumps the generation, stamps the word,
    /// and eagerly removes every block compiled from it.
    pub fn invalidate_word(&mut self, addr: usize) {
        self.generation += 1;
        if addr >= self.entries.len() {
            return;
        }
        self.word_gen[addr] = self.generation;
        let covering = std::mem::take(&mut self.covers[addr]);
        for entry in covering {
            self.remove(entry);
        }
    }

    /// Conservative full invalidation (the `text_mut` escape hatch).
    pub fn invalidate_all(&mut self) {
        self.generation += 1;
        self.word_gen.fill(self.generation);
        for slot in &mut self.entries {
            if slot.take().is_some() {
                self.invalidated += 1;
            }
        }
        for c in &mut self.covers {
            c.clear();
        }
    }

    /// Activity snapshot for CLI/bench reports.
    pub fn stats(&self) -> SuperblockStats {
        let blocks = self
            .entries
            .iter()
            .flatten()
            .map(|b| SuperblockInfo {
                entry: b.entry,
                ops: b.ops.len(),
                steps: b.total_steps,
                exit: b.exit.name(),
            })
            .collect();
        SuperblockStats {
            compiled: self.compiled,
            invalidated: self.invalidated,
            entered: self.entered,
            block_steps: self.block_steps,
            blocks,
        }
    }
}

/// Compiles the superblock entered at `entry` against the current
/// text. Always yields at least one op (the entry word is in text).
pub(crate) fn compile(
    dc: &mut DecodedCache,
    text: &[u32],
    entry: u16,
    max_count: u32,
    gen: u64,
) -> Box<Superblock> {
    let mut ops: Vec<Op> = Vec::new();
    let mut aux: Vec<Aux> = Vec::new();
    let mut words: Vec<u16> = Vec::new();
    let mut compiled: Vec<u16> = Vec::new();
    let mut pc = entry;
    let exit;

    let base =
        |exec: OpFn, pc: u16| Op { exec, pc, out_pc: pc, weight: 1, rd: 0, rs: 0, rt: 0, imm: 0 };

    loop {
        if ops.len() >= MAX_OPS {
            exit = ExitKind::ChainLimit;
            break;
        }
        if pc as usize >= text.len() {
            exit = ExitKind::OutOfText;
            break;
        }
        if compiled.contains(&pc) {
            exit = ExitKind::Loop;
            break;
        }

        // An installed fused assertion block starting here is embedded
        // as one op when its plan is ready; otherwise (unfusable,
        // stale-unbuildable, or a table whose build fault the slow
        // path must raise) the region compiles word-at-a-time below,
        // exactly as the interpreter would execute it.
        if let Some(idx) = dc.region_starting_at(pc) {
            let (start, end) = dc.region(idx);
            let fused = match dc.plan(text, idx) {
                PlanSlot::Ready(FusedPlan::Static { r11, r12, pass }) => {
                    words.extend(start..=end); // plan reads the CFI word too
                    Some((Aux::FusedStatic { r11, r12, pass }, !pass))
                }
                PlanSlot::Ready(FusedPlan::StackTable { table }) => {
                    embed_table(dc, text, table, max_count, &mut words)
                        .map(|t| (Aux::FusedStackTable { table: t }, false))
                }
                PlanSlot::Ready(FusedPlan::RegTable { src, table }) => {
                    embed_table(dc, text, table, max_count, &mut words)
                        .map(|t| (Aux::FusedRegTable { src, table: t }, false))
                }
                _ => None,
            };
            if let Some((data, always_fails)) = fused {
                words.extend(start..end);
                compiled.extend(start..end);
                let idx = aux.len() as i64;
                aux.push(data);
                let mut op = base(op_fused, start);
                op.out_pc = end - 1;
                op.weight = end - start;
                op.imm = idx;
                ops.push(op);
                if always_fails {
                    exit = ExitKind::FusedFail;
                    break;
                }
                pc = end; // chain on through the protected CFI
                continue;
            }
        }

        let word = text[pc as usize];
        compiled.push(pc);
        words.push(pc);
        let Some(inst) = dc.decode_at(pc as usize, word) else {
            ops.push(base(op_illegal, pc));
            exit = ExitKind::Poisoned;
            break;
        };
        let next_pc = pc.wrapping_add(1);
        use Inst::*;
        match inst {
            Nop => {
                ops.push(base(op_nop, pc));
                pc = next_pc;
            }
            Halt => {
                ops.push(base(op_halt, pc));
                exit = ExitKind::Halt;
                break;
            }
            Movi { rd, imm } => {
                let mut op = base(op_movi, pc);
                op.rd = rd & 0xF;
                op.imm = i64::from(imm);
                ops.push(op);
                pc = next_pc;
            }
            Mov { rd, rs } => {
                ops.push(rrr(base(op_mov, pc), rd, rs, 0));
                pc = next_pc;
            }
            Add { rd, rs, rt } => {
                ops.push(rrr(base(op_add, pc), rd, rs, rt));
                pc = next_pc;
            }
            Sub { rd, rs, rt } => {
                ops.push(rrr(base(op_sub, pc), rd, rs, rt));
                pc = next_pc;
            }
            Mul { rd, rs, rt } => {
                ops.push(rrr(base(op_mul, pc), rd, rs, rt));
                pc = next_pc;
            }
            Divu { rd, rs, rt } => {
                ops.push(rrr(base(op_divu, pc), rd, rs, rt));
                pc = next_pc;
            }
            And { rd, rs, rt } => {
                ops.push(rrr(base(op_and, pc), rd, rs, rt));
                pc = next_pc;
            }
            Or { rd, rs, rt } => {
                ops.push(rrr(base(op_or, pc), rd, rs, rt));
                pc = next_pc;
            }
            Xor { rd, rs, rt } => {
                ops.push(rrr(base(op_xor, pc), rd, rs, rt));
                pc = next_pc;
            }
            Addi { rd, rs, imm } => {
                let mut op = rrr(base(op_addi, pc), rd, rs, 0);
                op.imm = i64::from(imm);
                ops.push(op);
                pc = next_pc;
            }
            Andi { rd, rs, imm } => {
                let mut op = rrr(base(op_andi, pc), rd, rs, 0);
                op.imm = i64::from(imm);
                ops.push(op);
                pc = next_pc;
            }
            Seqz { rd, rs } => {
                ops.push(rrr(base(op_seqz, pc), rd, rs, 0));
                pc = next_pc;
            }
            Ld { rd, rs, imm } => {
                let mut op = rrr(base(op_ld, pc), rd, rs, 0);
                op.imm = i64::from(imm);
                ops.push(op);
                pc = next_pc;
            }
            St { rs, rt, imm } => {
                let mut op = rrr(base(op_st, pc), 0, rs, rt);
                op.imm = i64::from(imm);
                ops.push(op);
                pc = next_pc;
            }
            Ldt { rd, addr } => {
                let mut op = rrr(base(op_ldt, pc), rd, 0, 0);
                op.imm = i64::from(addr);
                ops.push(op);
                pc = next_pc;
            }
            // Unconditional transfers retire one step and chain: the
            // loop head terminates the block if the target leaves the
            // text, revisits this block, or busts the op cap — with
            // `fallthrough` already pointing at the target.
            Jmp { addr } => {
                ops.push(base(op_skip, pc));
                pc = addr;
            }
            Call { addr } => {
                ops.push(base(op_call, pc));
                pc = addr;
            }
            Beq { rs, rt, addr } => {
                ops.push(branch(base(op_beq, pc), rs, rt, addr));
                exit = ExitKind::Branch;
                break;
            }
            Bne { rs, rt, addr } => {
                ops.push(branch(base(op_bne, pc), rs, rt, addr));
                exit = ExitKind::Branch;
                break;
            }
            Blt { rs, rt, addr } => {
                ops.push(branch(base(op_blt, pc), rs, rt, addr));
                exit = ExitKind::Branch;
                break;
            }
            Bge { rs, rt, addr } => {
                ops.push(branch(base(op_bge, pc), rs, rt, addr));
                exit = ExitKind::Branch;
                break;
            }
            Ret => {
                ops.push(base(op_ret, pc));
                exit = ExitKind::Indirect;
                break;
            }
            Callr { rs } => {
                ops.push(rrr(base(op_callr, pc), 0, rs, 0));
                exit = ExitKind::Indirect;
                break;
            }
            Jr { rs } => {
                ops.push(rrr(base(op_jr, pc), 0, rs, 0));
                exit = ExitKind::Indirect;
                break;
            }
            Sys { num } => {
                let mut op = base(op_sys, pc);
                op.rd = num;
                ops.push(op);
                pc = next_pc;
                exit = ExitKind::Syscall;
                break;
            }
            Pckt { rs, table } => {
                let entry = dc.table(text, table, max_count);
                let span = entry.span;
                let data = match &entry.result {
                    Ok(members) => TableData::Members(members.clone().into_boxed_slice()),
                    Err(kind) => TableData::Fault(*kind),
                };
                if (table as usize) < text.len() {
                    words.extend(table..=table + span as u16);
                }
                let idx = aux.len() as i64;
                aux.push(Aux::Pckt { table: data });
                let mut op = rrr(base(op_pckt, pc), 0, rs, 0);
                op.imm = idx;
                ops.push(op);
                pc = next_pc;
                exit = ExitKind::TableCheck;
                break;
            }
        }
    }

    words.sort_unstable();
    words.dedup();
    let total_steps = ops.iter().map(|o| u64::from(o.weight)).sum();
    Box::new(Superblock {
        entry,
        ops: ops.into_boxed_slice(),
        aux: aux.into_boxed_slice(),
        words: words.into_boxed_slice(),
        total_steps,
        fallthrough: pc,
        exit,
        gen,
    })
}

fn rrr(mut op: Op, rd: u8, rs: u8, rt: u8) -> Op {
    op.rd = rd & 0xF;
    op.rs = rs & 0xF;
    op.rt = rt & 0xF;
    op
}

fn branch(mut op: Op, rs: u8, rt: u8, addr: u16) -> Op {
    op = rrr(op, 0, rs, rt);
    op.imm = i64::from(addr);
    op
}

/// Materializes a fused plan's table for embedding, recording its
/// dependency words. `None` when the build fault is one the slow path
/// must raise itself (text-fault kinds), in which case the region
/// compiles word-at-a-time instead.
fn embed_table(
    dc: &mut DecodedCache,
    text: &[u32],
    table: u16,
    max_count: u32,
    words: &mut Vec<u16>,
) -> Option<TableData> {
    let entry = dc.table(text, table, max_count);
    let span = entry.span;
    let data = match &entry.result {
        Ok(members) => TableData::Members(members.clone().into_boxed_slice()),
        // A corrupted count is a failed assertion: membership is
        // simply always false, like `table_pass` on the fused path.
        Err(ExceptionKind::DivideByZero) => TableData::Fault(ExceptionKind::DivideByZero),
        Err(_) => return None,
    };
    if (table as usize) < text.len() {
        words.extend(table..=table + span as u16);
    }
    Some(data)
}

// ---------------------------------------------------------------- ops

#[inline]
fn reg(c: &OpCtx<'_>, r: u8) -> u64 {
    c.regs[(r & 0xF) as usize]
}

fn op_nop(_c: &mut OpCtx<'_>, _op: &Op) -> Flow {
    Flow::Next
}

/// A chained `jmp`: the transfer is compiled away, only the retired
/// step remains.
fn op_skip(_c: &mut OpCtx<'_>, _op: &Op) -> Flow {
    Flow::Next
}

fn op_halt(_c: &mut OpCtx<'_>, _op: &Op) -> Flow {
    Flow::Halt
}

fn op_illegal(_c: &mut OpCtx<'_>, op: &Op) -> Flow {
    Flow::Fault(op.pc, ExceptionKind::IllegalInstruction)
}

fn op_movi(c: &mut OpCtx<'_>, op: &Op) -> Flow {
    c.regs[op.rd as usize & 0xF] = op.imm as u64;
    Flow::Next
}

fn op_mov(c: &mut OpCtx<'_>, op: &Op) -> Flow {
    c.regs[op.rd as usize & 0xF] = reg(c, op.rs);
    Flow::Next
}

fn op_add(c: &mut OpCtx<'_>, op: &Op) -> Flow {
    c.regs[op.rd as usize & 0xF] = reg(c, op.rs).wrapping_add(reg(c, op.rt));
    Flow::Next
}

fn op_sub(c: &mut OpCtx<'_>, op: &Op) -> Flow {
    c.regs[op.rd as usize & 0xF] = reg(c, op.rs).wrapping_sub(reg(c, op.rt));
    Flow::Next
}

fn op_mul(c: &mut OpCtx<'_>, op: &Op) -> Flow {
    c.regs[op.rd as usize & 0xF] = reg(c, op.rs).wrapping_mul(reg(c, op.rt));
    Flow::Next
}

fn op_divu(c: &mut OpCtx<'_>, op: &Op) -> Flow {
    let divisor = reg(c, op.rt);
    if divisor == 0 {
        return Flow::Fault(op.pc, ExceptionKind::DivideByZero);
    }
    c.regs[op.rd as usize & 0xF] = reg(c, op.rs) / divisor;
    Flow::Next
}

fn op_and(c: &mut OpCtx<'_>, op: &Op) -> Flow {
    c.regs[op.rd as usize & 0xF] = reg(c, op.rs) & reg(c, op.rt);
    Flow::Next
}

fn op_or(c: &mut OpCtx<'_>, op: &Op) -> Flow {
    c.regs[op.rd as usize & 0xF] = reg(c, op.rs) | reg(c, op.rt);
    Flow::Next
}

fn op_xor(c: &mut OpCtx<'_>, op: &Op) -> Flow {
    c.regs[op.rd as usize & 0xF] = reg(c, op.rs) ^ reg(c, op.rt);
    Flow::Next
}

fn op_addi(c: &mut OpCtx<'_>, op: &Op) -> Flow {
    c.regs[op.rd as usize & 0xF] = reg(c, op.rs).wrapping_add(op.imm as u64);
    Flow::Next
}

fn op_andi(c: &mut OpCtx<'_>, op: &Op) -> Flow {
    c.regs[op.rd as usize & 0xF] = reg(c, op.rs) & op.imm as u64;
    Flow::Next
}

fn op_seqz(c: &mut OpCtx<'_>, op: &Op) -> Flow {
    c.regs[op.rd as usize & 0xF] = (reg(c, op.rs) == 0) as u64;
    Flow::Next
}

#[inline]
fn mem_addr(c: &OpCtx<'_>, base: u64, off: i64) -> Result<usize, Flow> {
    let addr = base as i64 + off;
    if addr < 0 || addr >= c.data_words {
        return Err(Flow::Fault(0, ExceptionKind::MemoryFault { addr }));
    }
    Ok(addr as usize)
}

fn op_ld(c: &mut OpCtx<'_>, op: &Op) -> Flow {
    match mem_addr(c, reg(c, op.rs), op.imm) {
        Ok(addr) => {
            c.regs[op.rd as usize & 0xF] = c.data[addr];
            Flow::Next
        }
        Err(f) => at_pc(f, op.pc),
    }
}

fn op_st(c: &mut OpCtx<'_>, op: &Op) -> Flow {
    match mem_addr(c, reg(c, op.rs), op.imm) {
        Ok(addr) => {
            c.data[addr] = reg(c, op.rt);
            Flow::Next
        }
        Err(f) => at_pc(f, op.pc),
    }
}

fn op_ldt(c: &mut OpCtx<'_>, op: &Op) -> Flow {
    let addr = op.imm as usize;
    let Some(&w) = c.text.get(addr) else {
        return Flow::Fault(op.pc, ExceptionKind::TextFault { addr: addr as u32 });
    };
    c.regs[op.rd as usize & 0xF] = u64::from(w);
    Flow::Next
}

fn op_call(c: &mut OpCtx<'_>, op: &Op) -> Flow {
    let sp = c.regs[15].wrapping_sub(1);
    match mem_addr(c, sp, 0) {
        Ok(slot) => {
            c.data[slot] = u64::from(op.pc.wrapping_add(1));
            c.regs[15] = sp;
            Flow::Next
        }
        Err(f) => at_pc(f, op.pc),
    }
}

fn op_ret(c: &mut OpCtx<'_>, op: &Op) -> Flow {
    let sp = c.regs[15];
    match mem_addr(c, sp, 0) {
        Ok(slot) => {
            let ra = c.data[slot];
            c.regs[15] = sp.wrapping_add(1);
            c.pc = ra as u16;
            Flow::Done
        }
        Err(f) => at_pc(f, op.pc),
    }
}

fn op_callr(c: &mut OpCtx<'_>, op: &Op) -> Flow {
    let target = reg(c, op.rs) as u16;
    let sp = c.regs[15].wrapping_sub(1);
    match mem_addr(c, sp, 0) {
        Ok(slot) => {
            c.data[slot] = u64::from(op.pc.wrapping_add(1));
            c.regs[15] = sp;
            c.pc = target;
            Flow::Done
        }
        Err(f) => at_pc(f, op.pc),
    }
}

fn op_jr(c: &mut OpCtx<'_>, op: &Op) -> Flow {
    c.pc = reg(c, op.rs) as u16;
    Flow::Done
}

fn op_beq(c: &mut OpCtx<'_>, op: &Op) -> Flow {
    c.pc = if reg(c, op.rs) == reg(c, op.rt) { op.imm as u16 } else { op.pc.wrapping_add(1) };
    Flow::Done
}

fn op_bne(c: &mut OpCtx<'_>, op: &Op) -> Flow {
    c.pc = if reg(c, op.rs) != reg(c, op.rt) { op.imm as u16 } else { op.pc.wrapping_add(1) };
    Flow::Done
}

fn op_blt(c: &mut OpCtx<'_>, op: &Op) -> Flow {
    c.pc = if reg(c, op.rs) < reg(c, op.rt) { op.imm as u16 } else { op.pc.wrapping_add(1) };
    Flow::Done
}

fn op_bge(c: &mut OpCtx<'_>, op: &Op) -> Flow {
    c.pc = if reg(c, op.rs) >= reg(c, op.rt) { op.imm as u16 } else { op.pc.wrapping_add(1) };
    Flow::Done
}

fn op_sys(c: &mut OpCtx<'_>, op: &Op) -> Flow {
    let req = SyscallRequest {
        thread: c.tid,
        num: op.rd,
        args: [c.regs[1], c.regs[2], c.regs[3], c.regs[4], c.regs[5], c.regs[6]],
    };
    c.regs[1] = c.sys.handle(req);
    Flow::Next
}

fn op_pckt(c: &mut OpCtx<'_>, op: &Op) -> Flow {
    let Aux::Pckt { table } = &c.aux[op.imm as usize] else {
        return Flow::Deopt; // unreachable by construction
    };
    if let TableData::Fault(kind) = table {
        return Flow::Fault(op.pc, *kind);
    }
    let value = reg(c, op.rs) as u32;
    if table.contains(value) {
        Flow::Next
    } else {
        Flow::Fault(op.pc, ExceptionKind::DivideByZero)
    }
}

/// An embedded fused assertion block: retires the whole region,
/// producing the identical scratch-register finals, fault PC and step
/// counts as [`Machine::run`](crate::Machine::run)'s superstep path.
fn op_fused(c: &mut OpCtx<'_>, op: &Op) -> Flow {
    let fail_pc = op.out_pc; // region end - 1, the fused `divu`/`pckt`
    let pass = match &c.aux[op.imm as usize] {
        Aux::FusedStatic { r11, r12, pass } => {
            if let Some(v) = r11 {
                c.regs[11] = *v;
            }
            c.regs[12] = *r12;
            c.regs[13] = u64::from(*pass);
            *pass
        }
        Aux::FusedStackTable { table } => {
            let sp = c.regs[15];
            if sp as i64 >= c.data_words || (sp as i64) < 0 {
                return Flow::Deopt; // the region's `ld` would fault
            }
            let value = c.data[sp as usize];
            c.regs[12] = value;
            table.contains(value as u32)
        }
        Aux::FusedRegTable { src, table } => {
            let value = reg(c, *src);
            c.regs[12] = value;
            table.contains(value as u32)
        }
        Aux::Pckt { .. } => return Flow::Deopt, // unreachable by construction
    };
    c.supersteps += 1;
    if pass {
        Flow::Next
    } else {
        Flow::Fault(fail_pc, ExceptionKind::DivideByZero)
    }
}

fn at_pc(f: Flow, pc: u16) -> Flow {
    match f {
        Flow::Fault(_, kind) => Flow::Fault(pc, kind),
        other => other,
    }
}
