//! The multi-threaded interpreter.
//!
//! Threads are scheduled round-robin, one instruction per quantum,
//! which both models the paper's multi-threaded call-processing client
//! and creates the injection window it describes: "in the time interval
//! between reaching the breakpoint and restoring the correct
//! instruction, other thread(s) may come and execute the erroneous
//! instruction".
//!
//! Exceptions do not silently kill threads: [`Machine::step`] returns
//! the [`ExceptionInfo`] and parks the thread in
//! [`ThreadState::Faulted`], leaving the *policy* to the caller — the
//! PECOS signal handler checks whether the faulting PC lies inside an
//! assertion block and either terminates just that thread (graceful
//! recovery) or lets the process crash (system detection).

use serde::{Deserialize, Serialize};

use crate::decoded::{DecodedCache, FusedPlan, PlanSlot};
use crate::inst::{decode, Inst};
use crate::program::Program;
use crate::ThreadId;

/// Configuration for a [`Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Words of per-thread data memory (stack + locals). The stack
    /// pointer (`r15`) starts here and grows down.
    pub data_words: usize,
    /// Maximum size of a PECOS target table; a stored count above this
    /// is treated as a failed assertion (corrupted table).
    pub max_pckt_table: u32,
    /// Use the predecoded fast path (decoded-instruction cache, sorted
    /// `PCKT` target tables, fused assertion supersteps). Detection
    /// semantics are identical either way; `false` keeps the original
    /// word-at-a-time engine for parity testing and benchmarking.
    #[serde(default = "default_fast_path")]
    pub fast_path: bool,
}

fn default_fast_path() -> bool {
    true
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig { data_words: 4_096, max_pckt_table: 1_024, fast_path: default_fast_path() }
    }
}

/// Why a thread faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExceptionKind {
    /// `DIVU` with a zero divisor, or a failed `PCKT` membership test.
    /// PECOS assertion blocks raise exactly this.
    DivideByZero,
    /// The fetched word did not decode (SIGILL-class).
    IllegalInstruction,
    /// The program counter left the text segment (wild jump;
    /// SIGSEGV-class).
    TextFault {
        /// The bad address.
        addr: u32,
    },
    /// A data-memory access left the thread's data segment
    /// (SIGSEGV-class), including stack overflow/underflow.
    MemoryFault {
        /// The bad word address.
        addr: i64,
    },
}

/// A reported exception.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExceptionInfo {
    /// The faulting thread.
    pub thread: ThreadId,
    /// Address of the faulting instruction (the PC the signal handler
    /// examines).
    pub pc: u16,
    /// The exception class.
    pub kind: ExceptionKind,
}

/// Lifecycle state of a machine thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThreadState {
    /// Eligible to run.
    Runnable,
    /// Executed `HALT` (normal completion).
    Halted,
    /// Raised an exception; awaiting a policy decision by the caller.
    Faulted(ExceptionKind),
    /// Terminated by a recovery action (e.g. the PECOS signal
    /// handler).
    Killed,
}

/// A syscall captured from a `SYS` instruction: the number and the six
/// argument registers `r1`–`r6`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallRequest {
    /// The calling thread.
    pub thread: ThreadId,
    /// Syscall number (the `SYS` immediate).
    pub num: u8,
    /// Argument registers `r1..=r6` at the call.
    pub args: [u64; 6],
}

/// Receiver for `SYS` instructions. The call-processing client's
/// database operations arrive here.
pub trait SyscallHandler {
    /// Handles one syscall; the return value is written to `r1`.
    fn handle(&mut self, req: SyscallRequest) -> u64;
}

/// A handler that ignores every syscall (returns 0).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSyscalls;

impl SyscallHandler for NoSyscalls {
    fn handle(&mut self, _req: SyscallRequest) -> u64 {
        0
    }
}

/// Result of one [`Machine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An instruction retired normally.
    Executed {
        /// The thread that ran.
        thread: ThreadId,
        /// Address of the executed instruction.
        pc: u16,
    },
    /// The running thread raised an exception and is now
    /// [`ThreadState::Faulted`].
    Exception(ExceptionInfo),
    /// No thread is runnable.
    Idle,
}

#[derive(Debug, Clone)]
struct Thread {
    regs: [u64; 16],
    pc: u16,
    data: Vec<u64>,
    state: ThreadState,
    steps: u64,
}

/// The machine: shared mutable text segment plus per-thread register
/// files and data memories.
#[derive(Debug, Clone)]
pub struct Machine {
    text: Vec<u32>,
    threads: Vec<Thread>,
    config: MachineConfig,
    next: usize,
    total_steps: u64,
    supersteps: u64,
    cache: DecodedCache,
}

impl Machine {
    /// Loads a program. Threads must be spawned explicitly.
    pub fn load(program: &Program, config: MachineConfig) -> Self {
        Machine {
            cache: DecodedCache::new(program.text.len()),
            text: program.text.clone(),
            threads: Vec::new(),
            config,
            next: 0,
            total_steps: 0,
            supersteps: 0,
        }
    }

    /// Spawns a thread at `entry` with a fresh register file and data
    /// memory; returns its id.
    pub fn spawn_thread(&mut self, entry: u16) -> ThreadId {
        let mut regs = [0u64; 16];
        regs[15] = self.config.data_words as u64; // stack grows down
        self.threads.push(Thread {
            regs,
            pc: entry,
            data: vec![0; self.config.data_words],
            state: ThreadState::Runnable,
            steps: 0,
        });
        self.threads.len() - 1
    }

    /// Shared text segment (read).
    pub fn text(&self) -> &[u32] {
        &self.text
    }

    /// Shared text segment (write) — the injector's escape hatch for
    /// arbitrary mutation. The whole decoded cache is conservatively
    /// invalidated because the caller may write any word through the
    /// returned slice; prefer [`Machine::store_text`] for single-word
    /// writes.
    pub fn text_mut(&mut self) -> &mut [u32] {
        self.cache.invalidate_all();
        &mut self.text
    }

    /// Writes one text word (the injector's corruption primitive) and
    /// invalidates exactly the cached state derived from it: the
    /// word's decoded slot, any fused assertion plan reading it, and
    /// any materialized `PCKT` table containing it.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the text segment.
    pub fn store_text(&mut self, addr: usize, word: u32) {
        self.text[addr] = word;
        self.cache.invalidate_word(addr);
    }

    /// Registers the PECOS assertion blocks `[start, end)` (with the
    /// protected CFI at `end`) as candidates for fused superstep
    /// execution in [`Machine::run`]. Blocks whose instructions do not
    /// match a known instrumenter shape — or that are later corrupted
    /// into not matching — simply execute word-at-a-time; installing
    /// regions never changes observable behavior, only speed.
    pub fn install_fused_regions(&mut self, ranges: &[(u16, u16)]) {
        self.cache.install_regions(ranges);
    }

    /// Per-thread data memory (read) — lets parity tests compare final
    /// memory images across engines.
    pub fn data(&self, t: ThreadId) -> Option<&[u64]> {
        Some(&self.threads.get(t)?.data)
    }

    /// Number of spawned threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// State of a thread.
    ///
    /// # Panics
    ///
    /// Panics if `t` was never spawned.
    pub fn thread_state(&self, t: ThreadId) -> ThreadState {
        self.threads[t].state
    }

    /// Register `r` of thread `t`, or `None` for an unknown thread or
    /// register.
    pub fn reg(&self, t: ThreadId, r: usize) -> Option<u64> {
        self.threads.get(t)?.regs.get(r).copied()
    }

    /// Sets register `r` of thread `t` (test and harness support).
    ///
    /// # Panics
    ///
    /// Panics on an unknown thread or register index.
    pub fn set_reg(&mut self, t: ThreadId, r: usize, v: u64) {
        self.threads[t].regs[r] = v;
    }

    /// Current program counter of a thread.
    ///
    /// # Panics
    ///
    /// Panics if `t` was never spawned.
    pub fn pc(&self, t: ThreadId) -> u16 {
        self.threads[t].pc
    }

    /// Instructions executed by thread `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` was never spawned.
    pub fn thread_steps(&self, t: ThreadId) -> u64 {
        self.threads[t].steps
    }

    /// Instructions executed across all threads.
    pub fn total_steps(&self) -> u64 {
        self.total_steps
    }

    /// Assertion blocks executed as fused supersteps (diagnostic: lets
    /// tests and benches verify the fast path actually engaged).
    pub fn fused_supersteps(&self) -> u64 {
        self.supersteps
    }

    /// Terminates a thread as a recovery action (PECOS signal handler,
    /// manager). The thread will never run again.
    pub fn kill_thread(&mut self, t: ThreadId) {
        if let Some(th) = self.threads.get_mut(t) {
            th.state = ThreadState::Killed;
        }
    }

    /// Returns a faulted thread to the runnable state *at the faulting
    /// instruction* (used by handlers that repair state and retry).
    pub fn resume_thread(&mut self, t: ThreadId) {
        if let Some(th) = self.threads.get_mut(t) {
            if matches!(th.state, ThreadState::Faulted(_)) {
                th.state = ThreadState::Runnable;
            }
        }
    }

    /// True while at least one thread is runnable.
    pub fn has_runnable(&self) -> bool {
        self.threads.iter().any(|t| t.state == ThreadState::Runnable)
    }

    /// The thread the next [`Machine::step`] will run and the address
    /// it will execute, or `None` when idle. The injector uses this as
    /// its breakpoint hook.
    pub fn peek_next(&self) -> Option<(ThreadId, u16)> {
        let n = self.threads.len();
        if n == 0 {
            return None;
        }
        for i in 0..n {
            let idx = (self.next + i) % n;
            if self.threads[idx].state == ThreadState::Runnable {
                return Some((idx, self.threads[idx].pc));
            }
        }
        None
    }

    /// Executes one instruction of the next runnable thread
    /// (round-robin).
    pub fn step(&mut self, sys: &mut dyn SyscallHandler) -> StepOutcome {
        let Some((tid, pc)) = self.peek_next() else {
            return StepOutcome::Idle;
        };
        let n = self.threads.len();
        self.next = (tid + 1) % n;
        self.total_steps += 1;
        self.threads[tid].steps += 1;

        // Fetch.
        let Some(&word) = self.text.get(pc as usize) else {
            return self.fault(tid, pc, ExceptionKind::TextFault { addr: pc as u32 });
        };
        // Decode — through the predecoded cache on the fast path, so
        // strict decoding runs once per word instead of once per step.
        let inst = if self.config.fast_path {
            match self.cache.decode_at(pc as usize, word) {
                Some(i) => i,
                None => return self.fault(tid, pc, ExceptionKind::IllegalInstruction),
            }
        } else {
            match decode(word) {
                Ok(i) => i,
                Err(_) => return self.fault(tid, pc, ExceptionKind::IllegalInstruction),
            }
        };
        // Execute.
        match self.execute(tid, pc, inst, sys) {
            Ok(()) => StepOutcome::Executed { thread: tid, pc },
            Err(kind) => self.fault(tid, pc, kind),
        }
    }

    /// Runs until `max_steps` instructions have retired, a thread
    /// faults, or the machine goes idle. Returns the last outcome.
    ///
    /// On the fast path, an installed assertion block reached by the
    /// only runnable thread executes as one fused superstep instead of
    /// instruction by instruction — with identical retired-step
    /// accounting, register effects, and fault PCs.
    pub fn run(&mut self, sys: &mut dyn SyscallHandler, max_steps: u64) -> StepOutcome {
        let mut last = StepOutcome::Idle;
        let mut remaining = max_steps;
        while remaining > 0 {
            if let Some((out, retired)) = self.try_superstep(remaining) {
                remaining -= retired;
                last = out;
            } else if let Some((out, retired)) = self.run_batch(sys, remaining) {
                remaining -= retired;
                last = out;
            } else {
                remaining -= 1;
                last = self.step(sys);
            }
            match last {
                StepOutcome::Executed { .. } => {}
                _ => break,
            }
        }
        last
    }

    /// Fast-path dispatch batch: when exactly one thread is runnable,
    /// steps it repeatedly without the per-step round-robin scan and
    /// modulo arithmetic of [`Machine::step`] — stopping at a fused
    /// region start (handed back to [`Machine::try_superstep`]), a
    /// non-`Executed` outcome, a thread-state change, or the end of the
    /// budget. Bookkeeping (retired counts, `next` rotation, fault
    /// sites) is identical to single-stepping.
    fn run_batch(
        &mut self,
        sys: &mut dyn SyscallHandler,
        remaining: u64,
    ) -> Option<(StepOutcome, u64)> {
        if !self.config.fast_path {
            return None;
        }
        let mut runnable =
            self.threads.iter().enumerate().filter(|(_, t)| t.state == ThreadState::Runnable);
        let (tid, _) = runnable.next()?;
        if runnable.next().is_some() {
            return None;
        }
        let n = self.threads.len();
        self.next = if tid + 1 == n { 0 } else { tid + 1 };
        let mut retired: u64 = 0;
        loop {
            // The first step runs unconditionally: try_superstep already
            // declined this address, so deferring would livelock.
            let pc = self.threads[tid].pc;
            self.total_steps += 1;
            self.threads[tid].steps += 1;
            retired += 1;
            let Some(&word) = self.text.get(pc as usize) else {
                return Some((
                    self.fault(tid, pc, ExceptionKind::TextFault { addr: pc as u32 }),
                    retired,
                ));
            };
            let Some(inst) = self.cache.decode_at(pc as usize, word) else {
                return Some((self.fault(tid, pc, ExceptionKind::IllegalInstruction), retired));
            };
            let last = match self.execute(tid, pc, inst, sys) {
                Ok(()) => StepOutcome::Executed { thread: tid, pc },
                Err(kind) => self.fault(tid, pc, kind),
            };
            if retired == remaining
                || !matches!(last, StepOutcome::Executed { .. })
                || self.threads[tid].state != ThreadState::Runnable
                || self.cache.region_starting_at(self.threads[tid].pc).is_some()
            {
                return Some((last, retired));
            }
        }
    }

    /// Attempts to execute a whole fused assertion block in one go.
    /// Returns the resulting outcome and the number of retired steps,
    /// or `None` to fall back to single-stepping.
    ///
    /// The fusion preconditions keep every observable identical to
    /// word-at-a-time execution: only the sole runnable thread may
    /// fuse (so round-robin interleaving is unaffected), the remaining
    /// budget must cover the whole block (so `max_steps` cutoffs land
    /// on the same instruction), and runtime faults other than the
    /// assertion's own divide-by-zero (e.g. a bad stack pointer under
    /// the `ret` block's load) bail out to the slow path.
    fn try_superstep(&mut self, remaining: u64) -> Option<(StepOutcome, u64)> {
        if !self.config.fast_path || !self.cache.has_regions() {
            return None;
        }
        let mut runnable =
            self.threads.iter().enumerate().filter(|(_, t)| t.state == ThreadState::Runnable);
        let (tid, _) = runnable.next()?;
        if runnable.next().is_some() {
            return None;
        }
        let idx = self.cache.region_starting_at(self.threads[tid].pc)?;
        let (start, end) = self.cache.region(idx);
        let len = u64::from(end - start);
        if remaining < len {
            return None;
        }
        let plan = match self.cache.plan(&self.text, idx) {
            PlanSlot::Ready(p) => p,
            _ => return None,
        };

        // From here on the whole block retires (a failing assertion
        // faults on its last instruction, which still counts).
        let (r12, pass) = match plan {
            FusedPlan::Static { r11, r12, pass } => {
                if let Some(v) = r11 {
                    self.threads[tid].regs[11] = v;
                }
                (r12, pass)
            }
            FusedPlan::StackTable { table } => {
                let sp = self.threads[tid].regs[15];
                if sp as i64 >= self.config.data_words as i64 || (sp as i64) < 0 {
                    return None; // the block's `ld` would memory-fault
                }
                let value = self.threads[tid].data[sp as usize];
                (value, self.table_pass(table, value as u32)?)
            }
            FusedPlan::RegTable { src, table } => {
                let value = self.threads[tid].regs[src as usize & 0xF];
                (value, self.table_pass(table, value as u32)?)
            }
        };

        self.next = (tid + 1) % self.threads.len();
        self.total_steps += len;
        self.supersteps += 1;
        let th = &mut self.threads[tid];
        th.steps += len;
        th.regs[12] = r12;
        if matches!(plan, FusedPlan::Static { .. }) {
            th.regs[13] = pass as u64;
        }
        if pass {
            th.pc = end;
            Some((StepOutcome::Executed { thread: tid, pc: end - 1 }, len))
        } else {
            th.pc = end - 1;
            Some((self.fault(tid, end - 1, ExceptionKind::DivideByZero), len))
        }
    }

    /// Membership result for a fused table check, or `None` when the
    /// table itself is faulty in a way whose exception the slow path
    /// must raise (so the superstep bails out).
    fn table_pass(&mut self, table: u16, value: u32) -> Option<bool> {
        let entry = self.cache.table(&self.text, table, self.config.max_pckt_table);
        match &entry.result {
            Ok(words) => Some(words.binary_search(&value).is_ok()),
            // A corrupted count is a failed assertion (divide-by-zero
            // at the PCKT), which the fail path below raises anyway.
            Err(ExceptionKind::DivideByZero) => Some(false),
            // Text faults have different kinds/addresses: slow path.
            Err(_) => None,
        }
    }

    fn fault(&mut self, tid: ThreadId, pc: u16, kind: ExceptionKind) -> StepOutcome {
        self.threads[tid].state = ThreadState::Faulted(kind);
        StepOutcome::Exception(ExceptionInfo { thread: tid, pc, kind })
    }

    fn execute(
        &mut self,
        tid: ThreadId,
        pc: u16,
        inst: Inst,
        sys: &mut dyn SyscallHandler,
    ) -> Result<(), ExceptionKind> {
        let data_words = self.config.data_words as i64;
        let next_pc = pc.wrapping_add(1);
        // Helper closures cannot borrow self twice; work on the thread
        // via index.
        macro_rules! th {
            () => {
                self.threads[tid]
            };
        }
        let r = |t: &Thread, i: u8| t.regs[i as usize & 0xF];
        let mem_addr = |base: u64, off: i16| -> Result<usize, ExceptionKind> {
            let addr = base as i64 + off as i64;
            if addr < 0 || addr >= data_words {
                Err(ExceptionKind::MemoryFault { addr })
            } else {
                Ok(addr as usize)
            }
        };

        match inst {
            Inst::Nop => th!().pc = next_pc,
            Inst::Halt => th!().state = ThreadState::Halted,
            Inst::Movi { rd, imm } => {
                th!().regs[rd as usize & 0xF] = imm as u64;
                th!().pc = next_pc;
            }
            Inst::Mov { rd, rs } => {
                let v = r(&th!(), rs);
                th!().regs[rd as usize & 0xF] = v;
                th!().pc = next_pc;
            }
            Inst::Add { rd, rs, rt } => {
                let v = r(&th!(), rs).wrapping_add(r(&th!(), rt));
                th!().regs[rd as usize & 0xF] = v;
                th!().pc = next_pc;
            }
            Inst::Sub { rd, rs, rt } => {
                let v = r(&th!(), rs).wrapping_sub(r(&th!(), rt));
                th!().regs[rd as usize & 0xF] = v;
                th!().pc = next_pc;
            }
            Inst::Mul { rd, rs, rt } => {
                let v = r(&th!(), rs).wrapping_mul(r(&th!(), rt));
                th!().regs[rd as usize & 0xF] = v;
                th!().pc = next_pc;
            }
            Inst::Divu { rd, rs, rt } => {
                let divisor = r(&th!(), rt);
                if divisor == 0 {
                    return Err(ExceptionKind::DivideByZero);
                }
                let v = r(&th!(), rs) / divisor;
                th!().regs[rd as usize & 0xF] = v;
                th!().pc = next_pc;
            }
            Inst::And { rd, rs, rt } => {
                let v = r(&th!(), rs) & r(&th!(), rt);
                th!().regs[rd as usize & 0xF] = v;
                th!().pc = next_pc;
            }
            Inst::Or { rd, rs, rt } => {
                let v = r(&th!(), rs) | r(&th!(), rt);
                th!().regs[rd as usize & 0xF] = v;
                th!().pc = next_pc;
            }
            Inst::Xor { rd, rs, rt } => {
                let v = r(&th!(), rs) ^ r(&th!(), rt);
                th!().regs[rd as usize & 0xF] = v;
                th!().pc = next_pc;
            }
            Inst::Addi { rd, rs, imm } => {
                let v = r(&th!(), rs).wrapping_add(imm as i64 as u64);
                th!().regs[rd as usize & 0xF] = v;
                th!().pc = next_pc;
            }
            Inst::Andi { rd, rs, imm } => {
                let v = r(&th!(), rs) & imm as u64;
                th!().regs[rd as usize & 0xF] = v;
                th!().pc = next_pc;
            }
            Inst::Seqz { rd, rs } => {
                let v = (r(&th!(), rs) == 0) as u64;
                th!().regs[rd as usize & 0xF] = v;
                th!().pc = next_pc;
            }
            Inst::Ld { rd, rs, imm } => {
                let addr = mem_addr(r(&th!(), rs), imm)?;
                let v = th!().data[addr];
                th!().regs[rd as usize & 0xF] = v;
                th!().pc = next_pc;
            }
            Inst::St { rs, rt, imm } => {
                let addr = mem_addr(r(&th!(), rs), imm)?;
                let v = r(&th!(), rt);
                th!().data[addr] = v;
                th!().pc = next_pc;
            }
            Inst::Ldt { rd, addr } => {
                let Some(&w) = self.text.get(addr as usize) else {
                    return Err(ExceptionKind::TextFault { addr: addr as u32 });
                };
                th!().regs[rd as usize & 0xF] = w as u64;
                th!().pc = next_pc;
            }
            Inst::Jmp { addr } => th!().pc = addr,
            Inst::Beq { rs, rt, addr } => {
                let taken = r(&th!(), rs) == r(&th!(), rt);
                th!().pc = if taken { addr } else { next_pc };
            }
            Inst::Bne { rs, rt, addr } => {
                let taken = r(&th!(), rs) != r(&th!(), rt);
                th!().pc = if taken { addr } else { next_pc };
            }
            Inst::Blt { rs, rt, addr } => {
                let taken = r(&th!(), rs) < r(&th!(), rt);
                th!().pc = if taken { addr } else { next_pc };
            }
            Inst::Bge { rs, rt, addr } => {
                let taken = r(&th!(), rs) >= r(&th!(), rt);
                th!().pc = if taken { addr } else { next_pc };
            }
            Inst::Call { addr } => {
                let sp = r(&th!(), 15).wrapping_sub(1);
                let slot = mem_addr(sp, 0)?;
                th!().data[slot] = next_pc as u64;
                th!().regs[15] = sp;
                th!().pc = addr;
            }
            Inst::Ret => {
                let sp = r(&th!(), 15);
                let slot = mem_addr(sp, 0)?;
                let ra = th!().data[slot];
                th!().regs[15] = sp.wrapping_add(1);
                th!().pc = ra as u16;
            }
            Inst::Callr { rs } => {
                let target = r(&th!(), rs) as u16;
                let sp = r(&th!(), 15).wrapping_sub(1);
                let slot = mem_addr(sp, 0)?;
                th!().data[slot] = next_pc as u64;
                th!().regs[15] = sp;
                th!().pc = target;
            }
            Inst::Jr { rs } => {
                let target = r(&th!(), rs) as u16;
                th!().pc = target;
            }
            Inst::Sys { num } => {
                let t = &self.threads[tid];
                let req = SyscallRequest {
                    thread: tid,
                    num,
                    args: [t.regs[1], t.regs[2], t.regs[3], t.regs[4], t.regs[5], t.regs[6]],
                };
                let ret = sys.handle(req);
                th!().regs[1] = ret;
                th!().pc = next_pc;
            }
            Inst::Pckt { rs, table } => {
                let value = r(&th!(), rs) as u32;
                if self.config.fast_path {
                    // Binary search over the materialized sorted table;
                    // build-time faults were cached in slow-path order.
                    let entry = self.cache.table(&self.text, table, self.config.max_pckt_table);
                    match &entry.result {
                        Err(kind) => return Err(*kind),
                        Ok(words) => {
                            if words.binary_search(&value).is_err() {
                                return Err(ExceptionKind::DivideByZero);
                            }
                        }
                    }
                } else {
                    let Some(&count) = self.text.get(table as usize) else {
                        return Err(ExceptionKind::TextFault { addr: table as u32 });
                    };
                    if count > self.config.max_pckt_table {
                        // A corrupted table counts as a failed assertion.
                        return Err(ExceptionKind::DivideByZero);
                    }
                    let start = table as usize + 1;
                    let end = start + count as usize;
                    if end > self.text.len() {
                        return Err(ExceptionKind::TextFault { addr: end as u32 });
                    }
                    let member = self.text[start..end].contains(&value);
                    if !member {
                        return Err(ExceptionKind::DivideByZero);
                    }
                }
                th!().pc = next_pc;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble_source;

    fn run_program(src: &str, max: u64) -> (Machine, ThreadId, StepOutcome) {
        let p = assemble_source(src).unwrap();
        let mut m = Machine::load(&p, MachineConfig::default());
        let t = m.spawn_thread(p.entry);
        let out = m.run(&mut NoSyscalls, max);
        (m, t, out)
    }

    #[test]
    fn arithmetic_and_loop() {
        let (m, t, _) = run_program(
            r#"
            start:
                movi r1, 10
                movi r2, 0
            loop:
                add  r2, r2, r1
                addi r1, r1, -1
                bne  r1, r0, loop
                halt
            "#,
            1_000,
        );
        assert_eq!(m.thread_state(t), ThreadState::Halted);
        assert_eq!(m.reg(t, 2), Some(55));
    }

    #[test]
    fn call_and_ret_use_the_stack() {
        let (m, t, _) = run_program(
            r#"
            start:
                movi r1, 3
                call double
                call double
                halt
            double:
                add r1, r1, r1
                ret
            "#,
            1_000,
        );
        assert_eq!(m.thread_state(t), ThreadState::Halted);
        assert_eq!(m.reg(t, 1), Some(12));
        // Stack pointer restored.
        assert_eq!(m.reg(t, 15), Some(MachineConfig::default().data_words as u64));
    }

    #[test]
    fn nested_calls() {
        let (m, t, _) = run_program(
            r#"
            start:
                movi r1, 1
                call a
                halt
            a:
                addi r1, r1, 10
                call b
                ret
            b:
                addi r1, r1, 100
                ret
            "#,
            1_000,
        );
        assert_eq!(m.thread_state(t), ThreadState::Halted);
        assert_eq!(m.reg(t, 1), Some(111));
    }

    #[test]
    fn indirect_call_via_register() {
        let (m, t, _) = run_program(
            r#"
            start:
                movi r4, f
                callr r4
                halt
            f:
                movi r1, 77
                ret
            "#,
            1_000,
        );
        assert_eq!(m.thread_state(t), ThreadState::Halted);
        assert_eq!(m.reg(t, 1), Some(77));
    }

    #[test]
    fn divide_by_zero_faults() {
        let (m, t, out) = run_program("start: movi r1, 5\nmovi r2, 0\ndivu r3, r1, r2\nhalt\n", 10);
        assert_eq!(m.thread_state(t), ThreadState::Faulted(ExceptionKind::DivideByZero));
        match out {
            StepOutcome::Exception(info) => {
                assert_eq!(info.kind, ExceptionKind::DivideByZero);
                assert_eq!(info.pc, 2);
            }
            other => panic!("expected exception, got {other:?}"),
        }
    }

    #[test]
    fn wild_jump_text_faults() {
        let (m, t, _) = run_program("start: jmp 9999\n", 10);
        assert!(matches!(m.thread_state(t), ThreadState::Faulted(ExceptionKind::TextFault { .. })));
    }

    #[test]
    fn illegal_instruction_faults() {
        let p = assemble_source("start: nop\nhalt\n").unwrap();
        let mut m = Machine::load(&p, MachineConfig::default());
        m.text_mut()[0] = 0xFF00_0000;
        let t = m.spawn_thread(0);
        m.run(&mut NoSyscalls, 10);
        assert_eq!(m.thread_state(t), ThreadState::Faulted(ExceptionKind::IllegalInstruction));
    }

    #[test]
    fn memory_fault_on_bad_store() {
        let (m, t, _) = run_program("start: movi r1, 0\nst [r1-1], r0\nhalt\n", 10);
        assert!(matches!(
            m.thread_state(t),
            ThreadState::Faulted(ExceptionKind::MemoryFault { .. })
        ));
    }

    #[test]
    fn stack_overflow_faults() {
        // Infinite recursion exhausts the data segment.
        let (m, t, _) = run_program("start: call start\n", 100_000);
        assert!(matches!(
            m.thread_state(t),
            ThreadState::Faulted(ExceptionKind::MemoryFault { .. })
        ));
    }

    #[test]
    fn pckt_membership() {
        // Passing check: value 7 in table {5, 7}.
        let (m, t, _) = run_program(
            "start: movi r12, 7\npckt r12, tab\nhalt\ntab: .word 2\n.word 5\n.word 7\n",
            10,
        );
        assert_eq!(m.thread_state(t), ThreadState::Halted);
        // Failing check raises divide-by-zero (the PECOS signal).
        let (m, t, _) = run_program(
            "start: movi r12, 9\npckt r12, tab\nhalt\ntab: .word 2\n.word 5\n.word 7\n",
            10,
        );
        assert_eq!(m.thread_state(t), ThreadState::Faulted(ExceptionKind::DivideByZero));
    }

    #[test]
    fn pckt_corrupted_count_is_failed_assertion() {
        let p = assemble_source("start: movi r12, 5\npckt r12, tab\nhalt\ntab: .word 1\n.word 5\n")
            .unwrap();
        let mut m = Machine::load(&p, MachineConfig::default());
        let tab = p.symbol("tab").unwrap() as usize;
        m.text_mut()[tab] = 0xFFFF_FFFF;
        let t = m.spawn_thread(p.entry);
        m.run(&mut NoSyscalls, 10);
        assert_eq!(m.thread_state(t), ThreadState::Faulted(ExceptionKind::DivideByZero));
    }

    #[test]
    fn syscalls_reach_the_handler() {
        struct Recorder(Vec<SyscallRequest>);
        impl SyscallHandler for Recorder {
            fn handle(&mut self, req: SyscallRequest) -> u64 {
                self.0.push(req);
                req.args[0] + 1
            }
        }
        let p = assemble_source("start: movi r1, 41\nsys 9\nhalt\n").unwrap();
        let mut m = Machine::load(&p, MachineConfig::default());
        let t = m.spawn_thread(p.entry);
        let mut rec = Recorder(Vec::new());
        m.run(&mut rec, 10);
        assert_eq!(rec.0.len(), 1);
        assert_eq!(rec.0[0].num, 9);
        assert_eq!(rec.0[0].args[0], 41);
        assert_eq!(m.reg(t, 1), Some(42)); // return value in r1
    }

    #[test]
    fn round_robin_interleaves_threads() {
        let p = assemble_source("start: addi r1, r1, 1\njmp start\n").unwrap();
        let mut m = Machine::load(&p, MachineConfig::default());
        let a = m.spawn_thread(0);
        let b = m.spawn_thread(0);
        for _ in 0..100 {
            m.step(&mut NoSyscalls);
        }
        // Both threads made equal progress.
        assert_eq!(m.thread_steps(a), 50);
        assert_eq!(m.thread_steps(b), 50);
        assert_eq!(m.total_steps(), 100);
    }

    #[test]
    fn kill_and_resume() {
        let p = assemble_source("start: movi r1, 0\ndivu r1, r1, r1\nhalt\n").unwrap();
        let mut m = Machine::load(&p, MachineConfig::default());
        let a = m.spawn_thread(0);
        let b = m.spawn_thread(0);
        // Run until both fault.
        while m.has_runnable() {
            m.step(&mut NoSyscalls);
        }
        assert!(matches!(m.thread_state(a), ThreadState::Faulted(_)));
        // Kill a: stays dead. Resume b at the faulting instruction: it
        // faults again (divisor still zero).
        m.kill_thread(a);
        assert_eq!(m.thread_state(a), ThreadState::Killed);
        m.resume_thread(b);
        assert_eq!(m.thread_state(b), ThreadState::Runnable);
        let out = m.step(&mut NoSyscalls);
        assert!(matches!(out, StepOutcome::Exception(_)));
    }

    #[test]
    fn peek_next_predicts_step() {
        let p = assemble_source("start: nop\nnop\nhalt\n").unwrap();
        let mut m = Machine::load(&p, MachineConfig::default());
        let t = m.spawn_thread(0);
        assert_eq!(m.peek_next(), Some((t, 0)));
        assert_eq!(m.step(&mut NoSyscalls), StepOutcome::Executed { thread: t, pc: 0 });
        assert_eq!(m.peek_next(), Some((t, 1)));
    }

    #[test]
    fn idle_when_everything_halts() {
        let (mut m, _, out) = run_program("start: halt\n", 10);
        assert_eq!(out, StepOutcome::Idle);
        assert_eq!(m.step(&mut NoSyscalls), StepOutcome::Idle);
        assert!(!m.has_runnable());
        assert_eq!(m.peek_next(), None);
    }
}
