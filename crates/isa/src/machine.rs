//! The multi-threaded interpreter.
//!
//! Threads are scheduled round-robin, one instruction per quantum,
//! which both models the paper's multi-threaded call-processing client
//! and creates the injection window it describes: "in the time interval
//! between reaching the breakpoint and restoring the correct
//! instruction, other thread(s) may come and execute the erroneous
//! instruction".
//!
//! Exceptions do not silently kill threads: [`Machine::step`] returns
//! the [`ExceptionInfo`] and parks the thread in
//! [`ThreadState::Faulted`], leaving the *policy* to the caller — the
//! PECOS signal handler checks whether the faulting PC lies inside an
//! assertion block and either terminates just that thread (graceful
//! recovery) or lets the process crash (system detection).

use serde::{Deserialize, Serialize};

use crate::decoded::{DecodedCache, FusedPlan, PlanSlot};
use crate::inst::{decode, Inst};
use crate::program::Program;
use crate::superblock::{self, Flow, OpCtx, SuperblockCache, SuperblockStats};
use crate::ThreadId;

/// Which execution engine [`Machine::run`] dispatches from. All three
/// are observationally identical — same retired-step counts, exception
/// PCs/kinds, register files and `peek_next` sequences — and differ
/// only in speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum Engine {
    /// The original word-at-a-time interpreter: strict decode on every
    /// fetch, round-robin scan on every step.
    Slow,
    /// PR 4's predecoded cache: decode-once slots, materialized `PCKT`
    /// tables, fused assertion supersteps, batched dispatch.
    Decoded,
    /// The superblock compiler on top of the decoded cache: hot
    /// straight-line regions run as direct-threaded plans chaining
    /// instructions and fused supersteps across basic blocks.
    Superblock,
}

impl Engine {
    /// All engines, for A/B matrices.
    pub const ALL: [Engine; 3] = [Engine::Slow, Engine::Decoded, Engine::Superblock];

    /// Parses the CLI spelling (`slow`/`decoded`/`superblock`).
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "slow" => Some(Engine::Slow),
            "decoded" => Some(Engine::Decoded),
            "superblock" => Some(Engine::Superblock),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Slow => "slow",
            Engine::Decoded => "decoded",
            Engine::Superblock => "superblock",
        }
    }
}

/// Configuration for a [`Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Words of per-thread data memory (stack + locals). The stack
    /// pointer (`r15`) starts here and grows down.
    pub data_words: usize,
    /// Maximum size of a PECOS target table; a stored count above this
    /// is treated as a failed assertion (corrupted table).
    pub max_pckt_table: u32,
    /// Back-compat fast-path switch: `false` selects [`Engine::Slow`],
    /// `true` (the default) selects the fastest engine unless
    /// [`MachineConfig::engine`] picks one explicitly.
    #[serde(default = "default_fast_path")]
    pub fast_path: bool,
    /// Explicit engine selection; `None` derives it from `fast_path`.
    #[serde(default)]
    pub engine: Option<Engine>,
}

fn default_fast_path() -> bool {
    true
}

impl MachineConfig {
    /// The engine actually in effect: an explicit [`Self::engine`]
    /// wins; otherwise `fast_path` maps to superblock (on) or slow
    /// (off).
    pub fn effective_engine(&self) -> Engine {
        self.engine.unwrap_or(if self.fast_path { Engine::Superblock } else { Engine::Slow })
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            data_words: 4_096,
            max_pckt_table: 1_024,
            fast_path: default_fast_path(),
            engine: None,
        }
    }
}

/// Why a thread faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExceptionKind {
    /// `DIVU` with a zero divisor, or a failed `PCKT` membership test.
    /// PECOS assertion blocks raise exactly this.
    DivideByZero,
    /// The fetched word did not decode (SIGILL-class).
    IllegalInstruction,
    /// The program counter left the text segment (wild jump;
    /// SIGSEGV-class).
    TextFault {
        /// The bad address.
        addr: u32,
    },
    /// A data-memory access left the thread's data segment
    /// (SIGSEGV-class), including stack overflow/underflow.
    MemoryFault {
        /// The bad word address.
        addr: i64,
    },
}

/// A reported exception.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExceptionInfo {
    /// The faulting thread.
    pub thread: ThreadId,
    /// Address of the faulting instruction (the PC the signal handler
    /// examines).
    pub pc: u16,
    /// The exception class.
    pub kind: ExceptionKind,
}

/// Lifecycle state of a machine thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThreadState {
    /// Eligible to run.
    Runnable,
    /// Executed `HALT` (normal completion).
    Halted,
    /// Raised an exception; awaiting a policy decision by the caller.
    Faulted(ExceptionKind),
    /// Terminated by a recovery action (e.g. the PECOS signal
    /// handler).
    Killed,
}

/// A syscall captured from a `SYS` instruction: the number and the six
/// argument registers `r1`–`r6`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallRequest {
    /// The calling thread.
    pub thread: ThreadId,
    /// Syscall number (the `SYS` immediate).
    pub num: u8,
    /// Argument registers `r1..=r6` at the call.
    pub args: [u64; 6],
}

/// Receiver for `SYS` instructions. The call-processing client's
/// database operations arrive here.
pub trait SyscallHandler {
    /// Handles one syscall; the return value is written to `r1`.
    fn handle(&mut self, req: SyscallRequest) -> u64;
}

/// A handler that ignores every syscall (returns 0).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSyscalls;

impl SyscallHandler for NoSyscalls {
    fn handle(&mut self, _req: SyscallRequest) -> u64 {
        0
    }
}

/// Result of one [`Machine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An instruction retired normally.
    Executed {
        /// The thread that ran.
        thread: ThreadId,
        /// Address of the executed instruction.
        pc: u16,
    },
    /// The running thread raised an exception and is now
    /// [`ThreadState::Faulted`].
    Exception(ExceptionInfo),
    /// No thread is runnable.
    Idle,
}

#[derive(Debug, Clone)]
struct Thread {
    regs: [u64; 16],
    pc: u16,
    data: Vec<u64>,
    state: ThreadState,
    steps: u64,
}

/// The machine: shared mutable text segment plus per-thread register
/// files and data memories.
#[derive(Debug, Clone)]
pub struct Machine {
    text: Vec<u32>,
    threads: Vec<Thread>,
    config: MachineConfig,
    engine: Engine,
    next: usize,
    total_steps: u64,
    supersteps: u64,
    cache: DecodedCache,
    sblocks: SuperblockCache,
}

impl Machine {
    /// Loads a program. Threads must be spawned explicitly.
    pub fn load(program: &Program, config: MachineConfig) -> Self {
        Machine {
            cache: DecodedCache::new(program.text.len()),
            sblocks: SuperblockCache::new(program.text.len()),
            text: program.text.clone(),
            threads: Vec::new(),
            engine: config.effective_engine(),
            config,
            next: 0,
            total_steps: 0,
            supersteps: 0,
        }
    }

    /// Spawns a thread at `entry` with a fresh register file and data
    /// memory; returns its id.
    pub fn spawn_thread(&mut self, entry: u16) -> ThreadId {
        let mut regs = [0u64; 16];
        regs[15] = self.config.data_words as u64; // stack grows down
        self.threads.push(Thread {
            regs,
            pc: entry,
            data: vec![0; self.config.data_words],
            state: ThreadState::Runnable,
            steps: 0,
        });
        self.threads.len() - 1
    }

    /// Shared text segment (read).
    pub fn text(&self) -> &[u32] {
        &self.text
    }

    /// Shared text segment (write) — the injector's escape hatch for
    /// arbitrary mutation. The whole decoded cache is conservatively
    /// invalidated because the caller may write any word through the
    /// returned slice; prefer [`Machine::store_text`] for single-word
    /// writes.
    pub fn text_mut(&mut self) -> &mut [u32] {
        self.cache.invalidate_all();
        self.sblocks.invalidate_all();
        &mut self.text
    }

    /// Writes one text word (the injector's corruption primitive) and
    /// invalidates exactly the cached state derived from it: the
    /// word's decoded slot, any fused assertion plan reading it, any
    /// materialized `PCKT` table containing it, and every compiled
    /// superblock whose input words cover it (the superblock cache
    /// additionally bumps its generation counter, so a stale plan can
    /// never fire even if it were still indexed).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the text segment.
    pub fn store_text(&mut self, addr: usize, word: u32) {
        self.text[addr] = word;
        self.cache.invalidate_word(addr);
        self.sblocks.invalidate_word(addr);
    }

    /// Registers the PECOS assertion blocks `[start, end)` (with the
    /// protected CFI at `end`) as candidates for fused superstep
    /// execution in [`Machine::run`]. Blocks whose instructions do not
    /// match a known instrumenter shape — or that are later corrupted
    /// into not matching — simply execute word-at-a-time; installing
    /// regions never changes observable behavior, only speed.
    pub fn install_fused_regions(&mut self, ranges: &[(u16, u16)]) {
        self.cache.install_regions(ranges);
    }

    /// Primes superblock entry PCs to the compile threshold so the
    /// named addresses compile on first dispatch instead of after the
    /// warm-up visits ([`Engine::Superblock`] only; a no-op on other
    /// engines). PECOS seeds its CFI-block heads here.
    pub fn seed_superblocks(&mut self, entries: &[u16]) {
        self.sblocks.seed(entries);
    }

    /// The engine in effect (resolved from the config at load).
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Superblock-engine activity: blocks compiled/invalidated/
    /// entered, steps retired inside blocks, and the resident plans
    /// with their chain lengths and exit descriptors.
    pub fn superblock_stats(&self) -> SuperblockStats {
        self.sblocks.stats()
    }

    /// Per-thread data memory (read) — lets parity tests compare final
    /// memory images across engines.
    pub fn data(&self, t: ThreadId) -> Option<&[u64]> {
        Some(&self.threads.get(t)?.data)
    }

    /// Number of spawned threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// State of a thread.
    ///
    /// # Panics
    ///
    /// Panics if `t` was never spawned.
    pub fn thread_state(&self, t: ThreadId) -> ThreadState {
        self.threads[t].state
    }

    /// Register `r` of thread `t`, or `None` for an unknown thread or
    /// register.
    pub fn reg(&self, t: ThreadId, r: usize) -> Option<u64> {
        self.threads.get(t)?.regs.get(r).copied()
    }

    /// Sets register `r` of thread `t` (test and harness support).
    ///
    /// # Panics
    ///
    /// Panics on an unknown thread or register index.
    pub fn set_reg(&mut self, t: ThreadId, r: usize, v: u64) {
        self.threads[t].regs[r] = v;
    }

    /// Current program counter of a thread.
    ///
    /// # Panics
    ///
    /// Panics if `t` was never spawned.
    pub fn pc(&self, t: ThreadId) -> u16 {
        self.threads[t].pc
    }

    /// Instructions executed by thread `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` was never spawned.
    pub fn thread_steps(&self, t: ThreadId) -> u64 {
        self.threads[t].steps
    }

    /// Instructions executed across all threads.
    pub fn total_steps(&self) -> u64 {
        self.total_steps
    }

    /// Assertion blocks executed as fused supersteps (diagnostic: lets
    /// tests and benches verify the fast path actually engaged).
    pub fn fused_supersteps(&self) -> u64 {
        self.supersteps
    }

    /// Terminates a thread as a recovery action (PECOS signal handler,
    /// manager). The thread will never run again.
    pub fn kill_thread(&mut self, t: ThreadId) {
        if let Some(th) = self.threads.get_mut(t) {
            th.state = ThreadState::Killed;
        }
    }

    /// Returns a faulted thread to the runnable state *at the faulting
    /// instruction* (used by handlers that repair state and retry).
    pub fn resume_thread(&mut self, t: ThreadId) {
        if let Some(th) = self.threads.get_mut(t) {
            if matches!(th.state, ThreadState::Faulted(_)) {
                th.state = ThreadState::Runnable;
            }
        }
    }

    /// True while at least one thread is runnable.
    pub fn has_runnable(&self) -> bool {
        self.threads.iter().any(|t| t.state == ThreadState::Runnable)
    }

    /// The thread the next [`Machine::step`] will run and the address
    /// it will execute, or `None` when idle. The injector uses this as
    /// its breakpoint hook.
    pub fn peek_next(&self) -> Option<(ThreadId, u16)> {
        let n = self.threads.len();
        if n == 0 {
            return None;
        }
        for i in 0..n {
            let idx = (self.next + i) % n;
            if self.threads[idx].state == ThreadState::Runnable {
                return Some((idx, self.threads[idx].pc));
            }
        }
        None
    }

    /// Executes one instruction of the next runnable thread
    /// (round-robin).
    pub fn step(&mut self, sys: &mut dyn SyscallHandler) -> StepOutcome {
        let Some((tid, pc)) = self.peek_next() else {
            return StepOutcome::Idle;
        };
        let n = self.threads.len();
        self.next = (tid + 1) % n;
        self.total_steps += 1;
        self.threads[tid].steps += 1;

        // Fetch.
        let Some(&word) = self.text.get(pc as usize) else {
            return self.fault(tid, pc, ExceptionKind::TextFault { addr: pc as u32 });
        };
        // Decode — through the predecoded cache on the fast path, so
        // strict decoding runs once per word instead of once per step.
        let inst = if self.engine != Engine::Slow {
            match self.cache.decode_at(pc as usize, word) {
                Some(i) => i,
                None => return self.fault(tid, pc, ExceptionKind::IllegalInstruction),
            }
        } else {
            match decode(word) {
                Ok(i) => i,
                Err(_) => return self.fault(tid, pc, ExceptionKind::IllegalInstruction),
            }
        };
        // Execute.
        match self.execute(tid, pc, inst, sys) {
            Ok(()) => StepOutcome::Executed { thread: tid, pc },
            Err(kind) => self.fault(tid, pc, kind),
        }
    }

    /// Runs until `max_steps` instructions have retired, a thread
    /// faults, or the machine goes idle. Returns the last outcome.
    ///
    /// On the fast engines, work reached by the only runnable thread
    /// is dispatched in descending-granularity order — a compiled
    /// superblock ([`Engine::Superblock`]), a fused assertion
    /// superstep, a decoded batch — each declining to the next tier
    /// whenever its exactness preconditions do not hold, with
    /// identical retired-step accounting, register effects, and fault
    /// PCs at every tier.
    pub fn run(&mut self, sys: &mut dyn SyscallHandler, max_steps: u64) -> StepOutcome {
        let mut last = StepOutcome::Idle;
        let mut remaining = max_steps;
        while remaining > 0 {
            if let Some((out, retired)) = self.try_superblock(sys, remaining) {
                remaining -= retired;
                last = out;
            } else if let Some((out, retired)) = self.try_superstep(remaining) {
                remaining -= retired;
                last = out;
            } else if let Some((out, retired)) = self.run_batch(sys, remaining) {
                remaining -= retired;
                last = out;
            } else {
                remaining -= 1;
                last = self.step(sys);
            }
            match last {
                StepOutcome::Executed { .. } => {}
                _ => break,
            }
        }
        last
    }

    /// Fast-path dispatch batch: when exactly one thread is runnable,
    /// steps it repeatedly without the per-step round-robin scan and
    /// modulo arithmetic of [`Machine::step`] — stopping at a fused
    /// region start (handed back to [`Machine::try_superstep`]), a
    /// non-`Executed` outcome, a thread-state change, or the end of the
    /// budget. Bookkeeping (retired counts, `next` rotation, fault
    /// sites) is identical to single-stepping.
    fn run_batch(
        &mut self,
        sys: &mut dyn SyscallHandler,
        remaining: u64,
    ) -> Option<(StepOutcome, u64)> {
        if self.engine == Engine::Slow {
            return None;
        }
        // The superblock engine also breaks batches after any control
        // transfer, handing the dispatcher the targets it counts
        // entries at (and the compiled blocks it enters there).
        let track_transfers = self.engine == Engine::Superblock;
        let mut runnable =
            self.threads.iter().enumerate().filter(|(_, t)| t.state == ThreadState::Runnable);
        let (tid, _) = runnable.next()?;
        if runnable.next().is_some() {
            return None;
        }
        let n = self.threads.len();
        self.next = if tid + 1 == n { 0 } else { tid + 1 };
        let mut retired: u64 = 0;
        loop {
            // The first step runs unconditionally: try_superstep already
            // declined this address, so deferring would livelock.
            let pc = self.threads[tid].pc;
            self.total_steps += 1;
            self.threads[tid].steps += 1;
            retired += 1;
            let Some(&word) = self.text.get(pc as usize) else {
                return Some((
                    self.fault(tid, pc, ExceptionKind::TextFault { addr: pc as u32 }),
                    retired,
                ));
            };
            let Some(inst) = self.cache.decode_at(pc as usize, word) else {
                return Some((self.fault(tid, pc, ExceptionKind::IllegalInstruction), retired));
            };
            let last = match self.execute(tid, pc, inst, sys) {
                Ok(()) => StepOutcome::Executed { thread: tid, pc },
                Err(kind) => self.fault(tid, pc, kind),
            };
            if retired == remaining
                || !matches!(last, StepOutcome::Executed { .. })
                || self.threads[tid].state != ThreadState::Runnable
                || self.cache.region_starting_at(self.threads[tid].pc).is_some()
                || (track_transfers && self.threads[tid].pc != pc.wrapping_add(1))
            {
                return Some((last, retired));
            }
        }
    }

    /// Attempts to execute a whole fused assertion block in one go.
    /// Returns the resulting outcome and the number of retired steps,
    /// or `None` to fall back to single-stepping.
    ///
    /// The fusion preconditions keep every observable identical to
    /// word-at-a-time execution: only the sole runnable thread may
    /// fuse (so round-robin interleaving is unaffected), the remaining
    /// budget must cover the whole block (so `max_steps` cutoffs land
    /// on the same instruction), and runtime faults other than the
    /// assertion's own divide-by-zero (e.g. a bad stack pointer under
    /// the `ret` block's load) bail out to the slow path.
    fn try_superstep(&mut self, remaining: u64) -> Option<(StepOutcome, u64)> {
        if self.engine == Engine::Slow || !self.cache.has_regions() {
            return None;
        }
        let mut runnable =
            self.threads.iter().enumerate().filter(|(_, t)| t.state == ThreadState::Runnable);
        let (tid, _) = runnable.next()?;
        if runnable.next().is_some() {
            return None;
        }
        let idx = self.cache.region_starting_at(self.threads[tid].pc)?;
        let (start, end) = self.cache.region(idx);
        let len = u64::from(end - start);
        if remaining < len {
            return None;
        }
        let plan = match self.cache.plan(&self.text, idx) {
            PlanSlot::Ready(p) => p,
            _ => return None,
        };

        // From here on the whole block retires (a failing assertion
        // faults on its last instruction, which still counts).
        let (r12, pass) = match plan {
            FusedPlan::Static { r11, r12, pass } => {
                if let Some(v) = r11 {
                    self.threads[tid].regs[11] = v;
                }
                (r12, pass)
            }
            FusedPlan::StackTable { table } => {
                let sp = self.threads[tid].regs[15];
                if sp as i64 >= self.config.data_words as i64 || (sp as i64) < 0 {
                    return None; // the block's `ld` would memory-fault
                }
                let value = self.threads[tid].data[sp as usize];
                (value, self.table_pass(table, value as u32)?)
            }
            FusedPlan::RegTable { src, table } => {
                let value = self.threads[tid].regs[src as usize & 0xF];
                (value, self.table_pass(table, value as u32)?)
            }
        };

        self.next = (tid + 1) % self.threads.len();
        self.total_steps += len;
        self.supersteps += 1;
        let th = &mut self.threads[tid];
        th.steps += len;
        th.regs[12] = r12;
        if matches!(plan, FusedPlan::Static { .. }) {
            th.regs[13] = pass as u64;
        }
        if pass {
            th.pc = end;
            Some((StepOutcome::Executed { thread: tid, pc: end - 1 }, len))
        } else {
            th.pc = end - 1;
            Some((self.fault(tid, end - 1, ExceptionKind::DivideByZero), len))
        }
    }

    /// Attempts to execute compiled superblocks at the sole runnable
    /// thread's PC, compiling them on the fly once entries are hot.
    /// Returns the outcome and retired-step count, or `None` to fall
    /// through to the superstep/batch/step tiers.
    ///
    /// Blocks chain: when a block exits with the thread still runnable
    /// and the next PC has (or earns) a compiled entry that fits the
    /// remaining budget, the next block runs in the same dispatch —
    /// whole loops execute without returning to the `run` cascade.
    /// Chaining is invisible to callers because ops cannot change
    /// thread states (syscall handlers never see the machine), so the
    /// sole-runnable precondition holds across the whole chain and the
    /// intermediate outcomes it skips are exactly the ones `run`
    /// overwrites anyway.
    ///
    /// The exactness preconditions mirror [`Machine::try_superstep`]:
    /// only the sole runnable thread enters blocks (round-robin
    /// interleaving unaffected), the remaining budget must cover each
    /// block's whole weight (budget cutoffs land on the same
    /// instruction), and an op that cannot reproduce the slow path's
    /// exception deopts with nothing of it retired.
    fn try_superblock(
        &mut self,
        sys: &mut dyn SyscallHandler,
        remaining: u64,
    ) -> Option<(StepOutcome, u64)> {
        if self.engine != Engine::Superblock {
            return None;
        }
        let mut runnable =
            self.threads.iter().enumerate().filter(|(_, t)| t.state == ThreadState::Runnable);
        let (tid, th) = runnable.next()?;
        if runnable.next().is_some() {
            return None;
        }
        let mut pc = th.pc;
        let n = self.threads.len();
        let data_words = self.config.data_words as i64;
        let mut total_retired: u64 = 0;
        let mut fused: u64 = 0;
        let mut entered: u64 = 0;
        let mut last = StepOutcome::Idle;
        'chain: loop {
            if !self.sblocks.has_entry(pc) {
                if pc as usize >= self.text.len() || !self.sblocks.note_miss(pc) {
                    break;
                }
                let block = superblock::compile(
                    &mut self.cache,
                    &self.text,
                    pc,
                    self.config.max_pckt_table,
                    self.sblocks.generation(),
                );
                self.sblocks.insert(block);
            }
            let Some(block) = self.sblocks.entry_for_exec(pc) else { break };
            if remaining - total_retired < block.total_steps {
                break;
            }
            let th = &mut self.threads[tid];
            let mut ctx = OpCtx {
                regs: &mut th.regs,
                data: &mut th.data,
                text: &self.text,
                sys: &mut *sys,
                tid,
                data_words,
                aux: &block.aux,
                pc: 0,
                supersteps: 0,
            };
            let mut retired: u64 = 0;
            let mut ended = false;
            for op in block.ops.iter() {
                match (op.exec)(&mut ctx, op) {
                    Flow::Next => {
                        retired += u64::from(op.weight);
                        last = StepOutcome::Executed { thread: tid, pc: op.out_pc };
                    }
                    Flow::Done => {
                        retired += u64::from(op.weight);
                        last = StepOutcome::Executed { thread: tid, pc: op.out_pc };
                        th.pc = ctx.pc;
                        ended = true;
                        break;
                    }
                    Flow::Halt => {
                        retired += u64::from(op.weight);
                        last = StepOutcome::Executed { thread: tid, pc: op.out_pc };
                        th.pc = op.pc;
                        th.state = ThreadState::Halted;
                        ended = true;
                        break;
                    }
                    Flow::Fault(fpc, kind) => {
                        retired += u64::from(op.weight);
                        last = StepOutcome::Exception(ExceptionInfo { thread: tid, pc: fpc, kind });
                        th.pc = fpc;
                        th.state = ThreadState::Faulted(kind);
                        ended = true;
                        break;
                    }
                    Flow::Deopt => {
                        // Nothing of this op retired; the word-at-a-time
                        // path takes over at its PC.
                        th.pc = op.pc;
                        fused += ctx.supersteps;
                        total_retired += retired;
                        if retired > 0 {
                            entered += 1;
                        }
                        break 'chain;
                    }
                }
            }
            if !ended {
                th.pc = block.fallthrough;
            }
            fused += ctx.supersteps;
            total_retired += retired;
            entered += 1;
            if th.state != ThreadState::Runnable || !matches!(last, StepOutcome::Executed { .. }) {
                break;
            }
            pc = th.pc;
        }
        if total_retired == 0 {
            return None; // first op of the first block deopted, or cold entry
        }
        self.threads[tid].steps += total_retired;
        self.next = (tid + 1) % n;
        self.total_steps += total_retired;
        self.supersteps += fused;
        self.sblocks.entered += entered;
        self.sblocks.block_steps += total_retired;
        Some((last, total_retired))
    }

    /// Membership result for a fused table check, or `None` when the
    /// table itself is faulty in a way whose exception the slow path
    /// must raise (so the superstep bails out).
    fn table_pass(&mut self, table: u16, value: u32) -> Option<bool> {
        let entry = self.cache.table(&self.text, table, self.config.max_pckt_table);
        match &entry.result {
            Ok(words) => Some(words.binary_search(&value).is_ok()),
            // A corrupted count is a failed assertion (divide-by-zero
            // at the PCKT), which the fail path below raises anyway.
            Err(ExceptionKind::DivideByZero) => Some(false),
            // Text faults have different kinds/addresses: slow path.
            Err(_) => None,
        }
    }

    fn fault(&mut self, tid: ThreadId, pc: u16, kind: ExceptionKind) -> StepOutcome {
        self.threads[tid].state = ThreadState::Faulted(kind);
        StepOutcome::Exception(ExceptionInfo { thread: tid, pc, kind })
    }

    fn execute(
        &mut self,
        tid: ThreadId,
        pc: u16,
        inst: Inst,
        sys: &mut dyn SyscallHandler,
    ) -> Result<(), ExceptionKind> {
        let data_words = self.config.data_words as i64;
        let next_pc = pc.wrapping_add(1);
        // Helper closures cannot borrow self twice; work on the thread
        // via index.
        macro_rules! th {
            () => {
                self.threads[tid]
            };
        }
        let r = |t: &Thread, i: u8| t.regs[i as usize & 0xF];
        let mem_addr = |base: u64, off: i16| -> Result<usize, ExceptionKind> {
            let addr = base as i64 + off as i64;
            if addr < 0 || addr >= data_words {
                Err(ExceptionKind::MemoryFault { addr })
            } else {
                Ok(addr as usize)
            }
        };

        match inst {
            Inst::Nop => th!().pc = next_pc,
            Inst::Halt => th!().state = ThreadState::Halted,
            Inst::Movi { rd, imm } => {
                th!().regs[rd as usize & 0xF] = imm as u64;
                th!().pc = next_pc;
            }
            Inst::Mov { rd, rs } => {
                let v = r(&th!(), rs);
                th!().regs[rd as usize & 0xF] = v;
                th!().pc = next_pc;
            }
            Inst::Add { rd, rs, rt } => {
                let v = r(&th!(), rs).wrapping_add(r(&th!(), rt));
                th!().regs[rd as usize & 0xF] = v;
                th!().pc = next_pc;
            }
            Inst::Sub { rd, rs, rt } => {
                let v = r(&th!(), rs).wrapping_sub(r(&th!(), rt));
                th!().regs[rd as usize & 0xF] = v;
                th!().pc = next_pc;
            }
            Inst::Mul { rd, rs, rt } => {
                let v = r(&th!(), rs).wrapping_mul(r(&th!(), rt));
                th!().regs[rd as usize & 0xF] = v;
                th!().pc = next_pc;
            }
            Inst::Divu { rd, rs, rt } => {
                let divisor = r(&th!(), rt);
                if divisor == 0 {
                    return Err(ExceptionKind::DivideByZero);
                }
                let v = r(&th!(), rs) / divisor;
                th!().regs[rd as usize & 0xF] = v;
                th!().pc = next_pc;
            }
            Inst::And { rd, rs, rt } => {
                let v = r(&th!(), rs) & r(&th!(), rt);
                th!().regs[rd as usize & 0xF] = v;
                th!().pc = next_pc;
            }
            Inst::Or { rd, rs, rt } => {
                let v = r(&th!(), rs) | r(&th!(), rt);
                th!().regs[rd as usize & 0xF] = v;
                th!().pc = next_pc;
            }
            Inst::Xor { rd, rs, rt } => {
                let v = r(&th!(), rs) ^ r(&th!(), rt);
                th!().regs[rd as usize & 0xF] = v;
                th!().pc = next_pc;
            }
            Inst::Addi { rd, rs, imm } => {
                let v = r(&th!(), rs).wrapping_add(imm as i64 as u64);
                th!().regs[rd as usize & 0xF] = v;
                th!().pc = next_pc;
            }
            Inst::Andi { rd, rs, imm } => {
                let v = r(&th!(), rs) & imm as u64;
                th!().regs[rd as usize & 0xF] = v;
                th!().pc = next_pc;
            }
            Inst::Seqz { rd, rs } => {
                let v = (r(&th!(), rs) == 0) as u64;
                th!().regs[rd as usize & 0xF] = v;
                th!().pc = next_pc;
            }
            Inst::Ld { rd, rs, imm } => {
                let addr = mem_addr(r(&th!(), rs), imm)?;
                let v = th!().data[addr];
                th!().regs[rd as usize & 0xF] = v;
                th!().pc = next_pc;
            }
            Inst::St { rs, rt, imm } => {
                let addr = mem_addr(r(&th!(), rs), imm)?;
                let v = r(&th!(), rt);
                th!().data[addr] = v;
                th!().pc = next_pc;
            }
            Inst::Ldt { rd, addr } => {
                let Some(&w) = self.text.get(addr as usize) else {
                    return Err(ExceptionKind::TextFault { addr: addr as u32 });
                };
                th!().regs[rd as usize & 0xF] = w as u64;
                th!().pc = next_pc;
            }
            Inst::Jmp { addr } => th!().pc = addr,
            Inst::Beq { rs, rt, addr } => {
                let taken = r(&th!(), rs) == r(&th!(), rt);
                th!().pc = if taken { addr } else { next_pc };
            }
            Inst::Bne { rs, rt, addr } => {
                let taken = r(&th!(), rs) != r(&th!(), rt);
                th!().pc = if taken { addr } else { next_pc };
            }
            Inst::Blt { rs, rt, addr } => {
                let taken = r(&th!(), rs) < r(&th!(), rt);
                th!().pc = if taken { addr } else { next_pc };
            }
            Inst::Bge { rs, rt, addr } => {
                let taken = r(&th!(), rs) >= r(&th!(), rt);
                th!().pc = if taken { addr } else { next_pc };
            }
            Inst::Call { addr } => {
                let sp = r(&th!(), 15).wrapping_sub(1);
                let slot = mem_addr(sp, 0)?;
                th!().data[slot] = next_pc as u64;
                th!().regs[15] = sp;
                th!().pc = addr;
            }
            Inst::Ret => {
                let sp = r(&th!(), 15);
                let slot = mem_addr(sp, 0)?;
                let ra = th!().data[slot];
                th!().regs[15] = sp.wrapping_add(1);
                th!().pc = ra as u16;
            }
            Inst::Callr { rs } => {
                let target = r(&th!(), rs) as u16;
                let sp = r(&th!(), 15).wrapping_sub(1);
                let slot = mem_addr(sp, 0)?;
                th!().data[slot] = next_pc as u64;
                th!().regs[15] = sp;
                th!().pc = target;
            }
            Inst::Jr { rs } => {
                let target = r(&th!(), rs) as u16;
                th!().pc = target;
            }
            Inst::Sys { num } => {
                let t = &self.threads[tid];
                let req = SyscallRequest {
                    thread: tid,
                    num,
                    args: [t.regs[1], t.regs[2], t.regs[3], t.regs[4], t.regs[5], t.regs[6]],
                };
                let ret = sys.handle(req);
                th!().regs[1] = ret;
                th!().pc = next_pc;
            }
            Inst::Pckt { rs, table } => {
                let value = r(&th!(), rs) as u32;
                if self.engine != Engine::Slow {
                    // Binary search over the materialized sorted table;
                    // build-time faults were cached in slow-path order.
                    let entry = self.cache.table(&self.text, table, self.config.max_pckt_table);
                    match &entry.result {
                        Err(kind) => return Err(*kind),
                        Ok(words) => {
                            if words.binary_search(&value).is_err() {
                                return Err(ExceptionKind::DivideByZero);
                            }
                        }
                    }
                } else {
                    let Some(&count) = self.text.get(table as usize) else {
                        return Err(ExceptionKind::TextFault { addr: table as u32 });
                    };
                    if count > self.config.max_pckt_table {
                        // A corrupted table counts as a failed assertion.
                        return Err(ExceptionKind::DivideByZero);
                    }
                    let start = table as usize + 1;
                    let end = start + count as usize;
                    if end > self.text.len() {
                        return Err(ExceptionKind::TextFault { addr: end as u32 });
                    }
                    let member = self.text[start..end].contains(&value);
                    if !member {
                        return Err(ExceptionKind::DivideByZero);
                    }
                }
                th!().pc = next_pc;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble_source;

    fn run_program(src: &str, max: u64) -> (Machine, ThreadId, StepOutcome) {
        let p = assemble_source(src).unwrap();
        let mut m = Machine::load(&p, MachineConfig::default());
        let t = m.spawn_thread(p.entry);
        let out = m.run(&mut NoSyscalls, max);
        (m, t, out)
    }

    #[test]
    fn arithmetic_and_loop() {
        let (m, t, _) = run_program(
            r#"
            start:
                movi r1, 10
                movi r2, 0
            loop:
                add  r2, r2, r1
                addi r1, r1, -1
                bne  r1, r0, loop
                halt
            "#,
            1_000,
        );
        assert_eq!(m.thread_state(t), ThreadState::Halted);
        assert_eq!(m.reg(t, 2), Some(55));
    }

    #[test]
    fn call_and_ret_use_the_stack() {
        let (m, t, _) = run_program(
            r#"
            start:
                movi r1, 3
                call double
                call double
                halt
            double:
                add r1, r1, r1
                ret
            "#,
            1_000,
        );
        assert_eq!(m.thread_state(t), ThreadState::Halted);
        assert_eq!(m.reg(t, 1), Some(12));
        // Stack pointer restored.
        assert_eq!(m.reg(t, 15), Some(MachineConfig::default().data_words as u64));
    }

    #[test]
    fn nested_calls() {
        let (m, t, _) = run_program(
            r#"
            start:
                movi r1, 1
                call a
                halt
            a:
                addi r1, r1, 10
                call b
                ret
            b:
                addi r1, r1, 100
                ret
            "#,
            1_000,
        );
        assert_eq!(m.thread_state(t), ThreadState::Halted);
        assert_eq!(m.reg(t, 1), Some(111));
    }

    #[test]
    fn indirect_call_via_register() {
        let (m, t, _) = run_program(
            r#"
            start:
                movi r4, f
                callr r4
                halt
            f:
                movi r1, 77
                ret
            "#,
            1_000,
        );
        assert_eq!(m.thread_state(t), ThreadState::Halted);
        assert_eq!(m.reg(t, 1), Some(77));
    }

    #[test]
    fn divide_by_zero_faults() {
        let (m, t, out) = run_program("start: movi r1, 5\nmovi r2, 0\ndivu r3, r1, r2\nhalt\n", 10);
        assert_eq!(m.thread_state(t), ThreadState::Faulted(ExceptionKind::DivideByZero));
        match out {
            StepOutcome::Exception(info) => {
                assert_eq!(info.kind, ExceptionKind::DivideByZero);
                assert_eq!(info.pc, 2);
            }
            other => panic!("expected exception, got {other:?}"),
        }
    }

    #[test]
    fn wild_jump_text_faults() {
        let (m, t, _) = run_program("start: jmp 9999\n", 10);
        assert!(matches!(m.thread_state(t), ThreadState::Faulted(ExceptionKind::TextFault { .. })));
    }

    #[test]
    fn illegal_instruction_faults() {
        let p = assemble_source("start: nop\nhalt\n").unwrap();
        let mut m = Machine::load(&p, MachineConfig::default());
        m.text_mut()[0] = 0xFF00_0000;
        let t = m.spawn_thread(0);
        m.run(&mut NoSyscalls, 10);
        assert_eq!(m.thread_state(t), ThreadState::Faulted(ExceptionKind::IllegalInstruction));
    }

    #[test]
    fn memory_fault_on_bad_store() {
        let (m, t, _) = run_program("start: movi r1, 0\nst [r1-1], r0\nhalt\n", 10);
        assert!(matches!(
            m.thread_state(t),
            ThreadState::Faulted(ExceptionKind::MemoryFault { .. })
        ));
    }

    #[test]
    fn stack_overflow_faults() {
        // Infinite recursion exhausts the data segment.
        let (m, t, _) = run_program("start: call start\n", 100_000);
        assert!(matches!(
            m.thread_state(t),
            ThreadState::Faulted(ExceptionKind::MemoryFault { .. })
        ));
    }

    #[test]
    fn pckt_membership() {
        // Passing check: value 7 in table {5, 7}.
        let (m, t, _) = run_program(
            "start: movi r12, 7\npckt r12, tab\nhalt\ntab: .word 2\n.word 5\n.word 7\n",
            10,
        );
        assert_eq!(m.thread_state(t), ThreadState::Halted);
        // Failing check raises divide-by-zero (the PECOS signal).
        let (m, t, _) = run_program(
            "start: movi r12, 9\npckt r12, tab\nhalt\ntab: .word 2\n.word 5\n.word 7\n",
            10,
        );
        assert_eq!(m.thread_state(t), ThreadState::Faulted(ExceptionKind::DivideByZero));
    }

    #[test]
    fn pckt_corrupted_count_is_failed_assertion() {
        let p = assemble_source("start: movi r12, 5\npckt r12, tab\nhalt\ntab: .word 1\n.word 5\n")
            .unwrap();
        let mut m = Machine::load(&p, MachineConfig::default());
        let tab = p.symbol("tab").unwrap() as usize;
        m.text_mut()[tab] = 0xFFFF_FFFF;
        let t = m.spawn_thread(p.entry);
        m.run(&mut NoSyscalls, 10);
        assert_eq!(m.thread_state(t), ThreadState::Faulted(ExceptionKind::DivideByZero));
    }

    #[test]
    fn syscalls_reach_the_handler() {
        struct Recorder(Vec<SyscallRequest>);
        impl SyscallHandler for Recorder {
            fn handle(&mut self, req: SyscallRequest) -> u64 {
                self.0.push(req);
                req.args[0] + 1
            }
        }
        let p = assemble_source("start: movi r1, 41\nsys 9\nhalt\n").unwrap();
        let mut m = Machine::load(&p, MachineConfig::default());
        let t = m.spawn_thread(p.entry);
        let mut rec = Recorder(Vec::new());
        m.run(&mut rec, 10);
        assert_eq!(rec.0.len(), 1);
        assert_eq!(rec.0[0].num, 9);
        assert_eq!(rec.0[0].args[0], 41);
        assert_eq!(m.reg(t, 1), Some(42)); // return value in r1
    }

    #[test]
    fn round_robin_interleaves_threads() {
        let p = assemble_source("start: addi r1, r1, 1\njmp start\n").unwrap();
        let mut m = Machine::load(&p, MachineConfig::default());
        let a = m.spawn_thread(0);
        let b = m.spawn_thread(0);
        for _ in 0..100 {
            m.step(&mut NoSyscalls);
        }
        // Both threads made equal progress.
        assert_eq!(m.thread_steps(a), 50);
        assert_eq!(m.thread_steps(b), 50);
        assert_eq!(m.total_steps(), 100);
    }

    #[test]
    fn kill_and_resume() {
        let p = assemble_source("start: movi r1, 0\ndivu r1, r1, r1\nhalt\n").unwrap();
        let mut m = Machine::load(&p, MachineConfig::default());
        let a = m.spawn_thread(0);
        let b = m.spawn_thread(0);
        // Run until both fault.
        while m.has_runnable() {
            m.step(&mut NoSyscalls);
        }
        assert!(matches!(m.thread_state(a), ThreadState::Faulted(_)));
        // Kill a: stays dead. Resume b at the faulting instruction: it
        // faults again (divisor still zero).
        m.kill_thread(a);
        assert_eq!(m.thread_state(a), ThreadState::Killed);
        m.resume_thread(b);
        assert_eq!(m.thread_state(b), ThreadState::Runnable);
        let out = m.step(&mut NoSyscalls);
        assert!(matches!(out, StepOutcome::Exception(_)));
    }

    #[test]
    fn peek_next_predicts_step() {
        let p = assemble_source("start: nop\nnop\nhalt\n").unwrap();
        let mut m = Machine::load(&p, MachineConfig::default());
        let t = m.spawn_thread(0);
        assert_eq!(m.peek_next(), Some((t, 0)));
        assert_eq!(m.step(&mut NoSyscalls), StepOutcome::Executed { thread: t, pc: 0 });
        assert_eq!(m.peek_next(), Some((t, 1)));
    }

    #[test]
    fn idle_when_everything_halts() {
        let (mut m, _, out) = run_program("start: halt\n", 10);
        assert_eq!(out, StepOutcome::Idle);
        assert_eq!(m.step(&mut NoSyscalls), StepOutcome::Idle);
        assert!(!m.has_runnable());
        assert_eq!(m.peek_next(), None);
    }

    const LOOP_SRC: &str = "
    start:
        movi r9, 5
    loop:
        addi r9, r9, -1
        add  r1, r1, r9
        bne  r9, r0, loop
        halt
    ";

    /// The breakpoint contract under superblock batching: between
    /// `run` batches of any size, `peek_next` must observe the same
    /// (thread, pc) sequence on every engine — the injector arms its
    /// breakpoints on exactly this view.
    #[test]
    fn peek_next_sequence_identical_across_engines_between_run_batches() {
        let p = assemble_source(LOOP_SRC).unwrap();
        let budgets = [1u64, 2, 3, 5, 7, 16, 31, 4, 9];
        for threads in [1usize, 2] {
            let drive = |engine: Engine| {
                let mut m = Machine::load(
                    &p,
                    MachineConfig { engine: Some(engine), ..MachineConfig::default() },
                );
                for _ in 0..threads {
                    m.spawn_thread(0);
                }
                let mut seq = Vec::new();
                let mut i = 0;
                loop {
                    seq.push(m.peek_next());
                    let out = m.run(&mut NoSyscalls, budgets[i % budgets.len()]);
                    if matches!(out, StepOutcome::Idle) {
                        break;
                    }
                    i += 1;
                    assert!(i < 10_000, "runaway run: {out:?}");
                }
                seq.push(m.peek_next());
                (seq, m.total_steps())
            };
            let slow = drive(Engine::Slow);
            assert_eq!(drive(Engine::Decoded), slow, "decoded diverged ({threads} threads)");
            assert_eq!(drive(Engine::Superblock), slow, "superblock diverged ({threads} threads)");
        }
    }

    #[test]
    fn superblock_stats_report_compiled_blocks() {
        let p = assemble_source(LOOP_SRC).unwrap();
        let mut m = Machine::load(&p, MachineConfig::default());
        assert_eq!(m.engine(), Engine::Superblock, "fast_path default resolves to superblock");
        m.spawn_thread(0);
        m.run(&mut NoSyscalls, 1_000);
        let stats = m.superblock_stats();
        assert!(stats.compiled > 0, "hot loop must compile");
        assert!(stats.entered > 0 && stats.block_steps > 0);
        assert!(!stats.blocks.is_empty());
        assert!(stats.blocks.iter().all(|b| b.ops > 0 && b.steps > 0 && !b.exit.is_empty()));
    }

    #[test]
    fn store_text_invalidates_overlapping_superblocks() {
        let p = assemble_source(LOOP_SRC).unwrap();
        let mut m = Machine::load(&p, MachineConfig::default());
        m.spawn_thread(0);
        // Warm enough for the loop-head entry to get hot, compile and
        // enter (two batch dispatches reach it twice, the third enters
        // the compiled block), without finishing the program.
        m.run(&mut NoSyscalls, 10);
        let warm = m.superblock_stats();
        assert!(!warm.blocks.is_empty(), "warm phase must leave resident blocks");
        let covered = warm.blocks[0].entry as usize; // entry word overlaps its own block
        m.store_text(covered, p.text[covered]);
        let after = m.superblock_stats();
        assert!(after.invalidated > warm.invalidated, "overlapping block must be discarded");
        assert!(!after.blocks.iter().any(|b| b.entry as usize == covered));
        // The machine recompiles and still finishes correctly.
        let out = m.run(&mut NoSyscalls, 1_000);
        assert_eq!(out, StepOutcome::Idle);
        assert_eq!(m.reg(0, 1).unwrap(), 4 + 3 + 2 + 1);
        assert!(m.superblock_stats().compiled > after.compiled);
    }

    #[test]
    fn seed_superblocks_compiles_on_first_dispatch() {
        let p = assemble_source(LOOP_SRC).unwrap();
        // Unseeded: the entry must get hot first, so nothing compiles
        // at the very first dispatch.
        let mut cold = Machine::load(&p, MachineConfig::default());
        cold.spawn_thread(0);
        cold.run(&mut NoSyscalls, 1);
        assert_eq!(cold.superblock_stats().compiled, 0);
        // Seeded: compiled and entered on the very first dispatch (the
        // budget exactly covers the 4-step entry block).
        let mut hot = Machine::load(&p, MachineConfig::default());
        hot.seed_superblocks(&[0]);
        hot.spawn_thread(0);
        hot.run(&mut NoSyscalls, 4);
        let stats = hot.superblock_stats();
        assert_eq!(stats.compiled, 1);
        assert!(stats.entered >= 1);
    }

    #[test]
    fn engine_parse_names_and_precedence() {
        for engine in Engine::ALL {
            assert_eq!(Engine::parse(engine.name()), Some(engine));
        }
        assert_eq!(Engine::parse("warp"), None);
        let explicit =
            MachineConfig { fast_path: true, engine: Some(Engine::Slow), ..Default::default() };
        assert_eq!(explicit.effective_engine(), Engine::Slow, "explicit engine wins");
        let legacy_fast = MachineConfig { fast_path: true, engine: None, ..Default::default() };
        assert_eq!(legacy_fast.effective_engine(), Engine::Superblock);
        let legacy_slow = MachineConfig { fast_path: false, engine: None, ..Default::default() };
        assert_eq!(legacy_slow.effective_engine(), Engine::Slow);
    }
}
