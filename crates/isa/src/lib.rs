//! A small 32-bit RISC instruction-set simulator.
//!
//! The paper evaluates PECOS by injecting errors into the **text
//! segment** of a SPARC call-processing client and watching what the
//! machine does: crashes (SIGSEGV/SIGILL-class signals), hangs,
//! divide-by-zero exceptions raised by PECOS assertion blocks, or
//! silent data corruption. Reproducing that requires a machine with
//! real, bit-level instruction encodings — so this crate provides one:
//!
//! * [`Inst`] — the instruction set, with exact 32-bit encodings
//!   ([`encode`]/[`decode`]), including the control-flow instructions
//!   (CFIs) PECOS protects and the [`Inst::Pckt`] table-membership
//!   check used for multi-target assertions.
//! * [`asm`] — a two-pass assembler over a symbolic AST
//!   ([`asm::Assembly`]); PECOS instruments this AST, never raw bytes,
//!   mirroring the paper's assembly-level parser.
//! * [`Program`] — assembled text plus the symbol table.
//! * [`Machine`] — a deterministic round-robin multi-threaded
//!   interpreter with per-thread registers, stack and data memory,
//!   precise exceptions and a syscall bridge ([`SyscallHandler`])
//!   through which client programs reach the controller database.
//!
//! The text segment is mutable at run time ([`Machine::text_mut`]) so
//! the fault injector can flip real instruction bits; decoding errors,
//! wild jumps and bad memory accesses then surface as the same
//! exception classes a real processor would raise.
//!
//! # Example
//!
//! ```
//! use wtnc_isa::{asm, Machine, MachineConfig, NoSyscalls, ThreadState};
//!
//! let program = asm::assemble_source(
//!     r#"
//!     start:
//!         movi r1, 10
//!         movi r2, 0
//!     loop:
//!         add  r2, r2, r1
//!         addi r1, r1, -1
//!         bne  r1, r0, loop
//!         halt
//!     "#,
//! ).unwrap();
//! let mut m = Machine::load(&program, MachineConfig::default());
//! let t = m.spawn_thread(program.entry);
//! m.run(&mut NoSyscalls, 1_000);
//! assert_eq!(m.thread_state(t), ThreadState::Halted);
//! assert_eq!(m.reg(t, 2).unwrap(), 55); // 10+9+...+1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
mod decoded;
mod inst;
mod machine;
mod program;
mod superblock;

pub use inst::{decode, encode, DecodeError, Inst, OPCODE_SHIFT, TARGET_MASK};
pub use machine::{
    Engine, ExceptionInfo, ExceptionKind, Machine, MachineConfig, NoSyscalls, StepOutcome,
    SyscallHandler, SyscallRequest, ThreadState,
};
pub use program::Program;
pub use superblock::{ExitKind, SuperblockInfo, SuperblockStats};

/// Identifier of a machine thread (index into the machine's thread
/// table).
pub type ThreadId = usize;
