//! Property-based tests of the ISA: encoding totality and machine
//! determinism.

use proptest::prelude::*;
use wtnc_isa::{
    asm, decode, encode, Inst, Machine, MachineConfig, NoSyscalls, Program, StepOutcome,
};

fn arb_reg() -> impl Strategy<Value = u8> {
    0u8..16
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        Just(Inst::Nop),
        Just(Inst::Halt),
        Just(Inst::Ret),
        (arb_reg(), any::<u16>()).prop_map(|(rd, imm)| Inst::Movi { rd, imm }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Inst::Mov { rd, rs }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Inst::Seqz { rd, rs }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs, rt)| Inst::Add { rd, rs, rt }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs, rt)| Inst::Sub { rd, rs, rt }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs, rt)| Inst::Mul { rd, rs, rt }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs, rt)| Inst::Divu { rd, rs, rt }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs, rt)| Inst::And { rd, rs, rt }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs, rt)| Inst::Or { rd, rs, rt }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs, rt)| Inst::Xor { rd, rs, rt }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rd, rs, imm)| Inst::Addi { rd, rs, imm }),
        (arb_reg(), arb_reg(), any::<u16>()).prop_map(|(rd, rs, imm)| Inst::Andi { rd, rs, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rd, rs, imm)| Inst::Ld { rd, rs, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rs, rt, imm)| Inst::St { rs, rt, imm }),
        (arb_reg(), any::<u16>()).prop_map(|(rd, addr)| Inst::Ldt { rd, addr }),
        any::<u16>().prop_map(|addr| Inst::Jmp { addr }),
        (arb_reg(), arb_reg(), any::<u16>()).prop_map(|(rs, rt, addr)| Inst::Beq { rs, rt, addr }),
        (arb_reg(), arb_reg(), any::<u16>()).prop_map(|(rs, rt, addr)| Inst::Bne { rs, rt, addr }),
        (arb_reg(), arb_reg(), any::<u16>()).prop_map(|(rs, rt, addr)| Inst::Blt { rs, rt, addr }),
        (arb_reg(), arb_reg(), any::<u16>()).prop_map(|(rs, rt, addr)| Inst::Bge { rs, rt, addr }),
        any::<u16>().prop_map(|addr| Inst::Call { addr }),
        arb_reg().prop_map(|rs| Inst::Callr { rs }),
        arb_reg().prop_map(|rs| Inst::Jr { rs }),
        any::<u8>().prop_map(|num| Inst::Sys { num }),
        (arb_reg(), any::<u16>()).prop_map(|(rs, table)| Inst::Pckt { rs, table }),
    ]
}

proptest! {
    /// Every instruction round-trips through its encoding exactly.
    #[test]
    fn encode_decode_round_trip(inst in arb_inst()) {
        prop_assert_eq!(decode(encode(inst)), Ok(inst));
    }

    /// Strict decoding: any 32-bit word either decodes to an
    /// instruction whose re-encoding is bit-identical, or errors.
    /// (No word decodes "loosely".)
    #[test]
    fn decode_is_strict(word in any::<u32>()) {
        if let Ok(inst) = decode(word) {
            prop_assert_eq!(encode(inst), word);
        }
    }

    /// The machine is deterministic: two runs of the same program with
    /// the same thread layout retire identical step counts and end in
    /// identical register states.
    #[test]
    fn machine_is_deterministic(
        seed_vals in prop::collection::vec(any::<u16>(), 1..8),
        threads in 1usize..4,
    ) {
        // A small, always-terminating program parameterized by data.
        let mut src = String::from("start:\n");
        for (i, v) in seed_vals.iter().enumerate() {
            src.push_str(&format!("    movi r{}, {}\n", 1 + (i % 6), v));
            src.push_str(&format!("    add r7, r7, r{}\n", 1 + (i % 6)));
        }
        src.push_str("    movi r9, 5\nloop:\n    addi r9, r9, -1\n    bne r9, r0, loop\n    halt\n");
        let program = asm::assemble_source(&src).unwrap();

        let run = || {
            let mut m = Machine::load(&program, MachineConfig::default());
            for _ in 0..threads {
                m.spawn_thread(program.entry);
            }
            m.run(&mut NoSyscalls, 100_000);
            let regs: Vec<Vec<u64>> = (0..threads)
                .map(|t| (0..16).map(|r| m.reg(t, r).unwrap()).collect())
                .collect();
            (m.total_steps(), regs)
        };
        prop_assert_eq!(run(), run());
    }

    /// The predecoded engine and the word-at-a-time engine produce
    /// identical step-outcome traces (including exception PCs and
    /// kinds) and identical final register/memory/step state — for
    /// random programs, random undecodable words, and random mid-run
    /// text corruptions, which must invalidate the decoded cache.
    #[test]
    fn predecoded_engine_is_trace_identical(
        text in prop::collection::vec(
            prop_oneof![
                arb_inst().prop_map(encode),
                arb_inst().prop_map(encode),
                arb_inst().prop_map(encode),
                arb_inst().prop_map(encode),
                any::<u32>(),
            ],
            4..48,
        ),
        threads in 1usize..3,
        corruptions in prop::collection::vec(
            (0u64..1_500, any::<prop::sample::Index>(), any::<u32>()),
            0..4,
        ),
    ) {
        let program =
            Program { text, symbols: std::collections::BTreeMap::new(), entry: 0 };
        let mk = |fast_path: bool| {
            let mut m = Machine::load(
                &program,
                MachineConfig { fast_path, ..MachineConfig::default() },
            );
            for _ in 0..threads {
                m.spawn_thread(program.entry);
            }
            m
        };
        let mut fast = mk(true);
        let mut slow = mk(false);
        for step in 0..1_500u64 {
            for &(at, ref idx, word) in &corruptions {
                if at == step {
                    let addr = idx.index(program.text.len());
                    fast.store_text(addr, word);
                    slow.store_text(addr, word);
                }
            }
            let a = fast.step(&mut NoSyscalls);
            let b = slow.step(&mut NoSyscalls);
            prop_assert_eq!(a, b, "trace diverged at step {}", step);
            if a == StepOutcome::Idle {
                break;
            }
        }
        prop_assert_eq!(fast.total_steps(), slow.total_steps());
        prop_assert_eq!(fast.text(), slow.text());
        for t in 0..threads {
            prop_assert_eq!(fast.thread_state(t), slow.thread_state(t));
            prop_assert_eq!(fast.pc(t), slow.pc(t));
            prop_assert_eq!(fast.thread_steps(t), slow.thread_steps(t));
            for r in 0..16 {
                prop_assert_eq!(fast.reg(t, r), slow.reg(t, r));
            }
            prop_assert_eq!(fast.data(t), slow.data(t));
        }
    }

    /// Assembled programs never contain words that fail to decode
    /// (data words emitted via `.word` excluded by construction here).
    #[test]
    fn assembler_emits_decodable_text(n in 1usize..20) {
        let mut src = String::from("start:\n");
        for i in 0..n {
            src.push_str(&format!("    addi r1, r1, {}\n", i % 100));
        }
        src.push_str("    halt\n");
        let program = asm::assemble_source(&src).unwrap();
        for &word in &program.text {
            prop_assert!(decode(word).is_ok());
        }
    }
}
