//! CRC-32 kernel microbenchmark: the one-byte-at-a-time reference, the
//! portable slice-by-8 kernel, and the PCLMULQDQ hardware folding
//! kernel across 64 B – 64 KiB buffers — the block sizes the static
//! audit, journal framing and checkpoint MACs actually hash.
//!
//! Emits `results/BENCH_crc_kernel.json` with per-size throughput and
//! the hw-vs-slice8 speedup. On hosts without PCLMULQDQ (or with
//! `WTNC_NO_HWCRC=1`) the "hardware" column measures the fallback and
//! `hw_available` is stamped false, so the artifact can't overstate a
//! host it never ran on.
//!
//! ```sh
//! cargo bench -p wtnc-bench --bench crc_kernel
//! ```

use std::time::Instant;

use wtnc::db::{crc32_bytewise, crc32_slice8, crc32_with, crc_kernel, CrcKernel};

/// Best-of-3 throughput (bytes/second) of `f` over `data`, with the
/// repetition count scaled so each sample hashes ~8 MiB.
fn throughput(data: &[u8], mut f: impl FnMut(&[u8]) -> u32) -> f64 {
    let reps = ((8 << 20) / data.len()).max(1);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(f(std::hint::black_box(data)));
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    (reps * data.len()) as f64 / best
}

fn gibs(bytes_per_sec: f64) -> f64 {
    bytes_per_sec / (1u64 << 30) as f64
}

fn main() {
    let hw_available = crc_kernel() == CrcKernel::Hardware;
    let host = wtnc_bench::host_info_json();
    println!("CRC-32 kernels (64 B – 64 KiB), host: {host}");
    println!("detected kernel: {} (hw_available: {hw_available})\n", crc_kernel().name());
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>10} {:>10}",
        "size", "bytewise", "slice8", "hw", "s8/byte", "hw/s8"
    );

    let mut rows = String::new();
    for size in [64usize, 256, 1024, 4096, 16384, 65536] {
        let data: Vec<u8> = (0..size).map(|i| (i.wrapping_mul(31) % 251) as u8).collect();
        let tp_byte = throughput(&data, crc32_bytewise);
        let tp_s8 = throughput(&data, crc32_slice8);
        let tp_hw = throughput(&data, |d| crc32_with(CrcKernel::Hardware, d));
        let s8_vs_byte = tp_s8 / tp_byte.max(1.0);
        let hw_vs_s8 = tp_hw / tp_s8.max(1.0);
        println!(
            "{:>8} {:>11.3} GiB/s {:>8.3} GiB/s {:>8.3} GiB/s {:>9.2}x {:>9.2}x",
            size,
            gibs(tp_byte),
            gibs(tp_s8),
            gibs(tp_hw),
            s8_vs_byte,
            hw_vs_s8
        );
        rows.push_str(&format!(
            "    {{\"size\": {size}, \"bytewise_gibs\": {:.4}, \"slice8_gibs\": {:.4}, \
             \"hw_gibs\": {:.4}, \"slice8_vs_bytewise\": {s8_vs_byte:.3}, \
             \"hw_vs_slice8\": {hw_vs_s8:.3}}},\n",
            gibs(tp_byte),
            gibs(tp_s8),
            gibs(tp_hw)
        ));
    }
    let rows = rows.trim_end_matches(",\n").to_string();

    let json = format!(
        "{{\n  \"bench\": \"crc_kernel\",\n  \"host\": {host},\n  \
         \"hw_available\": {hw_available},\n  \"kernel_detected\": \"{}\",\n  \
         \"sizes\": [\n{rows}\n  ]\n}}\n",
        crc_kernel().name()
    );
    wtnc_bench::write_results("crc_kernel", &json);
}
