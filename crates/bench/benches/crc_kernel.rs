//! CRC-32 kernel microbenchmark: the slice-by-8 kernel against the
//! one-byte-at-a-time reference it replaced in the static-data audit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wtnc::db::{crc32, crc32_bytewise};

fn bench_crc(c: &mut Criterion) {
    let mut group = c.benchmark_group("crc_kernel");
    for size in [64usize, 256, 4096, 65536] {
        let data: Vec<u8> = (0..size).map(|i| (i.wrapping_mul(31) % 251) as u8).collect();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("slice8", size), &data, |b, d| b.iter(|| crc32(d)));
        group.bench_with_input(BenchmarkId::new("bytewise", size), &data, |b, d| {
            b.iter(|| crc32_bytewise(d))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_crc);
criterion_main!(benches);
