//! Ablation: cost of the prioritized scheduler's table-ranking
//! decision vs plain round-robin, across database sizes. (The
//! *quality* ablation — escapes under each weight setting — is the
//! `ablation` binary; this measures the decision overhead the
//! scheduler adds to every audit tick.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wtnc::audit::{AuditScheduler, PriorityScheduler, PriorityWeights, RoundRobinScheduler};
use wtnc::db::{schema, Database};

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_priority");
    for scale in [1u32, 8, 32] {
        let db = Database::build(schema::six_table_schema(scale)).unwrap();
        let mut rr = RoundRobinScheduler::new();
        group.bench_with_input(BenchmarkId::new("round_robin", scale), &(), |b, ()| {
            b.iter(|| rr.next_table(&db))
        });
        let mut pri = PriorityScheduler::new(PriorityWeights::default());
        group.bench_with_input(BenchmarkId::new("prioritized", scale), &(), |b, ()| {
            b.iter(|| pri.next_table(&db))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
