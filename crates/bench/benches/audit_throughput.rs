//! Audit-cycle throughput: how fast one full audit sweep of the
//! standard database runs, per element mix and database size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wtnc::audit::{AuditConfig, AuditProcess};
use wtnc::db::{schema, Database, DbApi};
use wtnc::sim::{ProcessRegistry, SimTime};

fn populated_db(slots: u32) -> Database {
    let mut db = Database::build(schema::standard_schema_with_slots(slots)).unwrap();
    // Fill ~70% of the dynamic tables with linked call loops.
    let n = (slots as usize * 7 / 10) as u32;
    for _ in 0..n {
        let p = db.alloc_record_raw(schema::PROCESS_TABLE).unwrap();
        let c = db.alloc_record_raw(schema::CONNECTION_TABLE).unwrap();
        let r = db.alloc_record_raw(schema::RESOURCE_TABLE).unwrap();
        db.write_field_raw(
            wtnc::db::RecordRef::new(schema::PROCESS_TABLE, p),
            schema::process::CONNECTION_ID,
            c as u64,
        )
        .unwrap();
        db.write_field_raw(
            wtnc::db::RecordRef::new(schema::CONNECTION_TABLE, c),
            schema::connection::CHANNEL_ID,
            r as u64,
        )
        .unwrap();
        db.write_field_raw(
            wtnc::db::RecordRef::new(schema::RESOURCE_TABLE, r),
            schema::resource::PROCESS_ID,
            p as u64,
        )
        .unwrap();
    }
    db
}

fn bench_audit(c: &mut Criterion) {
    let mut group = c.benchmark_group("audit_throughput");
    for slots in [16u32, 64, 256] {
        let mut db = populated_db(slots);
        let mut api = DbApi::new();
        let mut registry = ProcessRegistry::new();
        let mut audit = AuditProcess::new(AuditConfig::default(), &db);
        group.throughput(Throughput::Elements(slots as u64 * 3));
        group.bench_with_input(BenchmarkId::new("full_cycle", slots), &(), |b, ()| {
            let mut tick = 0u64;
            b.iter(|| {
                tick += 10;
                audit.run_cycle(&mut db, &mut api, &mut registry, SimTime::from_secs(tick))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_audit);
criterion_main!(benches);
