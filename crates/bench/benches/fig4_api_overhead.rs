//! Criterion counterpart of paper Figure 4: wall-clock cost of every
//! database API function, original vs audit-instrumented.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wtnc::db::{schema, Database, DbApi};
use wtnc::sim::{Pid, SimTime};

fn bench_api(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_api_overhead");
    for instrumented in [false, true] {
        let label = if instrumented { "modified" } else { "original" };
        let mut db = Database::build(schema::standard_schema()).unwrap();
        let mut api = if instrumented { DbApi::new() } else { DbApi::without_instrumentation() };
        let pid = Pid(1);
        api.init(pid);
        let t = schema::CONNECTION_TABLE;
        let now = SimTime::from_secs(1);
        let idx = api.alloc_record(&mut db, pid, t, now).unwrap();
        let field_count = db.catalog().table(t).unwrap().def.fields.len();
        let values = vec![1u64; field_count];

        group.bench_with_input(BenchmarkId::new("DBread_fld", label), &(), |b, ()| {
            b.iter(|| {
                api.read_fld(&mut db, pid, t, idx, schema::connection::CALLER_ID, now).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("DBread_rec", label), &(), |b, ()| {
            b.iter(|| api.read_rec(&mut db, pid, t, idx, now).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("DBwrite_fld", label), &(), |b, ()| {
            b.iter(|| {
                api.write_fld(&mut db, pid, t, idx, schema::connection::STATE, 1, now).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("DBwrite_rec", label), &(), |b, ()| {
            b.iter(|| api.write_rec(&mut db, pid, t, idx, &values, now).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("DBmove", label), &(), |b, ()| {
            b.iter(|| api.move_rec(&mut db, pid, t, idx, 3, now).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_api);
criterion_main!(benches);
