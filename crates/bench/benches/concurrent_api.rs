//! Concurrent database API throughput: several OS threads share one
//! controller database behind a `Mutex`, the deployment shape of the
//! real controller (one shared memory region, many client processes).
//! Measures aggregate operations per second, original vs
//! audit-instrumented API, at different client counts.

use std::sync::Mutex;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wtnc::db::{schema, Database, DbApi};
use wtnc::sim::{Pid, SimTime};

const OPS_PER_THREAD: u64 = 400;

fn run_threads(shared: &Mutex<(Database, DbApi)>, threads: usize) {
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                let pid = Pid(t as u32 + 1);
                let now = SimTime::from_secs(1);
                let conn = schema::CONNECTION_TABLE;
                for i in 0..OPS_PER_THREAD {
                    let mut guard = shared.lock().expect("database mutex poisoned");
                    let (db, api) = &mut *guard;
                    match i % 4 {
                        0 => {
                            let _ = api.read_rec(db, pid, conn, (i % 8) as u32, now);
                        }
                        1 => {
                            let _ = api.write_fld(
                                db,
                                pid,
                                conn,
                                (i % 8) as u32,
                                schema::connection::STATE,
                                1,
                                now,
                            );
                        }
                        2 => {
                            let _ = api.read_fld(
                                db,
                                pid,
                                conn,
                                (i % 8) as u32,
                                schema::connection::CALLER_ID,
                                now,
                            );
                        }
                        _ => {
                            let _ = api.move_rec(db, pid, conn, (i % 8) as u32, (i % 4) as u8, now);
                        }
                    }
                }
            });
        }
    });
}

fn bench_concurrent(c: &mut Criterion) {
    let mut group = c.benchmark_group("concurrent_api");
    for instrumented in [false, true] {
        let label = if instrumented { "modified" } else { "original" };
        for threads in [1usize, 4, 8] {
            group.throughput(Throughput::Elements(OPS_PER_THREAD * threads as u64));
            group.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, &threads| {
                b.iter_batched(
                    || {
                        let mut db = Database::build(schema::standard_schema()).unwrap();
                        let mut api = if instrumented {
                            DbApi::new()
                        } else {
                            DbApi::without_instrumentation()
                        };
                        for t in 0..threads {
                            api.init(Pid(t as u32 + 1));
                        }
                        // Eight shared records to contend over.
                        for _ in 0..8 {
                            api.alloc_record(
                                &mut db,
                                Pid(1),
                                schema::CONNECTION_TABLE,
                                SimTime::ZERO,
                            )
                            .unwrap();
                        }
                        Mutex::new((db, api))
                    },
                    |shared| run_threads(&shared, threads),
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_concurrent);
criterion_main!(benches);
