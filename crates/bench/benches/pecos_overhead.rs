//! PECOS run-time overhead: instruction-count and wall-clock cost of
//! executing the instrumented client vs the plain client — the
//! slowdown the assertion blocks impose on an error-free run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wtnc::isa::{asm::Assembly, Machine, MachineConfig, NoSyscalls};
use wtnc::pecos::instrument;

const PROGRAM: &str = r#"
start:
    movi r1, 50
    movi r2, 0
loop:
    add  r2, r2, r1
    call twiddle
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
twiddle:
    addi r2, r2, 3
    ret
"#;

fn bench_pecos(c: &mut Criterion) {
    let asm = Assembly::parse(PROGRAM).unwrap();
    let plain = asm.assemble().unwrap();
    let instrumented = instrument(&asm).unwrap();

    // Report the dynamic instruction-count overhead once.
    let count_steps = |program: &wtnc::isa::Program| {
        let mut m = Machine::load(program, MachineConfig::default());
        m.spawn_thread(program.entry);
        m.run(&mut NoSyscalls, 1_000_000);
        m.total_steps()
    };
    let plain_steps = count_steps(&plain);
    let inst_steps = count_steps(&instrumented.program);
    eprintln!(
        "pecos dynamic overhead: {plain_steps} -> {inst_steps} instructions \
         ({:.1}% more), text {:.1}% larger",
        (inst_steps as f64 / plain_steps as f64 - 1.0) * 100.0,
        instrumented.meta.size_overhead() * 100.0,
    );

    let mut group = c.benchmark_group("pecos_overhead");
    for (label, program) in [("plain", &plain), ("instrumented", &instrumented.program)] {
        group.bench_with_input(BenchmarkId::new("run_client", label), &(), |b, ()| {
            b.iter(|| {
                let mut m = Machine::load(program, MachineConfig::default());
                m.spawn_thread(program.entry);
                m.run(&mut NoSyscalls, 1_000_000)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pecos);
criterion_main!(benches);
