//! Quality ablation of the prioritized-audit weights (DESIGN.md §4):
//! each importance term of §4.4.1 — access frequency, object nature,
//! error history — is disabled in turn, and the resulting
//! escaped-error percentage is compared against the full scheduler
//! and the round-robin baseline.
//!
//! ```sh
//! cargo run --release -p wtnc-bench --bin ablation
//! ```

use wtnc::audit::PriorityWeights;
use wtnc::inject::priority_campaign::{run_once_with_weights, PriorityCampaignConfig};
use wtnc::sim::{SimDuration, SimRng};
use wtnc_bench::scaled_runs;

fn campaign(
    config: &PriorityCampaignConfig,
    weights: Option<PriorityWeights>,
    runs: usize,
) -> (f64, f64) {
    let mut rng = SimRng::seed_from(config.seed);
    let mut injected = 0u64;
    let mut escaped = 0u64;
    let mut latency = wtnc::sim::stats::Accumulator::new();
    for _ in 0..runs {
        let r = run_once_with_weights(config, weights, rng.bits());
        injected += r.injected;
        escaped += r.escaped;
        if r.caught > 0 {
            latency.push(r.detection_latency_s);
        }
    }
    (100.0 * escaped as f64 / injected.max(1) as f64, latency.mean())
}

fn main() {
    let runs = scaled_runs(8);
    let config = PriorityCampaignConfig {
        proportional_errors: true,
        mtbf: SimDuration::from_secs(2),
        duration: SimDuration::from_secs(300),
        ..PriorityCampaignConfig::default()
    };
    println!("prioritized-audit weight ablation ({runs} runs each, proportional errors)\n");
    println!("{:<34} {:>12} {:>16}", "scheduler", "escaped %", "latency (s)");
    println!("{}", "-".repeat(64));

    let full = PriorityWeights::default();
    let cases: Vec<(&str, Option<PriorityWeights>)> = vec![
        ("round-robin baseline", None),
        ("full weights (paper §4.4.1)", Some(full)),
        ("no access-frequency term", Some(PriorityWeights { access: 0.0, ..full })),
        ("no object-nature term", Some(PriorityWeights { nature: 0.0, ..full })),
        ("no error-history term", Some(PriorityWeights { errors: 0.0, ..full })),
    ];
    for (name, weights) in cases {
        let (escaped, latency) = campaign(&config, weights, runs);
        println!("{name:<34} {escaped:>11.2}% {latency:>15.2}");
    }
    println!(
        "\nexpectation: the full scheduler escapes least; dropping the access-frequency term \
         hurts most under activity-correlated errors"
    );
}
