//! Process-fault campaign bench: availability and detection-latency
//! figures for the supervision tier under each process fault model —
//! client crash, client hang while holding a lock, client livelock,
//! audit-process crash, and audit-process hang.
//!
//! For every model the harness runs the seeded campaign from
//! `wtnc::inject::process_campaign` and reports faults injected,
//! detection coverage, mean detection latency and unavailability
//! interval (virtual seconds), warm restarts, storm escalations,
//! controller restarts, stolen locks, dropped calls, and the
//! availability percentage derived from the outcome tally.
//!
//! Emits `results/BENCH_process_faults.json`. Run counts scale with
//! `WTNC_RUNS_SCALE` as in the other campaign benches.
//!
//! ```sh
//! cargo run --release -p wtnc-bench --bin process_faults
//! ```

use wtnc::inject::process_campaign::{run_campaign, ProcessCampaignConfig, ProcessFaultModel};
use wtnc_bench::{host_info_json, outcome_counts_json, scaled_runs, write_results};

fn main() {
    let runs = scaled_runs(20);
    println!("Process-fault supervision campaign ({runs} runs per model)\n");
    println!(
        "{:>22} {:>9} {:>9} {:>11} {:>11} {:>9} {:>7} {:>7} {:>7} {:>9}",
        "model",
        "injected",
        "detected",
        "detect (s)",
        "unavail (s)",
        "restarts",
        "escal.",
        "ctrl-r",
        "locks",
        "avail (%)"
    );

    let mut model_jsons: Vec<String> = Vec::new();
    for model in ProcessFaultModel::ALL {
        let config = ProcessCampaignConfig { model, ..ProcessCampaignConfig::default() };
        let r = run_campaign(&config, runs);
        println!(
            "{:>22} {:>9} {:>9} {:>11.2} {:>11.2} {:>9} {:>7} {:>7} {:>7} {:>9.2}",
            model.name(),
            r.injected,
            r.detected,
            r.detection_latency_s,
            r.unavailable_s,
            r.restarts,
            r.escalations,
            r.controller_restarts,
            r.locks_stolen,
            r.outcomes.availability(),
        );
        model_jsons.push(format!(
            "    \"{}\": {{\n      \"injected\": {},\n      \"detected\": {},\n      \
             \"detection_latency_s\": {:.4},\n      \"unavailable_s\": {:.4},\n      \
             \"downtime_s\": {:.4},\n      \"restarts\": {},\n      \"escalations\": {},\n      \
             \"controller_restarts\": {},\n      \"dropped_calls\": {},\n      \
             \"locks_stolen\": {},\n      \"calls_completed\": {},\n      \
             \"availability_pct\": {:.4},\n      \"outcomes\": {}\n    }}",
            model.name(),
            r.injected,
            r.detected,
            r.detection_latency_s,
            r.unavailable_s,
            r.downtime_s,
            r.restarts,
            r.escalations,
            r.controller_restarts,
            r.dropped_calls,
            r.locks_stolen,
            r.calls_completed,
            r.outcomes.availability(),
            outcome_counts_json(&r.outcomes),
        ));
    }
    println!(
        "\npaper context: the controller's audit tier recovers hung and crashed call \
         processes by stealing their locks and warm-restarting them from database state; \
         repeated failures escalate to a controller restart"
    );

    let json = format!(
        "{{\n  \"bench\": \"process_faults\",\n  \"host\": {},\n  \"runs_per_model\": {runs},\n  \
         \"models\": {{\n{}\n  }}\n}}\n",
        host_info_json(),
        model_jsons.join(",\n")
    );
    write_results("process_faults", &json);
}
