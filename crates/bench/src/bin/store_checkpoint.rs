//! Checkpoint-cost bench for the incremental checkpoint engine.
//!
//! The tentpole claim of the delta-checkpoint path is that checkpoint
//! cost becomes O(dirty) instead of O(image): a delta serializes only
//! the dirty blocks plus the Merkle nodes on their root paths, while a
//! full image re-MACs and rewrites everything. This bench measures
//! that directly, sweeping image size × dirty fraction:
//!
//! 1. **full vs delta** — wall time to encode a full checkpoint
//!    (`encode_checkpoint_with_tree`) against a delta
//!    (`update_blocks` + `encode_delta_checkpoint`) at 1%, 10% and
//!    50% dirty blocks;
//! 2. **flat re-MAC vs Merkle path update** — the MAC maintenance
//!    cost alone: rebuilding every leaf + internal node
//!    (`MerkleTree::build`, what the flat-table design had to do)
//!    against recomputing only the dirty leaves' root paths;
//! 3. **O(log n) single-block update** — path-update latency as the
//!    leaf count doubles, with the tree depth alongside;
//! 4. **sw vs hw CRC framing** — journal record framing throughput
//!    under the slice-by-8 and hardware CRC kernels (the journal is
//!    the other half of every checkpoint interval).
//!
//! Gate: with `WTNC_BENCH_ASSERT_SPEEDUP=<x>` set, the bench fails
//! unless the delta path at ≤10% dirty is at least `x`× faster than a
//! full checkpoint on every measured image size. On a single-CPU host
//! the gate is skipped and the artifact is stamped, matching the other
//! speedup-gated benches. `WTNC_BENCH_SMOKE=1` (or `--smoke`) runs a
//! reduced sweep for CI.
//!
//! Emits `results/BENCH_store_checkpoint.json`.
//!
//! ```sh
//! cargo run --release -p wtnc-bench --bin store_checkpoint
//! ```

use std::time::Instant;

use wtnc::db::{set_crc_kernel_override, CapturedMutation, CrcKernel};
use wtnc::sim::SimRng;
use wtnc::store::{
    encode_checkpoint_with_tree, encode_delta_checkpoint, encode_record, MerkleTree,
};
use wtnc_bench::{host_info_json, write_results};

const KEY: [u8; 16] = *b"bench-ckpt-key16";
const BLOCK: usize = 256;

fn filled(len: usize, rng: &mut SimRng) -> Vec<u8> {
    let mut v = vec![0u8; len];
    for chunk in v.chunks_mut(8) {
        let b = rng.bits().to_le_bytes();
        chunk.copy_from_slice(&b[..chunk.len()]);
    }
    v
}

/// Evenly spread `count` dirty leaf indices over `leaf_count`, and
/// scribble on the corresponding content bytes so the delta has real
/// changes to carry.
fn dirty_leaves(
    region: &mut [u8],
    golden: &mut [u8],
    leaf_count: usize,
    count: usize,
    rng: &mut SimRng,
) -> Vec<usize> {
    let count = count.clamp(1, leaf_count);
    let mut dirty = Vec::with_capacity(count);
    for k in 0..count {
        let leaf = k * leaf_count / count;
        dirty.push(leaf);
        let start = leaf * BLOCK;
        let r = region.len();
        let content_len = r + golden.len();
        for off in (start..(start + BLOCK).min(content_len)).step_by(16) {
            let byte = rng.bits() as u8;
            if off < r {
                region[off] ^= byte | 1;
            } else {
                golden[off - r] ^= byte | 1;
            }
        }
    }
    dirty
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn main() {
    let smoke =
        std::env::var("WTNC_BENCH_SMOKE").is_ok() || std::env::args().any(|a| a == "--smoke");
    let gate: Option<f64> =
        std::env::var("WTNC_BENCH_ASSERT_SPEEDUP").ok().and_then(|s| s.parse().ok());
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let reps = if smoke { 3 } else { 15 };
    let sizes: &[usize] =
        if smoke { &[64 << 10, 256 << 10] } else { &[64 << 10, 256 << 10, 1 << 20] };
    let dirty_pcts = [1usize, 10, 50];

    println!("Incremental checkpoint cost bench ({} rep(s)/cell)\n", reps);
    println!(
        "{:>10} {:>7} {:>10} {:>10} {:>9} {:>12} {:>12} {:>11} {:>11}",
        "image (B)",
        "dirty%",
        "full (ms)",
        "delta (ms)",
        "speedup",
        "rebuild (ms)",
        "update (ms)",
        "full (B)",
        "delta (B)"
    );

    let mut sweep_jsons: Vec<String> = Vec::new();
    let mut gate_ok = true;
    let mut gate_worst = f64::INFINITY;
    for &total in sizes {
        let mut rng = SimRng::seed_from(0xC4EC_0000 + total as u64);
        let region_len = total / 2;
        let mut region = filled(region_len, &mut rng);
        let mut golden = filled(total - region_len, &mut rng);
        let leaf_count = total.div_ceil(BLOCK);
        for &pct in &dirty_pcts {
            let n_dirty = (leaf_count * pct / 100).max(1);
            let mut full_ms = Vec::with_capacity(reps);
            let mut delta_ms = Vec::with_capacity(reps);
            let mut rebuild_ms = Vec::with_capacity(reps);
            let mut update_ms = Vec::with_capacity(reps);
            let mut full_bytes = 0usize;
            let mut delta_bytes = 0usize;
            for _ in 0..reps {
                // A fresh full image + tree is the delta's base.
                let (full, base_tree) =
                    encode_checkpoint_with_tree(&region, &golden, 1, 0, BLOCK, &KEY);
                full_bytes = full.len();

                let dirty = dirty_leaves(&mut region, &mut golden, leaf_count, n_dirty, &mut rng);

                // Full path: encode the whole image again.
                let t = Instant::now();
                let (full2, _) = encode_checkpoint_with_tree(&region, &golden, 2, 0, BLOCK, &KEY);
                full_ms.push(t.elapsed().as_secs_f64() * 1e3);
                std::hint::black_box(&full2);

                // Delta path: root-path updates + dirty-block encode.
                let mut tree = base_tree.clone();
                let t = Instant::now();
                let updates = tree.update_blocks(&region, &golden, &dirty);
                update_ms.push(t.elapsed().as_secs_f64() * 1e3);
                let t = Instant::now();
                let updates2 = {
                    let mut t2 = base_tree.clone();
                    t2.update_blocks(&region, &golden, &dirty)
                };
                let delta = encode_delta_checkpoint(
                    &region, &golden, 2, 0, 1, BLOCK, &dirty, &updates2, &KEY,
                );
                delta_ms.push(t.elapsed().as_secs_f64() * 1e3);
                delta_bytes = delta.len();
                std::hint::black_box((&delta, &updates));

                // Flat-table equivalent: re-MAC everything from scratch.
                let t = Instant::now();
                let rebuilt = MerkleTree::build(&KEY, &region, &golden, 2, BLOCK);
                rebuild_ms.push(t.elapsed().as_secs_f64() * 1e3);
                std::hint::black_box(&rebuilt);
            }
            let full = median(&mut full_ms);
            let delta = median(&mut delta_ms);
            let rebuild = median(&mut rebuild_ms);
            let update = median(&mut update_ms);
            let speedup = full / delta.max(1e-9);
            println!(
                "{total:>10} {pct:>7} {full:>10.4} {delta:>10.4} {speedup:>8.1}x \
                 {rebuild:>12.4} {update:>12.4} {full_bytes:>11} {delta_bytes:>11}"
            );
            sweep_jsons.push(format!(
                "    {{\"image_bytes\": {total}, \"dirty_pct\": {pct}, \
                 \"full_ms\": {full:.5}, \"delta_ms\": {delta:.5}, \
                 \"speedup\": {speedup:.2}, \"flat_rebuild_ms\": {rebuild:.5}, \
                 \"path_update_ms\": {update:.5}, \"full_bytes\": {full_bytes}, \
                 \"delta_bytes\": {delta_bytes}}}"
            ));
            if pct <= 10 {
                gate_worst = gate_worst.min(speedup);
                if let Some(x) = gate {
                    gate_ok &= speedup >= x;
                }
            }
        }
    }

    // O(log n) single-block update curve.
    println!("\nSingle-block root-path update vs leaf count (O(log n))\n");
    println!("{:>10} {:>7} {:>12} {:>14}", "leaves", "depth", "update (us)", "rebuild (us)");
    let mut curve_jsons: Vec<String> = Vec::new();
    let leaf_exps: &[u32] = if smoke { &[8, 10, 12] } else { &[8, 10, 12, 14, 16] };
    for &exp in leaf_exps {
        let leaves = 1usize << exp;
        let total = leaves * BLOCK;
        let mut rng = SimRng::seed_from(0x106_0000 + exp as u64);
        let region_len = total / 2;
        let mut region = filled(region_len, &mut rng);
        let golden = filled(total - region_len, &mut rng);
        let base = MerkleTree::build(&KEY, &region, &golden, 1, BLOCK);
        let depth = base.depth();
        let mut update_us = Vec::with_capacity(reps);
        let mut rebuild_us = Vec::with_capacity(reps);
        for _ in 0..reps {
            let victim = rng.index(region_len);
            region[victim] ^= 0x5A;
            let mut tree = base.clone();
            let t = Instant::now();
            let updates = tree.update_blocks(&region, &golden, &[victim / BLOCK]);
            update_us.push(t.elapsed().as_secs_f64() * 1e6);
            std::hint::black_box(&updates);
            let t = Instant::now();
            let rebuilt = MerkleTree::build(&KEY, &region, &golden, 1, BLOCK);
            rebuild_us.push(t.elapsed().as_secs_f64() * 1e6);
            std::hint::black_box(&rebuilt);
        }
        let update = median(&mut update_us);
        let rebuild = median(&mut rebuild_us);
        println!("{leaves:>10} {depth:>7} {update:>12.2} {rebuild:>14.2}");
        curve_jsons.push(format!(
            "    {{\"leaves\": {leaves}, \"depth\": {depth}, \
             \"update_us\": {update:.3}, \"rebuild_us\": {rebuild:.3}}}"
        ));
    }

    // Journal framing: sw vs hw CRC kernel throughput.
    println!("\nJournal framing throughput (CRC kernel sweep)\n");
    let mut rng = SimRng::seed_from(0xF4A3);
    let records: Vec<CapturedMutation> = (0..if smoke { 256 } else { 2048 })
        .map(|i| CapturedMutation {
            gen: i as u64,
            offset: rng.index(1 << 16),
            bytes: filled(64 + rng.index(192), &mut rng),
            golden: i % 4 == 0,
        })
        .collect();
    let payload: usize = records.iter().map(|m| m.bytes.len()).sum();
    let mut crc_jsons: Vec<String> = Vec::new();
    for (kernel, name) in [(CrcKernel::Slice8, "slice8"), (CrcKernel::Hardware, "hardware")] {
        set_crc_kernel_override(Some(kernel));
        let mut mibs = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t = Instant::now();
            let mut total = 0usize;
            for m in &records {
                total += encode_record(m).len();
            }
            let secs = t.elapsed().as_secs_f64();
            std::hint::black_box(total);
            mibs.push(payload as f64 / (1 << 20) as f64 / secs.max(1e-12));
        }
        let rate = median(&mut mibs);
        println!("  {name:<9} {rate:>10.1} MiB/s over {payload} payload bytes");
        crc_jsons.push(format!("    {{\"kernel\": \"{name}\", \"mib_per_s\": {rate:.2}}}"));
    }
    set_crc_kernel_override(None);

    // The gate.
    let single_cpu = cpus < 2;
    let gate_json = match gate {
        Some(x) if single_cpu => {
            println!(
                "\nspeedup gate: skipped on a single-CPU host (worst delta@<=10% dirty \
                 speedup measured {gate_worst:.1}x, target {x:.1}x)"
            );
            format!(
                "{{\"target\": {x:.2}, \"worst_speedup\": {gate_worst:.2}, \
                 \"single_cpu_fallback\": true, \"passed\": null}}"
            )
        }
        Some(x) => {
            println!(
                "\nspeedup gate: delta@<=10% dirty worst {gate_worst:.1}x vs target {x:.1}x -> {}",
                if gate_ok { "PASS" } else { "FAIL" }
            );
            format!(
                "{{\"target\": {x:.2}, \"worst_speedup\": {gate_worst:.2}, \
                 \"single_cpu_fallback\": false, \"passed\": {gate_ok}}}"
            )
        }
        None => format!("{{\"target\": null, \"worst_speedup\": {gate_worst:.2}}}"),
    };

    let json = format!(
        "{{\n  \"bench\": \"store_checkpoint\",\n  \"host\": {},\n  \"smoke\": {smoke},\n  \
         \"block_size\": {BLOCK},\n  \"sweep\": [\n{}\n  ],\n  \
         \"single_block_update\": [\n{}\n  ],\n  \"journal_crc\": [\n{}\n  ],\n  \
         \"gate\": {gate_json}\n}}\n",
        host_info_json(),
        sweep_jsons.join(",\n"),
        curve_jsons.join(",\n"),
        crc_jsons.join(",\n"),
    );
    write_results("store_checkpoint", &json);

    if let Some(x) = gate {
        if !single_cpu {
            assert!(
                gate_ok,
                "delta checkpoint at <=10% dirty must be at least {x}x faster than a full \
                 checkpoint (worst measured {gate_worst:.2}x)"
            );
        }
    }
}
