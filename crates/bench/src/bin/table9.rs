//! Regenerates paper Table 9: cumulative results from **random
//! injection to the instruction stream** of the call-processing
//! client, across the four PECOS × audit configurations and all four
//! error models.
//!
//! ```sh
//! cargo run --release -p wtnc-bench --bin table9
//! ```

use wtnc::inject::text_campaign::{four_column_table, InjectionTarget};
use wtnc_bench::{
    host_info_json, outcome_columns_json, print_outcome_matrix, scaled_runs, write_results,
};

fn main() {
    let runs = scaled_runs(200);
    let columns = four_column_table(InjectionTarget::RandomText, runs, 4, 24, 0x7AB9);
    print_outcome_matrix(
        &format!(
            "Table 9 — random injection to the instruction stream ({runs} runs x 4 models per column)"
        ),
        &columns,
    );
    println!(
        "paper reference: PECOS detection 45% / 49%, system detection 66% -> 39%, \
         fail-silence violations 5% -> 2%, audits pick up ~7% (client->database propagation ~8%)"
    );
    let json = format!(
        "{{\n  \"bench\": \"table9\",\n  \"host\": {},\n  \"target\": \"RandomText\",\n  \
         \"runs_per_cell\": {runs},\n  \"seed\": 31417,\n  \"columns\": {}\n}}\n",
        host_info_json(),
        outcome_columns_json(&columns)
    );
    write_results("table9", &json);
}
