//! Parallel audit scaling benchmark: wall-clock time of one audit
//! cycle as the worker-pool size grows, across dirty-block fractions.
//!
//! Each measured cycle touches a controlled fraction of the database's
//! blocks with *valid* writes, then times `AuditProcess::run_cycle`
//! once per worker count. Every world sees the identical workload, so
//! besides timing this doubles as an end-to-end determinism check: the
//! bench asserts zero findings everywhere and byte-identical database
//! images between the serial world and every parallel world.
//!
//! Emits `results/BENCH_audit_scaling.json` including the host's CPU
//! count — speedups measured on a single-core container are honest
//! (≈1.0x) and must not be read as the engine's multi-core ceiling.
//!
//! Set `WTNC_BENCH_SMOKE=1` (or pass `--smoke`) for a one-iteration CI
//! pass, and `WTNC_WORKERS=n` to measure a single worker count (the
//! serial baseline is always measured for the speedup column).
//!
//! ```sh
//! cargo run --release -p wtnc-bench --bin audit_scaling
//! ```

use std::time::Instant;

use wtnc::audit::{AuditConfig, AuditProcess, ParallelConfig};
use wtnc::db::{schema, Database, DbApi, DIRTY_BLOCK_SIZE};
use wtnc::sim::{ProcessRegistry, SimTime};

const SLOTS: u32 = 512;

fn populated_db() -> Database {
    let mut db = Database::build(schema::standard_schema_with_slots(SLOTS)).unwrap();
    // Fill ~70% of the dynamic tables with linked call loops so the
    // structural/range/semantic screens have real records to walk.
    for _ in 0..(SLOTS * 7 / 10) {
        let p = db.alloc_record_raw(schema::PROCESS_TABLE).unwrap();
        let c = db.alloc_record_raw(schema::CONNECTION_TABLE).unwrap();
        let r = db.alloc_record_raw(schema::RESOURCE_TABLE).unwrap();
        db.write_field_raw(
            wtnc::db::RecordRef::new(schema::PROCESS_TABLE, p),
            schema::process::CONNECTION_ID,
            c as u64,
        )
        .unwrap();
        db.write_field_raw(
            wtnc::db::RecordRef::new(schema::CONNECTION_TABLE, c),
            schema::connection::CHANNEL_ID,
            r as u64,
        )
        .unwrap();
        db.write_field_raw(
            wtnc::db::RecordRef::new(schema::RESOURCE_TABLE, r),
            schema::resource::PROCESS_ID,
            p as u64,
        )
        .unwrap();
    }
    db
}

/// Touches `frac` of the region's blocks with same-value writes: the
/// dirty tracker marks them but the data stays valid, so the audit
/// re-verifies everything and finds nothing — the steady-state cost.
fn touch_blocks(db: &mut Database, frac: f64, salt: usize) -> usize {
    let n_blocks = db.region_len() / DIRTY_BLOCK_SIZE;
    let k = ((n_blocks as f64 * frac) as usize).max(1);
    for i in 0..k {
        let block = (i * n_blocks / k + salt) % n_blocks;
        let offset = block * DIRTY_BLOCK_SIZE + (salt * 7 + i) % DIRTY_BLOCK_SIZE;
        let byte = db.region()[offset];
        db.poke(offset, &[byte]).unwrap();
    }
    k
}

struct World {
    db: Database,
    api: DbApi,
    registry: ProcessRegistry,
    audit: AuditProcess,
    tick: u64,
}

impl World {
    fn new(base: &Database, workers: usize) -> Self {
        let db = base.clone();
        let audit = AuditProcess::new(
            AuditConfig {
                incremental: true,
                full_rescan_period: 0,
                // Shard even small scans: the point is measuring the
                // executor, not the size gate.
                parallel: ParallelConfig { workers, min_shard_bytes: 256 },
                coschedule_tables: 3,
                ..AuditConfig::default()
            },
            &db,
        );
        World { db, api: DbApi::new(), registry: ProcessRegistry::new(), audit, tick: 0 }
    }

    fn cycle(&mut self) -> (f64, usize) {
        self.tick += 10;
        let at = SimTime::from_secs(self.tick);
        let start = Instant::now();
        let report = self.audit.run_cycle(&mut self.db, &mut self.api, &mut self.registry, at);
        (start.elapsed().as_secs_f64(), report.findings.len())
    }
}

/// Runs the measured loop for one (worker count, dirty fraction) cell
/// and returns (avg cycle seconds, final database image).
fn measure(base: &Database, workers: usize, frac: f64, iters: usize) -> (f64, Vec<u8>) {
    let mut world = World::new(base, workers);
    // Warm-up cycle: establishes the verified-clean baseline and, for
    // parallel worlds, spawns the pool threads outside the timed loop.
    world.cycle();
    let mut elapsed = 0.0f64;
    for i in 0..iters {
        touch_blocks(&mut world.db, frac, i + 1);
        let (t, findings) = world.cycle();
        assert_eq!(findings, 0, "valid writes must produce no findings (workers={workers})");
        elapsed += t;
    }
    (elapsed / iters as f64, world.db.region().to_vec())
}

fn main() {
    let smoke = std::env::var("WTNC_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false)
        || std::env::args().any(|a| a == "--smoke");
    let iters: usize = if smoke { 1 } else { 30 };

    // WTNC_WORKERS narrows the sweep to one parallel point (plus the
    // always-measured serial baseline) — used by the CI matrix.
    let env_workers = ParallelConfig::from_env().workers;
    let worker_counts: Vec<usize> =
        if env_workers > 1 { vec![1, env_workers] } else { vec![1, 2, 4, 8] };

    let base = populated_db();
    let n_blocks = base.region_len() / DIRTY_BLOCK_SIZE;
    let host = wtnc_bench::host_info_json();

    println!(
        "Audit scaling: worker-pool sweep ({} slots, {} KiB region, {} blocks, {iters} iters)",
        SLOTS,
        base.region_len() / 1024,
        n_blocks
    );
    println!("host: {host}\n");
    println!("{:>8} {:>8} {:>12} {:>9}  parity", "dirty %", "workers", "cycle (us)", "speedup");

    let mut points = String::new();
    for &frac in &[0.10f64, 0.25, 0.50] {
        let (serial_us, serial_image) = measure(&base, 1, frac, iters);
        for &workers in &worker_counts {
            let (avg, image) = if workers == 1 {
                (serial_us, serial_image.clone())
            } else {
                measure(&base, workers, frac, iters)
            };
            assert_eq!(
                image, serial_image,
                "parity violated: {workers}-worker image differs from serial at {frac} dirty"
            );
            let speedup = serial_us / avg.max(1e-12);
            println!(
                "{:>8.0} {:>8} {:>12.1} {:>8.2}x  ok",
                frac * 100.0,
                workers,
                avg * 1e6,
                speedup
            );
            points.push_str(&format!(
                "    {{\"dirty_frac\": {frac}, \"workers\": {workers}, \
                 \"cycle_us\": {:.2}, \"speedup_vs_serial\": {:.3}}},\n",
                avg * 1e6,
                speedup
            ));
        }
    }
    let points = points.trim_end_matches(",\n").to_string();

    let json = format!(
        "{{\n  \"bench\": \"audit_scaling\",\n  \"host\": {host},\n  \"slots\": {SLOTS},\n  \
         \"region_bytes\": {},\n  \"block_size\": {DIRTY_BLOCK_SIZE},\n  \
         \"iters\": {iters},\n  \"smoke\": {smoke},\n  \"points\": [\n{points}\n  ]\n}}\n",
        base.region_len()
    );
    let path = "results/BENCH_audit_scaling.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
}
