//! Parallel audit scaling benchmark: wall-clock time of one audit
//! cycle as the worker-pool size grows, across dirty-block fractions.
//!
//! Each measured cycle touches a controlled fraction of the database's
//! blocks with *valid* writes, then times `AuditProcess::run_cycle`
//! once per worker count. Every world sees the identical workload, so
//! besides timing this doubles as an end-to-end determinism check: the
//! bench asserts zero findings everywhere and byte-identical database
//! images between the serial world and every parallel world.
//!
//! The artifact is honest about its host. On a multi-core machine it
//! stamps `"mode": "speedup"` and reports `speedup_vs_serial` per
//! point; on a 1-CPU host — where the governor (correctly) refuses to
//! shard and any "speedup" figure would be noise — it stamps
//! `"mode": "overhead-only"`, emits `"speedup_vs_serial": null`, and
//! instead measures the *forced*-parallel dispatch overhead (governor
//! off) so regressions in pool cost still show up. Every point records
//! which engine actually ran (`exec_mode`: parallel / serial-fallback).
//!
//! Set `WTNC_BENCH_SMOKE=1` (or pass `--smoke`) for a one-iteration CI
//! pass, `WTNC_WORKERS=n` to measure a single worker count (the serial
//! baseline is always measured), and `WTNC_BENCH_ASSERT_SPEEDUP=x` to
//! fail the run when a point that *ran parallel* at ≥25% dirty with
//! `WTNC_WORKERS` workers fell below `x`× — governor fallback passes,
//! a parallel-mode regression does not.
//!
//! ```sh
//! cargo run --release -p wtnc-bench --bin audit_scaling
//! ```

use std::time::Instant;

use wtnc::audit::{AuditConfig, AuditProcess, ExecSummary, ParallelConfig};
use wtnc::db::{schema, Database, DbApi, DIRTY_BLOCK_SIZE};
use wtnc::sim::{ProcessRegistry, SimTime};

const SLOTS: u32 = 512;

fn populated_db() -> Database {
    let mut db = Database::build(schema::standard_schema_with_slots(SLOTS)).unwrap();
    // Fill ~70% of the dynamic tables with linked call loops so the
    // structural/range/semantic screens have real records to walk.
    for _ in 0..(SLOTS * 7 / 10) {
        let p = db.alloc_record_raw(schema::PROCESS_TABLE).unwrap();
        let c = db.alloc_record_raw(schema::CONNECTION_TABLE).unwrap();
        let r = db.alloc_record_raw(schema::RESOURCE_TABLE).unwrap();
        db.write_field_raw(
            wtnc::db::RecordRef::new(schema::PROCESS_TABLE, p),
            schema::process::CONNECTION_ID,
            c as u64,
        )
        .unwrap();
        db.write_field_raw(
            wtnc::db::RecordRef::new(schema::CONNECTION_TABLE, c),
            schema::connection::CHANNEL_ID,
            r as u64,
        )
        .unwrap();
        db.write_field_raw(
            wtnc::db::RecordRef::new(schema::RESOURCE_TABLE, r),
            schema::resource::PROCESS_ID,
            p as u64,
        )
        .unwrap();
    }
    db
}

/// Touches `frac` of the region's blocks with same-value writes: the
/// dirty tracker marks them but the data stays valid, so the audit
/// re-verifies everything and finds nothing — the steady-state cost.
fn touch_blocks(db: &mut Database, frac: f64, salt: usize) -> usize {
    let n_blocks = db.region_len() / DIRTY_BLOCK_SIZE;
    let k = ((n_blocks as f64 * frac) as usize).max(1);
    for i in 0..k {
        let block = (i * n_blocks / k + salt) % n_blocks;
        let offset = block * DIRTY_BLOCK_SIZE + (salt * 7 + i) % DIRTY_BLOCK_SIZE;
        let byte = db.region()[offset];
        db.poke(offset, &[byte]).unwrap();
    }
    k
}

struct World {
    db: Database,
    api: DbApi,
    registry: ProcessRegistry,
    audit: AuditProcess,
    tick: u64,
}

impl World {
    fn new(base: &Database, workers: usize, governor: bool) -> Self {
        let db = base.clone();
        let audit = AuditProcess::new(
            AuditConfig {
                incremental: true,
                full_rescan_period: 0,
                // Shard even small scans: the point is measuring the
                // executor, not the size gate.
                parallel: ParallelConfig { workers, min_shard_bytes: 256, governor },
                coschedule_tables: 3,
                ..AuditConfig::default()
            },
            &db,
        );
        World { db, api: DbApi::new(), registry: ProcessRegistry::new(), audit, tick: 0 }
    }

    fn cycle(&mut self) -> (f64, usize, ExecSummary) {
        self.tick += 10;
        let at = SimTime::from_secs(self.tick);
        let start = Instant::now();
        let report = self.audit.run_cycle(&mut self.db, &mut self.api, &mut self.registry, at);
        (start.elapsed().as_secs_f64(), report.findings.len(), report.exec)
    }
}

struct Cell {
    avg_s: f64,
    image: Vec<u8>,
    exec: ExecSummary,
}

/// Runs the measured loop for one (worker count, dirty fraction) cell.
fn measure(base: &Database, workers: usize, frac: f64, iters: usize, governor: bool) -> Cell {
    let mut world = World::new(base, workers, governor);
    // Warm-up cycle: establishes the verified-clean baseline and, for
    // parallel worlds, spawns the pool threads outside the timed loop.
    world.cycle();
    let mut elapsed = 0.0f64;
    let mut exec = ExecSummary::default();
    for i in 0..iters {
        touch_blocks(&mut world.db, frac, i + 1);
        let (t, findings, e) = world.cycle();
        assert_eq!(findings, 0, "valid writes must produce no findings (workers={workers})");
        elapsed += t;
        exec = e;
    }
    Cell { avg_s: elapsed / iters as f64, image: world.db.region().to_vec(), exec }
}

fn main() {
    let smoke = std::env::var("WTNC_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false)
        || std::env::args().any(|a| a == "--smoke");
    let assert_speedup: Option<f64> =
        std::env::var("WTNC_BENCH_ASSERT_SPEEDUP").ok().and_then(|s| s.parse().ok());
    // Asserting on a one-iteration sample would gate CI on noise.
    let iters: usize = match (smoke, assert_speedup) {
        (true, None) => 1,
        (true, Some(_)) => 10,
        (false, _) => 30,
    };

    // WTNC_WORKERS narrows the sweep to one parallel point (plus the
    // always-measured serial baseline) — used by the CI matrix.
    let env_workers = ParallelConfig::from_env().workers;
    let worker_counts: Vec<usize> =
        if env_workers > 1 { vec![1, env_workers] } else { vec![1, 2, 4, 8] };

    let base = populated_db();
    let n_blocks = base.region_len() / DIRTY_BLOCK_SIZE;
    let host = wtnc_bench::host_info_json();
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let overhead_only = cpus == 1;
    let bench_mode = if overhead_only { "overhead-only" } else { "speedup" };
    let crc_kernel = wtnc::db::crc_kernel().name();

    println!(
        "Audit scaling: worker-pool sweep ({} slots, {} KiB region, {} blocks, {iters} iters)",
        SLOTS,
        base.region_len() / 1024,
        n_blocks
    );
    println!("host: {host}  bench mode: {bench_mode}  crc kernel: {crc_kernel}\n");
    println!(
        "{:>8} {:>8} {:>12} {:>9} {:>16}  parity",
        "dirty %", "workers", "cycle (us)", "speedup", "exec mode"
    );

    let mut points = String::new();
    let mut assert_failures: Vec<String> = Vec::new();
    for &frac in &[0.10f64, 0.25, 0.50] {
        let serial = measure(&base, 1, frac, iters, true);
        for &workers in &worker_counts {
            let cell = if workers == 1 {
                Cell { avg_s: serial.avg_s, image: serial.image.clone(), exec: serial.exec }
            } else {
                measure(&base, workers, frac, iters, true)
            };
            assert_eq!(
                cell.image, serial.image,
                "parity violated: {workers}-worker image differs from serial at {frac} dirty"
            );
            let speedup = serial.avg_s / cell.avg_s.max(1e-12);
            let exec_mode = cell.exec.mode.name();
            let speedup_str =
                if overhead_only { "null".to_owned() } else { format!("{speedup:.3}") };
            println!(
                "{:>8.0} {:>8} {:>12.1} {:>8.2}x {:>16}  ok",
                frac * 100.0,
                workers,
                cell.avg_s * 1e6,
                speedup,
                exec_mode
            );
            points.push_str(&format!(
                "    {{\"dirty_frac\": {frac}, \"workers\": {workers}, \
                 \"cycle_us\": {:.2}, \"exec_mode\": \"{exec_mode}\", \
                 \"batches\": {}, \"steals\": {}, \
                 \"speedup_vs_serial\": {speedup_str}}},\n",
                cell.avg_s * 1e6,
                cell.exec.batches,
                cell.exec.steals,
            ));

            // The CI gate: only a point that actually ran the parallel
            // engine can regress the speedup target; governor fallback
            // is the sanctioned answer on hosts where sharding loses.
            if let Some(min) = assert_speedup {
                if workers == env_workers && frac >= 0.25 {
                    match cell.exec.mode {
                        wtnc::audit::ExecutorMode::Parallel if speedup < min => {
                            assert_failures.push(format!(
                                "workers={workers} dirty={frac}: parallel mode but \
                                 speedup {speedup:.2}x < {min:.2}x"
                            ));
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    let points = points.trim_end_matches(",\n").to_string();

    // On 1-CPU hosts the honest figure is the *overhead* of forcing the
    // pool (governor off) against the serial baseline — the number that
    // must stay near 1.0x now that workers yield instead of fighting
    // the owner for the only core.
    let mut forced = String::new();
    if overhead_only {
        println!("\nforced-parallel overhead (governor off, 1-CPU host):");
        for &frac in &[0.25f64] {
            let serial = measure(&base, 1, frac, iters, true);
            for &workers in worker_counts.iter().filter(|&&w| w > 1) {
                let cell = measure(&base, workers, frac, iters, false);
                assert_eq!(cell.image, serial.image, "forced-parallel parity violated");
                let overhead = cell.avg_s / serial.avg_s.max(1e-12);
                println!(
                    "  workers={workers} dirty={:.0}%: {:.1} us vs {:.1} us serial \
                     ({overhead:.2}x, mode {})",
                    frac * 100.0,
                    cell.avg_s * 1e6,
                    serial.avg_s * 1e6,
                    cell.exec.mode.name()
                );
                forced.push_str(&format!(
                    "    {{\"dirty_frac\": {frac}, \"workers\": {workers}, \
                     \"cycle_us\": {:.2}, \"overhead_vs_serial\": {overhead:.3}, \
                     \"exec_mode\": \"{}\"}},\n",
                    cell.avg_s * 1e6,
                    cell.exec.mode.name()
                ));
            }
        }
    }
    let forced = forced.trim_end_matches(",\n").to_string();
    let forced_json = if forced.is_empty() {
        String::new()
    } else {
        format!(",\n  \"forced_parallel_overhead\": [\n{forced}\n  ]")
    };

    let json = format!(
        "{{\n  \"bench\": \"audit_scaling\",\n  \"host\": {host},\n  \
         \"mode\": \"{bench_mode}\",\n  \"crc_kernel\": \"{crc_kernel}\",\n  \
         \"slots\": {SLOTS},\n  \"region_bytes\": {},\n  \"block_size\": {DIRTY_BLOCK_SIZE},\n  \
         \"iters\": {iters},\n  \"smoke\": {smoke},\n  \
         \"points\": [\n{points}\n  ]{forced_json}\n}}\n",
        base.region_len()
    );
    wtnc_bench::write_results("audit_scaling", &json);

    if !assert_failures.is_empty() {
        eprintln!("\nspeedup assertion failed:");
        for f in &assert_failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    if assert_speedup.is_some() {
        println!("\nspeedup assertion passed (parallel points >= target or governor fallback)");
    }
}
