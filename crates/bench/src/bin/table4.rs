//! Regenerates paper Table 4: the breakdown of inserted and detected
//! errors by type, under the Table 3 configuration with audits on.
//!
//! ```sh
//! cargo run --release -p wtnc-bench --bin table4
//! ```

use wtnc::inject::db_campaign::{run_campaign, DbCampaignConfig};
use wtnc::sim::SimDuration;
use wtnc_bench::scaled_runs;

fn main() {
    let runs = scaled_runs(30);
    let config = DbCampaignConfig {
        audits: true,
        error_iat: SimDuration::from_secs(20),
        ..DbCampaignConfig::default()
    };
    println!("Table 4 — breakdown of inserted and detected errors ({runs} runs)\n");
    let r = run_campaign(&config, runs);
    let b = &r.breakdown;

    let pct = |n: u64, d: u64| {
        if d == 0 {
            0.0
        } else {
            100.0 * n as f64 / d as f64
        }
    };
    let structural_total = b.structural_detected + b.structural_escaped;
    let static_total = b.static_detected + b.static_escaped;
    let dynamic_total = b.dynamic_range_detected
        + b.dynamic_semantic_detected
        + b.dynamic_other_detected
        + b.dynamic_escaped_timing
        + b.dynamic_escaped_no_rule;

    println!("{:<46} {:>8} {:>10}", "Error type / outcome", "count", "% of type");
    println!("{}", "-".repeat(68));
    println!(
        "{:<46} {:>8} {:>9.0}%",
        "Structural — detected",
        b.structural_detected,
        pct(b.structural_detected, structural_total)
    );
    println!(
        "{:<46} {:>8} {:>9.0}%",
        "Structural — escaped",
        b.structural_escaped,
        pct(b.structural_escaped, structural_total)
    );
    println!(
        "{:<46} {:>8} {:>9.0}%",
        "Static data — detected",
        b.static_detected,
        pct(b.static_detected, static_total)
    );
    println!(
        "{:<46} {:>8} {:>9.0}%",
        "Static data — escaped",
        b.static_escaped,
        pct(b.static_escaped, static_total)
    );
    println!(
        "{:<46} {:>8} {:>9.0}%",
        "Dynamic — detected by range check",
        b.dynamic_range_detected,
        pct(b.dynamic_range_detected, dynamic_total)
    );
    println!(
        "{:<46} {:>8} {:>9.0}%",
        "Dynamic — detected by semantic check",
        b.dynamic_semantic_detected,
        pct(b.dynamic_semantic_detected, dynamic_total)
    );
    println!(
        "{:<46} {:>8} {:>9.0}%",
        "Dynamic — detected by other elements",
        b.dynamic_other_detected,
        pct(b.dynamic_other_detected, dynamic_total)
    );
    println!(
        "{:<46} {:>8} {:>9.0}%",
        "Dynamic — escaped due to timing",
        b.dynamic_escaped_timing,
        pct(b.dynamic_escaped_timing, dynamic_total)
    );
    println!(
        "{:<46} {:>8} {:>9.0}%",
        "Dynamic — escaped due to lack of rule",
        b.dynamic_escaped_no_rule,
        pct(b.dynamic_escaped_no_rule, dynamic_total)
    );
    println!(
        "{:<46} {:>8} {:>9.0}%",
        "No effect (overwritten or latent)",
        b.no_effect,
        pct(b.no_effect, r.injected)
    );
    println!("\ntotal injected: {}", r.injected);
    println!(
        "paper reference: structural 100%, static 100%, dynamic 45% range + 34% semantic, \
         14% timing escapes, 4% no-rule escapes, 3% no effect"
    );
}
