//! Repair-coverage harness for the staged recovery engine: sweeps the
//! per-cycle token budget and reports, per budget, how the extended
//! outcome table shifts — repaired-and-verified errors, repair
//! failures, escapes, ladder escalations, repair latency, and call
//! throughput. Shows the budget trade-off the engine exists to make:
//! small budgets stretch repairs over more cycles (higher latency,
//! still-graceful throughput) while large budgets close findings in
//! the cycle that flags them.
//!
//! ```sh
//! cargo run --release -p wtnc-bench --bin repair_coverage
//! ```

use wtnc::inject::recovery_campaign::{run_campaign, RecoveryCampaignConfig};
use wtnc::inject::RunOutcome;
use wtnc::recovery::RecoveryConfig;
use wtnc::sim::SimDuration;
use wtnc_bench::scaled_runs;

fn main() {
    let runs = scaled_runs(5);
    println!("Repair coverage vs per-cycle budget ({runs} runs per point)\n");
    println!(
        "{:>6} {:>9} {:>9} {:>8} {:>8} {:>11} {:>12} {:>7}",
        "budget", "repaired", "failed", "escaped", "escal.", "latency (s)", "coverage (%)", "calls"
    );
    for budget in [2u32, 4, 8, 16, 32, 64, 128] {
        let config = RecoveryCampaignConfig {
            duration: SimDuration::from_secs(1_000),
            error_iat: SimDuration::from_secs(5),
            recovery: RecoveryConfig { cycle_budget: budget, ..RecoveryConfig::default() },
            ..RecoveryCampaignConfig::default()
        };
        let r = run_campaign(&config, runs);
        println!(
            "{:>6} {:>9} {:>9} {:>8} {:>8} {:>11.2} {:>12.1} {:>7}",
            budget,
            r.outcomes.count(RunOutcome::DetectedRepaired),
            r.outcomes.count(RunOutcome::RepairFailed),
            r.outcomes.count(RunOutcome::FailSilenceViolation),
            r.escalations,
            r.repair_latency_s,
            r.outcomes.coverage(),
            r.calls,
        );
    }
}
