//! PECOS run-time overhead on the call-processing client (paper §6.2,
//! discussed next to Table 10): throughput of the bare vs the
//! instrumented client, with the machine's predecoded fast path on and
//! off. Writes `results/BENCH_pecos_overhead.json`.
//!
//! ```sh
//! cargo run --release -p wtnc-bench --bin pecos_overhead
//! WTNC_BENCH_SMOKE=1 cargo run --release -p wtnc-bench --bin pecos_overhead
//! ```

use std::time::Instant;
use wtnc::callproc::{AsmClientConfig, BridgeStats, DbSyscallBridge};
use wtnc::db::{Database, DbApi};
use wtnc::isa::{asm::Assembly, Machine, MachineConfig, Program, ThreadState};
use wtnc::pecos::{instrument, PecosMeta};
use wtnc::sim::ProcessRegistry;
use wtnc_bench::{host_info_json, write_results};

struct Cell {
    program_label: &'static str,
    fast_path: bool,
    steps_per_run: u64,
    supersteps_per_run: u64,
    wall_us_best: f64,
    inst_per_sec: f64,
}

/// One complete client run: fresh database, one thread, run to halt.
/// Returns (retired steps, fused supersteps, wall time of the machine
/// run alone — database construction is excluded from the timing).
fn run_once(program: &Program, meta: Option<&PecosMeta>, fast_path: bool) -> (u64, u64, f64) {
    let mut db = Database::build(wtnc::db::schema::standard_schema()).expect("schema builds");
    let mut api = DbApi::without_instrumentation();
    let mut registry = ProcessRegistry::new();
    let pid = registry.spawn("asm-client", wtnc::sim::SimTime::ZERO);
    api.init(pid);

    let mut machine =
        Machine::load(program, MachineConfig { fast_path, ..MachineConfig::default() });
    if fast_path {
        if let Some(m) = meta {
            m.install_fast_path(&mut machine);
        }
    }
    let t = machine.spawn_thread(program.entry);
    let pids = [pid];
    let mut stats = BridgeStats::default();
    let mut bridge = DbSyscallBridge::new(&mut db, &mut api, &pids, &mut stats);
    let start = Instant::now();
    machine.run(&mut bridge, 10_000_000);
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(machine.thread_state(t), ThreadState::Halted, "client must halt cleanly");
    (machine.total_steps(), machine.fused_supersteps(), secs)
}

fn measure(
    program_label: &'static str,
    program: &Program,
    meta: Option<&PecosMeta>,
    fast_path: bool,
    reps: usize,
) -> Cell {
    // Warm-up run (also yields the deterministic per-run step counts).
    let (steps_per_run, supersteps_per_run, _) = run_once(program, meta, fast_path);
    // Best-of-N: the minimum is the least noise-contaminated estimate
    // of the machine's actual cost (scheduler preemptions and cache
    // evictions only ever add time).
    let mut best_secs = f64::INFINITY;
    for _ in 0..reps {
        best_secs = best_secs.min(run_once(program, meta, fast_path).2);
    }
    let wall_us_best = best_secs * 1e6;
    let inst_per_sec = steps_per_run as f64 / best_secs;
    Cell { program_label, fast_path, steps_per_run, supersteps_per_run, wall_us_best, inst_per_sec }
}

fn main() {
    let smoke =
        std::env::var("WTNC_BENCH_SMOKE").is_ok() || std::env::args().any(|a| a == "--smoke");
    let (iterations, reps) = if smoke { (6u16, 5usize) } else { (120, 200) };

    let source = AsmClientConfig { iterations, ..AsmClientConfig::default() }.program_source();
    let asm = Assembly::parse(&source).expect("client parses");
    let bare = asm.assemble().expect("client assembles");
    let inst = instrument(&asm).expect("client instruments");

    println!(
        "PECOS overhead — call-processing client, {iterations} iterations, 1 thread, \
         {reps} timed runs per cell{}",
        if smoke { " (smoke)" } else { "" }
    );
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>14} {:>14}",
        "program", "fast path", "steps/run", "fused/run", "best µs/run", "inst/sec"
    );

    let cells = [
        measure("bare", &bare, None, false, reps),
        measure("bare", &bare, None, true, reps),
        measure("instrumented", &inst.program, Some(&inst.meta), false, reps),
        measure("instrumented", &inst.program, Some(&inst.meta), true, reps),
    ];
    for c in &cells {
        println!(
            "{:<14} {:>10} {:>12} {:>12} {:>14.1} {:>14.0}",
            c.program_label,
            c.fast_path,
            c.steps_per_run,
            c.supersteps_per_run,
            c.wall_us_best,
            c.inst_per_sec
        );
    }

    // Derived figures: the fast-path speedup on each program, and the
    // PECOS overheads the paper discusses (§6.2: "less than 10% for
    // the target application" on dedicated hardware).
    let by = |label: &str, fast: bool| {
        cells.iter().find(|c| c.program_label == label && c.fast_path == fast).unwrap()
    };
    let fast_speedup_instrumented =
        by("instrumented", true).inst_per_sec / by("instrumented", false).inst_per_sec;
    let fast_speedup_bare = by("bare", true).inst_per_sec / by("bare", false).inst_per_sec;
    let step_overhead =
        by("instrumented", true).steps_per_run as f64 / by("bare", true).steps_per_run as f64 - 1.0;
    let wall_overhead_fast =
        by("instrumented", true).wall_us_best / by("bare", true).wall_us_best - 1.0;
    let wall_overhead_slow =
        by("instrumented", false).wall_us_best / by("bare", false).wall_us_best - 1.0;

    println!("\nfast-path speedup (instrumented client): {fast_speedup_instrumented:.2}x");
    println!("fast-path speedup (bare client):         {fast_speedup_bare:.2}x");
    println!(
        "PECOS dynamic instruction overhead: {:.1}%   wall-clock overhead: {:.1}% (fast) / \
         {:.1}% (slow)",
        step_overhead * 100.0,
        wall_overhead_fast * 100.0,
        wall_overhead_slow * 100.0
    );
    println!(
        "paper reference: §6.2 reports sub-10% overhead for the embedded target; the \
         fused-superstep engine is this reproduction's analogue of that specialisation"
    );

    let cells_json: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"program\": \"{}\", \"fast_path\": {}, \"steps_per_run\": {}, \
                 \"supersteps_per_run\": {}, \"wall_us_best\": {:.3}, \"inst_per_sec\": {:.0}}}",
                c.program_label,
                c.fast_path,
                c.steps_per_run,
                c.supersteps_per_run,
                c.wall_us_best,
                c.inst_per_sec
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"pecos_overhead\",\n  \"host\": {},\n  \"smoke\": {smoke},\n  \
         \"iterations\": {iterations},\n  \"reps\": {reps},\n  \"cells\": [\n{}\n  ],\n  \
         \"derived\": {{\"fast_speedup_instrumented\": {fast_speedup_instrumented:.3}, \
         \"fast_speedup_bare\": {fast_speedup_bare:.3}, \
         \"pecos_step_overhead_pct\": {:.2}, \"pecos_wall_overhead_fast_pct\": {:.2}, \
         \"pecos_wall_overhead_slow_pct\": {:.2}}}\n}}\n",
        host_info_json(),
        cells_json.join(",\n"),
        step_overhead * 100.0,
        wall_overhead_fast * 100.0,
        wall_overhead_slow * 100.0
    );
    write_results("pecos_overhead", &json);
}
