//! PECOS run-time overhead on the call-processing client (paper §6.2,
//! discussed next to Table 10): throughput of the bare vs the
//! instrumented client across all three execution engines — the
//! original word-at-a-time interpreter (`slow`), PR 4's predecoded
//! cache (`decoded`), and the superblock-compiling direct-threaded
//! engine (`superblock`). Writes `results/BENCH_pecos_overhead.json`.
//!
//! Two workloads are timed:
//!
//! * **db-bridge** — the real client: every syscall reaches the
//!   controller database through [`DbSyscallBridge`]. This is the
//!   paper-comparable end-to-end number, but the database work inside
//!   the timed region is identical for every engine, so it bounds the
//!   achievable engine speedup from above.
//! * **dispatch** — the same instrumented client with syscalls
//!   stubbed out ([`NoSyscalls`]): a pure measure of the execution
//!   engine itself, which is what the ≥5× gate reads.
//!
//! Gate: with `WTNC_BENCH_ASSERT_SPEEDUP=<x>` set, the bench fails
//! unless superblock ≥ decoded inst/sec (small noise tolerance) and
//! superblock ≥ x· slow on the dispatch workload. On a single-CPU
//! host, an unmet target stamps an honest `fallback` gate record
//! instead of failing (shared single-core containers time too noisily
//! to assert against), mirroring the audit-scaling bench.
//!
//! ```sh
//! cargo run --release -p wtnc-bench --bin pecos_overhead
//! WTNC_BENCH_SMOKE=1 cargo run --release -p wtnc-bench --bin pecos_overhead
//! ```

use std::time::Instant;
use wtnc::callproc::{AsmClientConfig, BridgeStats, DbSyscallBridge};
use wtnc::db::{Database, DbApi};
use wtnc::isa::{asm::Assembly, Engine, Machine, MachineConfig, NoSyscalls, Program, ThreadState};
use wtnc::pecos::{instrument, PecosMeta};
use wtnc::sim::ProcessRegistry;
use wtnc_bench::{host_info_json, write_results};

#[derive(Clone, Copy, PartialEq)]
enum Workload {
    DbBridge,
    Dispatch,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::DbBridge => "db-bridge",
            Workload::Dispatch => "dispatch",
        }
    }
}

struct Cell {
    program_label: &'static str,
    workload: Workload,
    engine: Engine,
    steps_per_run: u64,
    supersteps_per_run: u64,
    superblocks: u64,
    superblock_entries: u64,
    mean_chain: f64,
    wall_us_best: f64,
    inst_per_sec: f64,
}

/// One complete client run: fresh database (db-bridge workload), one
/// thread, run to halt. Returns (retired steps, fused supersteps,
/// resident superblocks, block entries, mean chain length, wall time
/// of the machine run alone).
fn run_once(
    program: &Program,
    meta: Option<&PecosMeta>,
    workload: Workload,
    engine: Engine,
) -> (u64, u64, u64, u64, f64, f64) {
    let mut machine = Machine::load(
        program,
        MachineConfig {
            fast_path: engine != Engine::Slow,
            engine: Some(engine),
            ..Default::default()
        },
    );
    if engine != Engine::Slow {
        if let Some(m) = meta {
            m.install_fast_path(&mut machine);
        }
    }
    let t = machine.spawn_thread(program.entry);

    let secs = match workload {
        Workload::DbBridge => {
            let mut db =
                Database::build(wtnc::db::schema::standard_schema()).expect("schema builds");
            let mut api = DbApi::without_instrumentation();
            let mut registry = ProcessRegistry::new();
            let pid = registry.spawn("asm-client", wtnc::sim::SimTime::ZERO);
            api.init(pid);
            let pids = [pid];
            let mut stats = BridgeStats::default();
            let mut bridge = DbSyscallBridge::new(&mut db, &mut api, &pids, &mut stats);
            let start = Instant::now();
            machine.run(&mut bridge, 10_000_000);
            start.elapsed().as_secs_f64()
        }
        Workload::Dispatch => {
            let start = Instant::now();
            machine.run(&mut NoSyscalls, 10_000_000);
            start.elapsed().as_secs_f64()
        }
    };
    assert_eq!(machine.thread_state(t), ThreadState::Halted, "client must halt cleanly");
    let sb = machine.superblock_stats();
    let mean_chain = if sb.blocks.is_empty() {
        0.0
    } else {
        sb.blocks.iter().map(|b| b.steps as f64).sum::<f64>() / sb.blocks.len() as f64
    };
    (
        machine.total_steps(),
        machine.fused_supersteps(),
        sb.blocks.len() as u64,
        sb.entered,
        mean_chain,
        secs,
    )
}

fn measure(
    program_label: &'static str,
    program: &Program,
    meta: Option<&PecosMeta>,
    workload: Workload,
    engine: Engine,
    reps: usize,
) -> Cell {
    // Warm-up run (also yields the deterministic per-run counters).
    let (steps_per_run, supersteps_per_run, superblocks, superblock_entries, mean_chain, _) =
        run_once(program, meta, workload, engine);
    // Best-of-N: the minimum is the least noise-contaminated estimate
    // of the machine's actual cost (scheduler preemptions and cache
    // evictions only ever add time).
    let mut best_secs = f64::INFINITY;
    for _ in 0..reps {
        best_secs = best_secs.min(run_once(program, meta, workload, engine).5);
    }
    let wall_us_best = best_secs * 1e6;
    let inst_per_sec = steps_per_run as f64 / best_secs;
    Cell {
        program_label,
        workload,
        engine,
        steps_per_run,
        supersteps_per_run,
        superblocks,
        superblock_entries,
        mean_chain,
        wall_us_best,
        inst_per_sec,
    }
}

fn main() {
    let smoke =
        std::env::var("WTNC_BENCH_SMOKE").is_ok() || std::env::args().any(|a| a == "--smoke");
    let (iterations, reps) = if smoke { (6u16, 5usize) } else { (120, 120) };

    let source = AsmClientConfig { iterations, ..AsmClientConfig::default() }.program_source();
    let asm = Assembly::parse(&source).expect("client parses");
    let bare = asm.assemble().expect("client assembles");
    let inst = instrument(&asm).expect("client instruments");

    println!(
        "PECOS overhead — call-processing client, {iterations} iterations, 1 thread, \
         {reps} timed runs per cell{}",
        if smoke { " (smoke)" } else { "" }
    );
    println!(
        "{:<14} {:<10} {:>10} {:>10} {:>8} {:>8} {:>7} {:>12} {:>13}",
        "program",
        "workload",
        "engine",
        "steps/run",
        "fused",
        "sblocks",
        "chain",
        "best µs/run",
        "inst/sec"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for engine in Engine::ALL {
        cells.push(measure("bare", &bare, None, Workload::DbBridge, engine, reps));
    }
    for engine in Engine::ALL {
        cells.push(measure(
            "instrumented",
            &inst.program,
            Some(&inst.meta),
            Workload::DbBridge,
            engine,
            reps,
        ));
    }
    for engine in Engine::ALL {
        cells.push(measure(
            "instrumented",
            &inst.program,
            Some(&inst.meta),
            Workload::Dispatch,
            engine,
            reps,
        ));
    }
    for c in &cells {
        println!(
            "{:<14} {:<10} {:>10} {:>10} {:>8} {:>8} {:>7.1} {:>12.1} {:>13.0}",
            c.program_label,
            c.workload.name(),
            c.engine.name(),
            c.steps_per_run,
            c.supersteps_per_run,
            c.superblocks,
            c.mean_chain,
            c.wall_us_best,
            c.inst_per_sec
        );
    }

    let by = |label: &str, workload: Workload, engine: Engine| {
        cells
            .iter()
            .find(|c| c.program_label == label && c.workload == workload && c.engine == engine)
            .unwrap()
    };
    let ips = |label: &str, w: Workload, e: Engine| by(label, w, e).inst_per_sec;

    // Derived figures: per-engine speedups on both workloads, and the
    // PECOS overheads the paper discusses (§6.2: "less than 10% for
    // the target application" on dedicated hardware).
    let db_decoded = ips("instrumented", Workload::DbBridge, Engine::Decoded)
        / ips("instrumented", Workload::DbBridge, Engine::Slow);
    let db_superblock = ips("instrumented", Workload::DbBridge, Engine::Superblock)
        / ips("instrumented", Workload::DbBridge, Engine::Slow);
    let dispatch_decoded = ips("instrumented", Workload::Dispatch, Engine::Decoded)
        / ips("instrumented", Workload::Dispatch, Engine::Slow);
    let dispatch_superblock = ips("instrumented", Workload::Dispatch, Engine::Superblock)
        / ips("instrumented", Workload::Dispatch, Engine::Slow);
    let sb_vs_decoded_db = ips("instrumented", Workload::DbBridge, Engine::Superblock)
        / ips("instrumented", Workload::DbBridge, Engine::Decoded);
    let sb_vs_decoded_dispatch = ips("instrumented", Workload::Dispatch, Engine::Superblock)
        / ips("instrumented", Workload::Dispatch, Engine::Decoded);
    let step_overhead = by("instrumented", Workload::DbBridge, Engine::Superblock).steps_per_run
        as f64
        / by("bare", Workload::DbBridge, Engine::Superblock).steps_per_run as f64
        - 1.0;
    let wall_overhead_fast = by("instrumented", Workload::DbBridge, Engine::Superblock)
        .wall_us_best
        / by("bare", Workload::DbBridge, Engine::Superblock).wall_us_best
        - 1.0;
    let wall_overhead_slow = by("instrumented", Workload::DbBridge, Engine::Slow).wall_us_best
        / by("bare", Workload::DbBridge, Engine::Slow).wall_us_best
        - 1.0;

    println!("\nspeedup vs slow engine (instrumented client):");
    println!("  db-bridge:  decoded {db_decoded:.2}x   superblock {db_superblock:.2}x");
    println!("  dispatch:   decoded {dispatch_decoded:.2}x   superblock {dispatch_superblock:.2}x");
    println!(
        "superblock vs decoded: {sb_vs_decoded_db:.2}x (db-bridge) / \
         {sb_vs_decoded_dispatch:.2}x (dispatch)"
    );
    println!(
        "PECOS dynamic instruction overhead: {:.1}%   wall-clock overhead: {:.1}% (superblock) / \
         {:.1}% (slow)",
        step_overhead * 100.0,
        wall_overhead_fast * 100.0,
        wall_overhead_slow * 100.0
    );
    println!(
        "paper reference: §6.2 reports sub-10% overhead for the embedded target; the \
         superblock engine is this reproduction's analogue of that specialisation"
    );
    println!(
        "note: on the db-bridge workload the timed region includes the controller database \
         operations themselves (identical across engines), which bounds end-to-end speedup; \
         the dispatch workload isolates the engine"
    );

    // Speedup gate, mirroring audit_scaling: assert when requested,
    // but stamp an honest fallback on single-CPU hosts instead of
    // failing, since shared 1-CPU containers time too noisily.
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let target: Option<f64> =
        std::env::var("WTNC_BENCH_ASSERT_SPEEDUP").ok().and_then(|s| s.parse().ok());
    // 8% tolerance: the two fast engines share the decoded cache, so
    // run-to-run noise can invert a near-tie.
    let sb_not_slower = sb_vs_decoded_db >= 0.92 && sb_vs_decoded_dispatch >= 0.92;
    let gate = match target {
        None => "\"mode\": \"off\"".to_owned(),
        Some(x) => {
            let met = sb_not_slower && dispatch_superblock >= x;
            if met {
                println!(
                    "\nspeedup gate: met ({dispatch_superblock:.2}x >= {x:.1}x dispatch, \
                     superblock >= decoded)"
                );
                format!("\"mode\": \"met\", \"target\": {x:.2}")
            } else if cpus == 1 {
                println!(
                    "\nspeedup gate: fallback — single-CPU host, target {x:.1}x not asserted \
                     (measured {dispatch_superblock:.2}x dispatch)"
                );
                format!(
                    "\"mode\": \"fallback\", \"target\": {x:.2}, \
                     \"reason\": \"single-cpu host: not asserting wall-clock speedups\""
                )
            } else {
                eprintln!(
                    "\nspeedup gate FAILED: superblock {dispatch_superblock:.2}x vs slow \
                     (target {x:.1}x), superblock-vs-decoded {sb_vs_decoded_db:.2}x db / \
                     {sb_vs_decoded_dispatch:.2}x dispatch"
                );
                write_json(
                    smoke,
                    iterations,
                    reps,
                    &cells,
                    db_decoded,
                    db_superblock,
                    dispatch_decoded,
                    dispatch_superblock,
                    sb_vs_decoded_db,
                    sb_vs_decoded_dispatch,
                    step_overhead,
                    wall_overhead_fast,
                    wall_overhead_slow,
                    &format!("\"mode\": \"failed\", \"target\": {x:.2}"),
                );
                std::process::exit(1);
            }
        }
    };

    write_json(
        smoke,
        iterations,
        reps,
        &cells,
        db_decoded,
        db_superblock,
        dispatch_decoded,
        dispatch_superblock,
        sb_vs_decoded_db,
        sb_vs_decoded_dispatch,
        step_overhead,
        wall_overhead_fast,
        wall_overhead_slow,
        &gate,
    );
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    smoke: bool,
    iterations: u16,
    reps: usize,
    cells: &[Cell],
    db_decoded: f64,
    db_superblock: f64,
    dispatch_decoded: f64,
    dispatch_superblock: f64,
    sb_vs_decoded_db: f64,
    sb_vs_decoded_dispatch: f64,
    step_overhead: f64,
    wall_overhead_fast: f64,
    wall_overhead_slow: f64,
    gate: &str,
) {
    let cells_json: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"program\": \"{}\", \"workload\": \"{}\", \"engine\": \"{}\", \
                 \"steps_per_run\": {}, \"supersteps_per_run\": {}, \"superblocks\": {}, \
                 \"superblock_entries\": {}, \"mean_chain_steps\": {:.1}, \
                 \"wall_us_best\": {:.3}, \"inst_per_sec\": {:.0}}}",
                c.program_label,
                c.workload.name(),
                c.engine.name(),
                c.steps_per_run,
                c.supersteps_per_run,
                c.superblocks,
                c.superblock_entries,
                c.mean_chain,
                c.wall_us_best,
                c.inst_per_sec
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"pecos_overhead\",\n  \"host\": {},\n  \"smoke\": {smoke},\n  \
         \"iterations\": {iterations},\n  \"reps\": {reps},\n  \"cells\": [\n{}\n  ],\n  \
         \"derived\": {{\n    \"speedup_vs_slow_db\": {{\"decoded\": {db_decoded:.3}, \
         \"superblock\": {db_superblock:.3}}},\n    \"speedup_vs_slow_dispatch\": \
         {{\"decoded\": {dispatch_decoded:.3}, \"superblock\": {dispatch_superblock:.3}}},\n    \
         \"superblock_vs_decoded\": {{\"db\": {sb_vs_decoded_db:.3}, \
         \"dispatch\": {sb_vs_decoded_dispatch:.3}}},\n    \
         \"pecos_step_overhead_pct\": {:.2},\n    \
         \"pecos_wall_overhead_superblock_pct\": {:.2},\n    \
         \"pecos_wall_overhead_slow_pct\": {:.2}\n  }},\n  \"gate\": {{{gate}}}\n}}\n",
        host_info_json(),
        cells_json.join(",\n"),
        step_overhead * 100.0,
        wall_overhead_fast * 100.0,
        wall_overhead_slow * 100.0
    );
    write_results("pecos_overhead", &json);
}
