//! Regenerates paper Table 8: cumulative results from **directed
//! injection to control-flow instructions** of the call-processing
//! client, across the four PECOS × audit configurations and all four
//! error models.
//!
//! ```sh
//! cargo run --release -p wtnc-bench --bin table8
//! ```

use wtnc::inject::text_campaign::{four_column_table, InjectionTarget};
use wtnc_bench::{
    host_info_json, outcome_columns_json, print_outcome_matrix, scaled_runs, write_results,
};

fn main() {
    let runs = scaled_runs(200); // paper: 200 runs per campaign cell
    let columns = four_column_table(InjectionTarget::DirectedCfi, runs, 4, 24, 0x7AB8);
    print_outcome_matrix(
        &format!(
            "Table 8 — directed injection to control flow instructions ({runs} runs x 4 models per column)"
        ),
        &columns,
    );
    println!(
        "paper reference: PECOS detection 83% / 77% (of activated), system detection drops \
         52% -> 19%, hangs 6 -> 0 cases, fail-silence violations ~1 case"
    );
    let json = format!(
        "{{\n  \"bench\": \"table8\",\n  \"host\": {},\n  \"target\": \"DirectedCfi\",\n  \
         \"runs_per_cell\": {runs},\n  \"seed\": 31416,\n  \"columns\": {}\n}}\n",
        host_info_json(),
        outcome_columns_json(&columns)
    );
    write_results("table8", &json);
}
