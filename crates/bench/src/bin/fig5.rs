//! Regenerates paper Figure 5: prioritized vs unprioritized audit
//! under a **uniform** error distribution — escaped-error proportion
//! (a) and detection latency (b) at three error rates.
//!
//! ```sh
//! cargo run --release -p wtnc-bench --bin fig5
//! ```

use wtnc::inject::priority_campaign::{run_campaign, PriorityCampaignConfig};
use wtnc::sim::SimDuration;
use wtnc_bench::scaled_runs;

fn main() {
    let runs = scaled_runs(20);
    println!(
        "Figure 5 — prioritized vs unprioritized audit, uniform error distribution ({runs} runs/point)\n"
    );
    println!(
        "{:>10} | {:>22} {:>22} {:>10} | {:>12} {:>12}",
        "MTBF (s)",
        "unprioritized esc%",
        "prioritized esc%",
        "reduction",
        "latency RR",
        "latency Pri"
    );
    for mtbf in [1u64, 2, 4] {
        let base = PriorityCampaignConfig {
            proportional_errors: false,
            mtbf: SimDuration::from_secs(mtbf),
            duration: SimDuration::from_secs(300),
            ..PriorityCampaignConfig::default()
        };
        let rr = run_campaign(&PriorityCampaignConfig { prioritized: false, ..base }, runs);
        let pri = run_campaign(&PriorityCampaignConfig { prioritized: true, ..base }, runs);
        let reduction = if rr.escaped_pct() > 0.0 {
            100.0 * (1.0 - pri.escaped_pct() / rr.escaped_pct())
        } else {
            0.0
        };
        println!(
            "{:>10} | {:>21.2}% {:>21.2}% {:>9.1}% | {:>10.2} s {:>10.2} s",
            mtbf,
            rr.escaped_pct(),
            pri.escaped_pct(),
            reduction,
            rr.detection_latency_s,
            pri.detection_latency_s,
        );
    }
    println!(
        "\npaper reference: escapes reduced 14.6-25.5% by prioritization (more at lower error \
         rates); average latency slightly HIGHER with prioritization under uniform errors"
    );
}
