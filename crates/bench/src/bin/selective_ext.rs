//! Extension experiment: the §4.4.2 selective-monitoring assessment
//! the paper deferred to \[LIU00\] "owing to space constraints",
//! reconstructed.
//!
//! The standard schema's three unruled attributes (task-name codes,
//! billing units, radio power steps) are invisible to the range check —
//! the paper's "escape due to lack of rule" category. Selective
//! monitoring learns their value distributions at run time and repairs
//! never-observed values to the attribute's modal value. This harness
//! compares the §5.1 campaign with and without the element.
//!
//! ```sh
//! cargo run --release -p wtnc-bench --bin selective_ext
//! ```

use wtnc::inject::db_campaign::{run_campaign, DbCampaignConfig};
use wtnc::sim::SimDuration;
use wtnc_bench::scaled_runs;

fn main() {
    let runs = scaled_runs(15);
    let base = DbCampaignConfig {
        audits: true,
        error_iat: SimDuration::from_secs(20),
        ..DbCampaignConfig::default()
    };
    println!("Selective monitoring of attributes (§4.4.2 extension), {runs} runs/arm\n");
    println!("{:<44} {:>16} {:>18}", "", "static rules only", "with selective mon.");
    let without = run_campaign(&base, runs);
    let with = run_campaign(&DbCampaignConfig { selective_monitoring: true, ..base }, runs);
    let row = |label: &str, a: String, b: String| println!("{label:<44} {a:>16} {b:>18}");
    row(
        "errors escaped (% of injected)",
        format!("{} ({:.1}%)", without.escaped, without.escaped_pct()),
        format!("{} ({:.1}%)", with.escaped, with.escaped_pct()),
    );
    row(
        "  of which: lack-of-rule escapes",
        format!("{}", without.breakdown.dynamic_escaped_no_rule),
        format!("{}", with.breakdown.dynamic_escaped_no_rule),
    );
    row(
        "errors caught",
        format!("{} ({:.1}%)", without.caught, without.caught_pct()),
        format!("{} ({:.1}%)", with.caught, with.caught_pct()),
    );
    row(
        "  of which: by selective monitoring",
        format!("{}", without.breakdown.dynamic_selective_detected),
        format!("{}", with.breakdown.dynamic_selective_detected),
    );
    let reduction = if without.breakdown.dynamic_escaped_no_rule > 0 {
        100.0
            * (1.0
                - with.breakdown.dynamic_escaped_no_rule as f64
                    / without.breakdown.dynamic_escaped_no_rule as f64)
    } else {
        0.0
    };
    println!(
        "\nlack-of-rule escapes reduced by {reduction:.0}% — derived invariants partially \
         close the gap static rules leave open (the paper's closing observation)"
    );
}
