//! Audit-under-overload storm bench: sweeps offered IPC load past the
//! auditor's saturation point for each storm model (super-producer,
//! IPC flood, diurnal burst), with and without the resource-isolation
//! layer (bounded fair IPC, audit CPU token bucket, starvation-aware
//! supervision), and reports detection latency, audit-cycle stretch,
//! degraded/shed accounting and watermark-driven false restarts.
//!
//! The gate is deterministic (virtual time, seeded runs — independent
//! of host CPU count) and always asserted: with isolation, every run
//! at every load must detect the planted corruption, with zero false
//! audit restarts, and the mean detection latency at ≥2× saturation
//! must stay within 2× the unloaded (0.1×) baseline. A second
//! fail-silence identity is asserted at every point: every offered
//! event gets exactly one verdict and every degraded cycle files a
//! starvation notice.
//!
//! Emits `results/BENCH_audit_storm.json`. Run counts scale with
//! `WTNC_RUNS_SCALE` as in the other campaign benches.
//!
//! ```sh
//! cargo run --release -p wtnc-bench --bin audit_storm
//! ```

use wtnc::inject::storm_campaign::{
    run_campaign, StormCampaignConfig, StormCampaignResult, StormModel,
};
use wtnc_bench::{host_info_json, scaled_runs, write_results};

const LOADS: [f64; 5] = [0.1, 0.5, 1.0, 2.0, 4.0];
const BASELINE_LOAD: f64 = 0.1;
const LATENCY_BOUND_FACTOR: f64 = 2.0;

fn point(model: StormModel, load: f64, isolation: bool, runs: usize) -> StormCampaignResult {
    let config = StormCampaignConfig { model, load, isolation, ..StormCampaignConfig::default() };
    let r = run_campaign(&config, runs);
    // Fail-silence identities hold at every point, both arms.
    assert_eq!(
        r.offered_events,
        r.accepted_events + r.shed_events + r.backpressured_events,
        "{} load {load} isolation {isolation}: every offered event gets one verdict",
        model.name(),
    );
    assert_eq!(
        r.degraded_cycles,
        r.starved_notes,
        "{} load {load} isolation {isolation}: every degraded cycle files a starvation notice",
        model.name(),
    );
    r
}

fn row_json(load: f64, r: &StormCampaignResult) -> String {
    format!(
        "        {{ \"load\": {load}, \"runs\": {}, \"detected_runs\": {}, \
         \"detection_latency_s\": {:.4}, \"max_detection_latency_s\": {:.4}, \
         \"mean_cycle_s\": {:.4}, \"cycles_completed\": {}, \"cycles_aborted\": {}, \
         \"degraded_cycles\": {}, \"tables_shed\": {}, \"starved_notes\": {}, \
         \"offered_events\": {}, \"accepted_events\": {}, \"shed_events\": {}, \
         \"backpressured_events\": {}, \"false_restarts\": {}, \"escalations\": {}, \
         \"calls_completed\": {} }}",
        r.runs,
        r.detected_runs,
        r.detection_latency_s,
        r.max_detection_latency_s,
        r.mean_cycle_s,
        r.cycles_completed,
        r.cycles_aborted,
        r.degraded_cycles,
        r.tables_shed,
        r.starved_notes,
        r.offered_events,
        r.accepted_events,
        r.shed_events,
        r.backpressured_events,
        r.false_restarts,
        r.escalations,
        r.calls_completed,
    )
}

fn main() {
    let runs = scaled_runs(10);
    println!("Audit storm campaign ({runs} runs per point)\n");
    println!(
        "{:>15} {:>5} {:>10} {:>9} {:>11} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "model",
        "load",
        "isolation",
        "detected",
        "latency (s)",
        "cycle (s)",
        "degraded",
        "shed ev.",
        "aborted",
        "false-r"
    );

    let mut model_jsons: Vec<String> = Vec::new();
    let mut gate_jsons: Vec<String> = Vec::new();
    for model in StormModel::ALL {
        let mut arm_jsons: Vec<String> = Vec::new();
        let mut baseline_latency = f64::NAN;
        for isolation in [true, false] {
            let mut rows: Vec<String> = Vec::new();
            for load in LOADS {
                let r = point(model, load, isolation, runs);
                println!(
                    "{:>15} {:>5.1} {:>10} {:>6}/{:<2} {:>11.3} {:>9.3} {:>9} {:>9} {:>9} {:>8}",
                    model.name(),
                    load,
                    if isolation { "on" } else { "off" },
                    r.detected_runs,
                    r.runs,
                    r.detection_latency_s,
                    r.mean_cycle_s,
                    r.degraded_cycles,
                    r.shed_events,
                    r.cycles_aborted,
                    r.false_restarts,
                );
                if isolation {
                    if load == BASELINE_LOAD {
                        baseline_latency = r.detection_latency_s;
                    }
                    // The isolation guarantees, asserted at every load.
                    assert_eq!(
                        r.detected_runs,
                        r.runs,
                        "{} load {load}: isolation must keep detecting",
                        model.name(),
                    );
                    assert_eq!(
                        r.false_restarts,
                        0,
                        "{} load {load}: isolation must not false-restart the auditor",
                        model.name(),
                    );
                    // The latency gate at and past 2x saturation.
                    if load >= 2.0 {
                        let bound = LATENCY_BOUND_FACTOR * baseline_latency;
                        assert!(
                            r.detection_latency_s <= bound,
                            "{} load {load}: isolated detection latency {:.3}s exceeds \
                             {LATENCY_BOUND_FACTOR}x unloaded baseline {baseline_latency:.3}s",
                            model.name(),
                            r.detection_latency_s,
                        );
                        gate_jsons.push(format!(
                            "    {{ \"model\": \"{}\", \"load\": {load}, \
                             \"latency_s\": {:.4}, \"baseline_s\": {:.4}, \
                             \"bound_s\": {:.4}, \"pass\": true }}",
                            model.name(),
                            r.detection_latency_s,
                            baseline_latency,
                            bound,
                        ));
                    }
                }
                rows.push(row_json(load, &r));
            }
            arm_jsons.push(format!(
                "      \"{}\": [\n{}\n      ]",
                if isolation { "isolated" } else { "unisolated" },
                rows.join(",\n")
            ));
        }
        model_jsons.push(format!(
            "    \"{}\": {{\n{}\n    }}",
            model.name(),
            arm_jsons.join(",\n")
        ));
    }

    println!(
        "\npaper context: the framework assumes the audit subsystem always gets to run; \
         this bench withdraws that assumption — with bounded fair IPC and a CPU token \
         bucket the auditor degrades honestly and keeps its detection-latency bound, \
         without them the receive-livelock spiral stretches cycles and the supervisor \
         condemns the busy auditor as livelocked"
    );

    let json = format!(
        "{{\n  \"bench\": \"audit_storm\",\n  \"host\": {},\n  \"runs_per_point\": {runs},\n  \
         \"loads\": [0.1, 0.5, 1.0, 2.0, 4.0],\n  \
         \"latency_bound_factor\": {LATENCY_BOUND_FACTOR},\n  \"gate\": [\n{}\n  ],\n  \
         \"models\": {{\n{}\n  }}\n}}\n",
        host_info_json(),
        gate_jsons.join(",\n"),
        model_jsons.join(",\n")
    );
    write_results("audit_storm", &json);
}
