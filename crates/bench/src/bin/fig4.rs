//! Regenerates paper Figure 4: the run-time overhead of the modified
//! (audit-instrumented) database API, function by function.
//!
//! This binary reports the calibrated simulation cost model (used by
//! the DES experiments) side by side with **measured wall-clock
//! timings** of this implementation's API functions, instrumented vs
//! original. The companion Criterion bench
//! (`cargo bench -p wtnc-bench --bench fig4_api_overhead`) measures the
//! same operations with full statistical rigor.
//!
//! ```sh
//! cargo run --release -p wtnc-bench --bin fig4
//! ```

use std::time::Instant;

use wtnc::db::{schema, Database, DbApi, DbOp};
use wtnc::sim::{Pid, SimTime};

const ITERS: u32 = 200; // the paper executed each function 200 times

fn measure(mut op: impl FnMut()) -> f64 {
    // Warm up, then time the paper's 200 executions.
    for _ in 0..20 {
        op();
    }
    let start = Instant::now();
    for _ in 0..ITERS {
        op();
    }
    start.elapsed().as_secs_f64() / ITERS as f64 * 1e9 // ns per call
}

fn bench_api(instrumented: bool) -> Vec<(&'static str, f64)> {
    let mut db = Database::build(schema::standard_schema()).unwrap();
    let mut api = if instrumented { DbApi::new() } else { DbApi::without_instrumentation() };
    let pid = Pid(1);
    api.init(pid);
    let t = schema::CONNECTION_TABLE;
    let now = SimTime::from_secs(1);
    let idx = api.alloc_record(&mut db, pid, t, now).unwrap();
    let field_count = db.catalog().table(t).unwrap().def.fields.len();
    let values = vec![1u64; field_count];

    let mut results = Vec::new();
    results.push((
        "DBinit",
        measure(|| {
            api.init_at(Pid(2), now);
        }),
    ));
    results.push((
        "DBclose",
        measure(|| {
            api.close(Pid(2), now);
        }),
    ));
    results.push((
        "DBread_rec",
        measure(|| {
            api.read_rec(&mut db, pid, t, idx, now).unwrap();
        }),
    ));
    results.push((
        "DBread_fld",
        measure(|| {
            api.read_fld(&mut db, pid, t, idx, schema::connection::CALLER_ID, now).unwrap();
        }),
    ));
    results.push((
        "DBwrite_rec",
        measure(|| {
            api.write_rec(&mut db, pid, t, idx, &values, now).unwrap();
        }),
    ));
    results.push((
        "DBwrite_fld",
        measure(|| {
            api.write_fld(&mut db, pid, t, idx, schema::connection::STATE, 1, now).unwrap();
        }),
    ));
    results.push((
        "DBmove",
        measure(|| {
            api.move_rec(&mut db, pid, t, idx, 3, now).unwrap();
        }),
    ));
    results
}

fn main() {
    println!("Figure 4 — run-time overhead of the modified database API\n");

    // The calibrated DES cost model (paper-shaped, in microseconds).
    let costs = wtnc::db::ApiCosts::default();
    println!("simulated cost model (drives the DES experiments):");
    println!(
        "{:<14} {:>14} {:>14} {:>10}",
        "function", "original (us)", "modified (us)", "overhead"
    );
    for (name, op) in [
        ("DBinit", DbOp::Init),
        ("DBclose", DbOp::Close),
        ("DBread_rec", DbOp::ReadRec),
        ("DBread_fld", DbOp::ReadFld),
        ("DBwrite_rec", DbOp::WriteRec),
        ("DBwrite_fld", DbOp::WriteFld),
        ("DBmove", DbOp::Move),
    ] {
        let orig = costs.cost(op, false).as_secs_f64() * 1e6;
        let inst = costs.cost(op, true).as_secs_f64() * 1e6;
        println!(
            "{:<14} {:>14.0} {:>14.0} {:>9.1}%",
            name,
            orig,
            inst,
            (inst / orig - 1.0) * 100.0
        );
    }

    // Wall-clock measurement of this implementation (absolute numbers
    // are this machine's; the paper's shape claim is about relative
    // overheads).
    println!("\nmeasured wall-clock of this implementation ({} calls/function):", ITERS);
    let original = bench_api(false);
    let modified = bench_api(true);
    println!(
        "{:<14} {:>14} {:>14} {:>10}",
        "function", "original (ns)", "modified (ns)", "overhead"
    );
    for ((name, orig), (_, inst)) in original.iter().zip(modified.iter()) {
        println!(
            "{:<14} {:>14.0} {:>14.0} {:>9.1}%",
            name,
            orig,
            inst,
            (inst / orig - 1.0) * 100.0
        );
    }
    println!(
        "\npaper reference: overheads 6.5% (DBinit) … 45.2% (DBwrite_rec); write-class calls \
         pay the most because each one notifies the audit process"
    );
}
