//! Diagnostic sweep of the §5.1 database campaign: full taint-fate
//! breakdown with audits on and off, for sanity-checking a build
//! against the paper's Table 3/4 shape before running the full
//! reproduction harnesses.
//!
//! ```sh
//! cargo run --release -p wtnc-bench --bin diag
//! ```

use wtnc::inject::db_campaign::{run_campaign, DbCampaignConfig};
use wtnc::sim::SimDuration;
use wtnc_bench::scaled_runs;

fn main() {
    let runs = scaled_runs(3);
    let base =
        DbCampaignConfig { duration: SimDuration::from_secs(1_000), ..DbCampaignConfig::default() };
    println!("Database campaign diagnostics ({runs} runs per configuration)\n");
    for audits in [false, true] {
        let r = run_campaign(&DbCampaignConfig { audits, ..base }, runs);
        println!(
            "audits {:<3}  injected {:>6}  escaped {:>6} ({:>5.1}%)  caught {:>6} \
             ({:>5.1}%)  overwritten {:>5}  latent {:>5}  cold restarts {:>3}",
            if audits { "on" } else { "off" },
            r.injected,
            r.escaped,
            r.escaped_pct(),
            r.caught,
            r.caught_pct(),
            r.overwritten,
            r.latent,
            r.cold_restarts,
        );
        let b = &r.breakdown;
        println!(
            "  detected: structural {} / static {} / range {} / semantic {} / other {}",
            b.structural_detected,
            b.static_detected,
            b.dynamic_range_detected,
            b.dynamic_semantic_detected,
            b.dynamic_other_detected,
        );
        println!(
            "  escaped:  structural {} / static {} / timing {} / no rule {}   no effect {}\n",
            b.structural_escaped,
            b.static_escaped,
            b.dynamic_escaped_timing,
            b.dynamic_escaped_no_rule,
            b.no_effect,
        );
    }
}
