//! Regenerates paper Table 3: running the call-processing client with
//! and without database audits at a 20-second error inter-arrival
//! time.
//!
//! ```sh
//! cargo run --release -p wtnc-bench --bin table3
//! ```

use wtnc::inject::db_campaign::{run_campaign, DbCampaignConfig};
use wtnc::sim::SimDuration;
use wtnc_bench::scaled_runs;

fn main() {
    let runs = scaled_runs(30); // paper: 30 runs x ~100 errors
    let base =
        DbCampaignConfig { error_iat: SimDuration::from_secs(20), ..DbCampaignConfig::default() };
    println!("Table 3 — client with/without audits, 20 s error inter-arrival, {runs} runs/arm\n");

    let without = run_campaign(&DbCampaignConfig { audits: false, ..base }, runs);
    let with = run_campaign(&DbCampaignConfig { audits: true, ..base }, runs);

    println!(
        "{:<62} {:>16} {:>16}",
        format!("Total number of injected errors = {} / {}", without.injected, with.injected),
        "Without Audits",
        "With Audits"
    );
    let row = |label: &str, a: String, b: String| {
        println!("{label:<62} {a:>16} {b:>16}");
    };
    row(
        "Number of errors escaped from audits and affecting application",
        format!("{} ({:.0}%)", without.escaped, without.escaped_pct()),
        format!("{} ({:.0}%)", with.escaped, with.escaped_pct()),
    );
    row(
        "Number of errors caught by audits",
        "N/A".to_owned(),
        format!("{} ({:.0}%)", with.caught, with.caught_pct()),
    );
    row(
        "Other (escaped but having no effect on application)",
        format!("{} ({:.0}%)", without.overwritten + without.latent, without.no_effect_pct()),
        format!("{} ({:.0}%)", with.overwritten + with.latent, with.no_effect_pct()),
    );
    row(
        "Average call setup time (msec)",
        format!("{:.0}", without.avg_setup_ms),
        format!("{:.0}", with.avg_setup_ms),
    );
    println!(
        "\ncalls processed: {} (without) / {} (with); cold restarts: {} / {}",
        without.calls, with.calls, without.cold_restarts, with.cold_restarts
    );
    println!(
        "paper reference: escaped 63% -> 13%, caught 85%, no-effect 37% -> 2%, setup 160 -> 270 ms"
    );
}
