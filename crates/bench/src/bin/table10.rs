//! Regenerates paper Table 10: system-wide coverage when errors hit
//! both the client and the database, combining the Table 9 campaigns
//! with the Table 3 campaigns under the paper's 25%/75% error mix.
//!
//! ```sh
//! cargo run --release -p wtnc-bench --bin table10
//! ```

use wtnc::inject::coverage::table10;
use wtnc::inject::db_campaign::{run_campaign, DbCampaignConfig};
use wtnc::inject::text_campaign::{four_column_table, InjectionTarget};
use wtnc::sim::SimDuration;
use wtnc_bench::{host_info_json, scaled_runs, write_results};

fn main() {
    let text_runs = scaled_runs(100);
    let db_runs = scaled_runs(10);
    println!(
        "Table 10 — system-wide coverage, 25% client / 75% database error mix \
         ({text_runs} text runs x 4 models, {db_runs} database runs per arm)\n"
    );

    let client_columns = four_column_table(InjectionTarget::RandomText, text_runs, 4, 24, 0x7A10);
    let db_base =
        DbCampaignConfig { error_iat: SimDuration::from_secs(20), ..DbCampaignConfig::default() };
    let db_without = run_campaign(&DbCampaignConfig { audits: false, ..db_base }, db_runs);
    let db_with = run_campaign(&DbCampaignConfig { audits: true, ..db_base }, db_runs);

    let table = table10(&client_columns, &db_without, &db_with, 0.25);

    println!(
        "{:<34} {:>10} {:>10} {:>22}",
        "Error target", "client", "database", "client+database (25/75)"
    );
    println!("{}", "-".repeat(80));
    for col in &table.columns {
        println!(
            "{:<34} {:>9.0}% {:>9.0}% {:>21.0}%",
            col.name, col.client, col.database, col.combined
        );
    }
    println!(
        "\npaper reference: combined coverage 35% (neither) / 73% (audit only) / 42% (PECOS \
         only) / 80% (both); audits and PECOS cover mostly disjoint error classes"
    );

    let rows: Vec<String> = table
        .columns
        .iter()
        .map(|col| {
            format!(
                "    {{\"name\": \"{}\", \"client_pct\": {:.2}, \"database_pct\": {:.2}, \
                 \"combined_pct\": {:.2}}}",
                col.name, col.client, col.database, col.combined
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"table10\",\n  \"host\": {},\n  \"client_error_fraction\": 0.25,\n  \
         \"text_runs_per_cell\": {text_runs},\n  \"db_runs_per_arm\": {db_runs},\n  \
         \"columns\": [\n{}\n  ]\n}}\n",
        host_info_json(),
        rows.join(",\n")
    );
    write_results("table10", &json);
}
