//! Incremental-audit cycle benchmark: wall-clock time of one audit
//! cycle, full-scan vs change-aware, across dirty-block fractions.
//!
//! Each measured cycle first touches a controlled fraction of the
//! database's 256-byte blocks with *valid* writes (the workload the
//! incremental engine targets: mutated but correct data), then times
//! `AuditProcess::run_cycle` in both worlds. The incremental world
//! re-checksums only the dirty blocks and generation-skips unchanged
//! records; the full world scans everything every time.
//!
//! Emits `results/BENCH_audit_cycle.json`. Set `WTNC_BENCH_SMOKE=1`
//! for a one-iteration CI smoke pass.
//!
//! ```sh
//! cargo run --release -p wtnc-bench --bin audit_cycle
//! ```

use std::time::Instant;

use wtnc::audit::{AuditConfig, AuditProcess};
use wtnc::db::{schema, Database, DbApi, DIRTY_BLOCK_SIZE};
use wtnc::sim::{ProcessRegistry, SimTime};

const SLOTS: u32 = 512;

fn populated_db() -> Database {
    let mut db = Database::build(schema::standard_schema_with_slots(SLOTS)).unwrap();
    // Fill ~70% of the dynamic tables with linked call loops so the
    // structural/range/semantic elements have real records to walk.
    for _ in 0..(SLOTS * 7 / 10) {
        let p = db.alloc_record_raw(schema::PROCESS_TABLE).unwrap();
        let c = db.alloc_record_raw(schema::CONNECTION_TABLE).unwrap();
        let r = db.alloc_record_raw(schema::RESOURCE_TABLE).unwrap();
        db.write_field_raw(
            wtnc::db::RecordRef::new(schema::PROCESS_TABLE, p),
            schema::process::CONNECTION_ID,
            c as u64,
        )
        .unwrap();
        db.write_field_raw(
            wtnc::db::RecordRef::new(schema::CONNECTION_TABLE, c),
            schema::connection::CHANNEL_ID,
            r as u64,
        )
        .unwrap();
        db.write_field_raw(
            wtnc::db::RecordRef::new(schema::RESOURCE_TABLE, r),
            schema::resource::PROCESS_ID,
            p as u64,
        )
        .unwrap();
    }
    db
}

/// Touches `frac` of the region's blocks with same-value writes:
/// the dirty tracker marks them (and bumps the owning records'
/// generations) but the data stays valid, so the audits re-verify
/// and find nothing — the steady-state cost being measured.
fn touch_blocks(db: &mut Database, frac: f64, salt: usize) -> usize {
    let n_blocks = db.region_len() / DIRTY_BLOCK_SIZE;
    let k = ((n_blocks as f64 * frac) as usize).max(1);
    for i in 0..k {
        let block = (i * n_blocks / k + salt) % n_blocks;
        let offset = block * DIRTY_BLOCK_SIZE + (salt * 7 + i) % DIRTY_BLOCK_SIZE;
        let byte = db.region()[offset];
        db.poke(offset, &[byte]).unwrap();
    }
    k
}

struct World {
    db: Database,
    api: DbApi,
    registry: ProcessRegistry,
    audit: AuditProcess,
    tick: u64,
}

impl World {
    fn new(base: &Database, incremental: bool) -> Self {
        let db = base.clone();
        let audit = AuditProcess::new(
            AuditConfig {
                incremental,
                // Steady-state incremental cost: periodic forced
                // sweeps are benchmarked by the full-scan world.
                full_rescan_period: 0,
                ..AuditConfig::default()
            },
            &db,
        );
        World { db, api: DbApi::new(), registry: ProcessRegistry::new(), audit, tick: 0 }
    }

    /// Runs one cycle and returns (elapsed seconds, findings count).
    fn cycle(&mut self) -> (f64, usize) {
        self.tick += 10;
        let at = SimTime::from_secs(self.tick);
        let start = Instant::now();
        let report = self.audit.run_cycle(&mut self.db, &mut self.api, &mut self.registry, at);
        (start.elapsed().as_secs_f64(), report.findings.len())
    }
}

fn main() {
    let smoke = std::env::var("WTNC_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false);
    let iters: usize = if smoke { 1 } else { 40 };
    let base = populated_db();
    let n_blocks = base.region_len() / DIRTY_BLOCK_SIZE;

    println!(
        "Audit cycle: full scan vs incremental ({} slots, {} KiB region, {} blocks, {iters} iters)\n",
        SLOTS,
        base.region_len() / 1024,
        n_blocks
    );
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>9}",
        "dirty %", "blocks", "full (us)", "incr (us)", "speedup"
    );

    let mut points = String::new();
    for &frac in &[0.01f64, 0.05, 0.10, 0.25, 0.50] {
        let mut full = World::new(&base, false);
        let mut incr = World::new(&base, true);
        // Warm-up cycle: establishes the verified-clean baseline both
        // engines skip from (and faults in the CRC tables).
        full.cycle();
        incr.cycle();

        let (mut t_full, mut t_incr, mut touched) = (0.0f64, 0.0f64, 0usize);
        for i in 0..iters {
            touched = touch_blocks(&mut full.db, frac, i + 1);
            touch_blocks(&mut incr.db, frac, i + 1);
            let (tf, ff) = full.cycle();
            let (ti, fi) = incr.cycle();
            assert_eq!(ff, fi, "parity violated: full={ff} incremental={fi} findings");
            assert_eq!(ff, 0, "valid writes must produce no findings");
            t_full += tf;
            t_incr += ti;
        }
        let (avg_full, avg_incr) = (t_full / iters as f64, t_incr / iters as f64);
        let speedup = avg_full / avg_incr.max(1e-12);
        println!(
            "{:>8.0} {:>8} {:>12.1} {:>12.1} {:>8.1}x",
            frac * 100.0,
            touched,
            avg_full * 1e6,
            avg_incr * 1e6,
            speedup
        );
        points.push_str(&format!(
            "    {{\"dirty_frac\": {frac}, \"dirty_blocks\": {touched}, \
             \"full_cycle_us\": {:.2}, \"incremental_cycle_us\": {:.2}, \
             \"speedup\": {:.2}}},\n",
            avg_full * 1e6,
            avg_incr * 1e6,
            speedup
        ));
    }
    let points = points.trim_end_matches(",\n").to_string();

    let json = format!(
        "{{\n  \"bench\": \"audit_cycle\",\n  \"host\": {},\n  \"slots\": {SLOTS},\n  \
         \"region_bytes\": {},\n  \"block_size\": {DIRTY_BLOCK_SIZE},\n  \
         \"iters\": {iters},\n  \"smoke\": {smoke},\n  \"points\": [\n{points}\n  ]\n}}\n",
        wtnc_bench::host_info_json(),
        base.region_len()
    );
    let path = "results/BENCH_audit_cycle.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
}
