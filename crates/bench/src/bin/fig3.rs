//! Regenerates paper Figure 3: escaped errors as the fault/error
//! inter-arrival time sweeps from 2 to 20 seconds (audits on).
//!
//! ```sh
//! cargo run --release -p wtnc-bench --bin fig3
//! ```

use wtnc::inject::db_campaign::{run_campaign, DbCampaignConfig};
use wtnc::sim::SimDuration;
use wtnc_bench::scaled_runs;

fn main() {
    let runs = scaled_runs(10);
    println!(
        "Figure 3 — escaped errors vs fault inter-arrival time (audit period 10 s, {runs} runs/point)\n"
    );
    println!("{:>10} {:>12} {:>18} {:>14}", "IAT (s)", "injected", "escaped per run", "escaped %");
    for iat in (2..=20).step_by(2) {
        let config = DbCampaignConfig {
            audits: true,
            error_iat: SimDuration::from_secs(iat),
            ..DbCampaignConfig::default()
        };
        let r = run_campaign(&config, runs);
        println!(
            "{:>10} {:>12} {:>18.1} {:>13.1}%",
            iat,
            r.injected,
            r.escaped as f64 / runs as f64,
            r.escaped_pct()
        );
    }
    println!(
        "\npaper reference: escaped count rises as IAT falls (accelerating once IAT < the 10 s \
         audit period); escaped percentage stays roughly flat (8-14%), no cliff"
    );
}
