//! Runs every table/figure harness in sequence — the one-shot
//! reproduction of the paper's whole evaluation section.
//!
//! ```sh
//! WTNC_RUNS_SCALE=0.2 cargo run --release -p wtnc-bench --bin repro_all
//! ```

use std::process::Command;

fn main() {
    let bins = [
        "table3",
        "table4",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "table8",
        "table9",
        "table10",
        "ablation",
        "selective_ext",
    ];
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin directory");
    for bin in bins {
        println!("================================================================");
        println!("== {bin}");
        println!("================================================================");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
            std::process::exit(1);
        }
        println!();
    }
}
