//! Durable-store recovery bench: journal replay throughput, warm-
//! restart latency as a function of journal length, checkpoint cost,
//! and the power-fail campaign outcome table.
//!
//! The framework's availability argument rests on the controller
//! restarting *warm*: instead of rebuilding the database from
//! provisioning data, it reloads the newest valid golden checkpoint
//! and replays the journal tail. This bench measures what that costs —
//! how fast journal records replay, how recovery latency grows with
//! the journal tail length, and how expensive cutting a checkpoint is
//! — and then runs the seeded power-fail campaign from
//! `wtnc::inject::powerfail_campaign` to show the detection ledger:
//! zero fail-silence violations across every fault model.
//!
//! Emits `results/BENCH_store_recovery.json`. Run counts scale with
//! `WTNC_RUNS_SCALE` as in the other campaign benches.
//!
//! ```sh
//! cargo run --release -p wtnc-bench --bin store_recovery
//! ```

use std::time::Instant;

use wtnc::db::{schema, Database, DbError, RecordRef};
use wtnc::inject::powerfail_campaign::{run_campaign, PowerFailConfig, PowerFailModel};
use wtnc::sim::SimRng;
use wtnc::store::{ScratchDir, Store, StoreConfig};
use wtnc_bench::{host_info_json, outcome_counts_json, scaled_runs, write_results};

/// One seeded mutation step against the connection table (allocate /
/// free / field write), tolerating a full table by freeing instead.
fn workload_step(db: &mut Database, rng: &mut SimRng, live: &mut Vec<u32>) {
    let table = schema::CONNECTION_TABLE;
    let result = match rng.index(4) {
        0 => match db.alloc_record_raw(table) {
            Ok(idx) => {
                live.push(idx);
                db.write_field_raw(
                    RecordRef::new(table, idx),
                    schema::connection::CALLER_ID,
                    rng.range_u64(0, 99_999),
                )
            }
            Err(DbError::TableFull(_)) if !live.is_empty() => {
                let idx = live.swap_remove(rng.index(live.len()));
                db.free_record_raw(RecordRef::new(table, idx))
            }
            Err(e) => Err(e),
        },
        1 if !live.is_empty() => {
            let idx = live.swap_remove(rng.index(live.len()));
            db.free_record_raw(RecordRef::new(table, idx))
        }
        _ if !live.is_empty() => {
            let idx = live[rng.index(live.len())];
            db.write_field_raw(
                RecordRef::new(table, idx),
                schema::connection::STATE,
                rng.range_u64(0, 4),
            )
        }
        _ => db.write_field_raw(
            RecordRef::new(schema::CHANNEL_CONFIG_TABLE, 0),
            schema::channel_config::FREQ_KHZ,
            rng.range_u64(800_000, 900_000),
        ),
    };
    result.expect("workload step");
}

/// Builds a store directory holding one baseline checkpoint followed
/// by a journal tail of at least `records` mutation records. Returns
/// (journal records past the checkpoint, journal bytes).
fn build_tail(dir: &std::path::Path, records: usize, seed: u64) -> (usize, u64) {
    let mut rng = SimRng::seed_from(seed);
    let mut db = Database::build(schema::standard_schema()).expect("standard schema");
    let mut store = Store::open(dir, StoreConfig::default()).expect("open store");
    store.attach(&mut db);
    store.checkpoint(&mut db).expect("baseline checkpoint");
    let baseline = store.journal_records();
    let mut live = Vec::new();
    while store.journal_records() - baseline < records as u64 {
        for _ in 0..16 {
            workload_step(&mut db, &mut rng, &mut live);
        }
        store.sync(&mut db).expect("journal sync");
    }
    ((store.journal_records() - baseline) as usize, store.journal_bytes())
}

fn main() {
    let runs = scaled_runs(20);
    let sizes = [200usize, 1_000, 5_000];
    println!("Durable-store recovery bench\n");

    // 1. Checkpoint cost: cut a checkpoint of the standard schema
    //    image and report wall time plus on-disk size.
    let scratch = ScratchDir::new("bench-ckpt");
    let mut db = Database::build(schema::standard_schema()).expect("standard schema");
    let mut store = Store::open(scratch.path(), StoreConfig::default()).expect("open store");
    store.attach(&mut db);
    let t = Instant::now();
    let gen = store.checkpoint(&mut db).expect("checkpoint");
    let checkpoint_ms = t.elapsed().as_secs_f64() * 1e3;
    let checkpoint_bytes =
        std::fs::metadata(scratch.path().join(wtnc::store::checkpoint::checkpoint_file_name(gen)))
            .map(|m| m.len())
            .unwrap_or(0);
    drop(store);
    println!(
        "checkpoint cost: {:.3} ms for {} bytes on disk ({} byte image)\n",
        checkpoint_ms,
        checkpoint_bytes,
        db.region_len() * 2,
    );

    // 2. Recovery latency vs journal tail length, and replay
    //    throughput from the largest tail.
    println!(
        "{:>14} {:>14} {:>12} {:>12} {:>14}",
        "journal (rec)", "journal (B)", "open (ms)", "replay (ms)", "replay (rec/s)"
    );
    let mut tail_jsons: Vec<String> = Vec::new();
    let mut peak_rate = 0.0f64;
    for &records in &sizes {
        let scratch = ScratchDir::new(&format!("bench-tail-{records}"));
        let (replayable, journal_bytes) =
            build_tail(scratch.path(), records, 0xB5EC + records as u64);
        let t = Instant::now();
        let mut store = Store::open(scratch.path(), StoreConfig::default()).expect("reopen");
        let open_ms = t.elapsed().as_secs_f64() * 1e3;
        let mut recovered = Database::build(schema::standard_schema()).expect("standard schema");
        let t = Instant::now();
        let info = store.recover_into(&mut recovered).expect("recover");
        let replay_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(info.replayed, replayable, "all tail records replay");
        assert!(info.findings.is_empty(), "clean store recovers clean");
        let rate = info.replayed as f64 / (replay_ms / 1e3).max(1e-9);
        peak_rate = peak_rate.max(rate);
        println!(
            "{replayable:>14} {journal_bytes:>14} {open_ms:>12.3} {replay_ms:>12.3} {rate:>14.0}"
        );
        tail_jsons.push(format!(
            "    {{\"journal_records\": {replayable}, \"journal_bytes\": {journal_bytes}, \
             \"open_ms\": {open_ms:.4}, \"replay_ms\": {replay_ms:.4}, \
             \"replay_records_per_s\": {rate:.0}}}"
        ));
    }

    // 3. Power-fail campaign: the detection ledger per fault model.
    println!("\nPower-fail campaign ({runs} runs per model)\n");
    println!(
        "{:>20} {:>9} {:>9} {:>9} {:>7} {:>6} {:>6}",
        "model", "injected", "detected", "repaired", "exact", "FSV", "repl."
    );
    let mut model_jsons: Vec<String> = Vec::new();
    for model in PowerFailModel::ALL {
        let config = PowerFailConfig { model, ..PowerFailConfig::default() };
        let r = run_campaign(&config, runs);
        let fsv = r.outcomes.count(wtnc::inject::RunOutcome::FailSilenceViolation);
        println!(
            "{:>20} {:>9} {:>9} {:>9} {:>7} {:>6} {:>6}",
            model.name(),
            r.injected,
            r.outcomes.count(wtnc::inject::RunOutcome::AuditDetection),
            r.outcomes.count(wtnc::inject::RunOutcome::DetectedRepaired),
            r.exact_recoveries,
            fsv,
            r.replayed,
        );
        model_jsons.push(format!(
            "    \"{}\": {{\n      \"injected\": {},\n      \"findings\": {},\n      \
             \"replayed\": {},\n      \"exact_recoveries\": {},\n      \"outcomes\": {}\n    }}",
            model.name(),
            r.injected,
            r.findings,
            r.replayed,
            r.exact_recoveries,
            outcome_counts_json(&r.outcomes),
        ));
    }
    println!(
        "\npaper context: the controller restarts warm from the newest valid golden \
         checkpoint plus the journal tail; every power-fail or tampering event must \
         surface as a finding — fail-silence violations must stay at zero"
    );

    let json = format!(
        "{{\n  \"bench\": \"store_recovery\",\n  \"host\": {},\n  \"runs_per_model\": {runs},\n  \
         \"checkpoint\": {{\"wall_ms\": {checkpoint_ms:.4}, \"bytes\": {checkpoint_bytes}}},\n  \
         \"replay_peak_records_per_s\": {peak_rate:.0},\n  \"recovery_latency\": [\n{}\n  ],\n  \
         \"models\": {{\n{}\n  }}\n}}\n",
        host_info_json(),
        tail_jsons.join(",\n"),
        model_jsons.join(",\n")
    );
    write_results("store_recovery", &json);
}
