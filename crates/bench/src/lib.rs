//! Shared support for the reproduction harness binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper; this library holds the formatting and configuration helpers
//! they share. Run counts default to the paper's but can be scaled
//! down for a quick pass with the `WTNC_RUNS_SCALE` environment
//! variable (e.g. `WTNC_RUNS_SCALE=0.1` for a 10× faster sweep).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use wtnc::inject::{OutcomeCounts, RunOutcome};

/// Scales a paper-default run count by `WTNC_RUNS_SCALE` (clamped to
/// at least one run).
pub fn scaled_runs(paper_default: usize) -> usize {
    let scale = std::env::var("WTNC_RUNS_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.001, 100.0);
    ((paper_default as f64 * scale).round() as usize).max(1)
}

/// A JSON object describing the machine a benchmark ran on, embedded
/// in every `results/BENCH_*.json`: wall-clock numbers measured on a
/// single-core container do not transfer to multi-core hosts, so the
/// artifact must say what it was measured on.
pub fn host_info_json() -> String {
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    format!(
        "{{\"cpus\": {cpus}, \"os\": \"{}\", \"arch\": \"{}\"}}",
        std::env::consts::OS,
        std::env::consts::ARCH
    )
}

/// Serializes an [`OutcomeCounts`] tally as a JSON object keyed by
/// outcome name, plus the derived totals the tables print.
pub fn outcome_counts_json(counts: &OutcomeCounts) -> String {
    let mut fields: Vec<String> =
        RunOutcome::ALL.iter().map(|&o| format!("\"{o:?}\": {}", counts.count(o))).collect();
    fields.push(format!("\"total\": {}", counts.total()));
    fields.push(format!("\"activated\": {}", counts.activated()));
    fields.push(format!("\"coverage_pct\": {:.2}", counts.coverage()));
    format!("{{{}}}", fields.join(", "))
}

/// Serializes campaign columns (name → tally) as a JSON array, the
/// machine-readable mirror of [`print_outcome_matrix`].
pub fn outcome_columns_json(columns: &[(String, OutcomeCounts)]) -> String {
    let rows: Vec<String> = columns
        .iter()
        .map(|(name, counts)| {
            format!("    {{\"name\": \"{name}\", \"counts\": {}}}", outcome_counts_json(counts))
        })
        .collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}

/// The workspace-root `results/` directory. Bench *bins* run with the
/// workspace root as cwd but `cargo bench` harnesses run with the
/// package dir as cwd, so anchor on the nearest ancestor that holds a
/// `Cargo.lock` instead of trusting the cwd.
fn results_dir() -> std::path::PathBuf {
    let start = std::env::current_dir().unwrap_or_else(|_| ".".into());
    let mut dir = start.clone();
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join("results");
        }
        if !dir.pop() {
            return start.join("results");
        }
    }
}

/// Writes a `results/BENCH_<name>.json` artifact, reporting the path
/// (or the error — benches must not fail just because `results/` is
/// missing on some checkout).
pub fn write_results(name: &str, json: &str) {
    let path = results_dir().join(format!("BENCH_{name}.json"));
    let _ = std::fs::create_dir_all(results_dir());
    match std::fs::write(&path, json) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => println!("\ncould not write {}: {e}", path.display()),
    }
}

/// Formats a percentage with its binomial 95% confidence interval the
/// way the paper's Tables 8 and 9 do: `52% (47, 58)`.
pub fn pct_ci(counts: &OutcomeCounts, outcome: RunOutcome) -> String {
    let p = counts.proportion_of_activated(outcome);
    let (lo, hi) = p.ci95_percent();
    format!("{:.0}% ({:.0}, {:.0})", p.percent(), lo, hi)
}

/// Prints a Table 8/9-style outcome matrix: one column per campaign
/// configuration, one row per outcome category.
pub fn print_outcome_matrix(title: &str, columns: &[(String, OutcomeCounts)]) {
    println!("{title}");
    print!("{:<42}", "Category");
    for (name, _) in columns {
        print!(" | {name:<28}");
    }
    println!();
    println!("{}", "-".repeat(42 + columns.len() * 31));

    let pct_of_total = |c: &OutcomeCounts, o: RunOutcome| {
        if c.total() == 0 {
            0.0
        } else {
            100.0 * c.count(o) as f64 / c.total() as f64
        }
    };
    print!("{:<42}", "Errors Not Activated");
    for (_, c) in columns {
        print!(" | {:<28}", format!("{:.0}%", pct_of_total(c, RunOutcome::NotActivated)));
    }
    println!();
    for outcome in [
        RunOutcome::NotManifested,
        RunOutcome::PecosDetection,
        RunOutcome::AuditDetection,
        RunOutcome::SystemDetection,
        RunOutcome::ClientHang,
        RunOutcome::FailSilenceViolation,
    ] {
        print!("{:<42}", outcome.to_string());
        for (_, c) in columns {
            let cell = match outcome {
                RunOutcome::PecosDetection | RunOutcome::AuditDetection
                    if c.count(outcome) == 0 =>
                {
                    "N/A or 0".to_owned()
                }
                RunOutcome::ClientHang | RunOutcome::FailSilenceViolation
                    if c.count(outcome) < 10 =>
                {
                    // The paper prints raw counts for rare categories.
                    format!("{} case(s)", c.count(outcome))
                }
                _ => pct_ci(c, outcome),
            };
            print!(" | {cell:<28}");
        }
        println!();
    }
    print!("{:<42}", "Total Number of Injected Errors");
    for (_, c) in columns {
        print!(" | {:<28}", c.total());
    }
    println!();
    print!("{:<42}", "Coverage {100 - (crash+hang+FSV)}%");
    for (_, c) in columns {
        print!(" | {:<28}", format!("{:.0}%", c.coverage()));
    }
    println!("\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_runs_clamps_to_one() {
        std::env::remove_var("WTNC_RUNS_SCALE");
        assert_eq!(scaled_runs(30), 30);
    }

    #[test]
    fn pct_ci_formats_like_the_paper() {
        let mut c = OutcomeCounts::new();
        for _ in 0..52 {
            c.record(RunOutcome::SystemDetection);
        }
        for _ in 0..48 {
            c.record(RunOutcome::NotManifested);
        }
        let s = pct_ci(&c, RunOutcome::SystemDetection);
        assert!(s.starts_with("52% ("), "{s}");
    }

    #[test]
    fn matrix_prints_without_panicking() {
        let mut c = OutcomeCounts::new();
        c.record(RunOutcome::PecosDetection);
        c.record(RunOutcome::NotActivated);
        print_outcome_matrix("t", &[("col".to_owned(), c)]);
    }
}
