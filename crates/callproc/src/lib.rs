//! Call-processing clients for the controller.
//!
//! Two client implementations back the paper's two experiment
//! families:
//!
//! * [`DesClient`] — the discrete-event client of §5: a multi-threaded
//!   call processor walking the Figure-2 phases (authentication,
//!   resource allocation, active call, tear-down) against the real
//!   database through the real API, keeping golden local copies of
//!   everything it writes. The §5 experiments inject bit errors into
//!   the database while this client runs and measure what escapes the
//!   audits.
//! * [`asm_client`] — the ISA-level client of §6: the Figure-8 loop
//!   (allocate a record, write a computed value, read it back, compare
//!   against the golden local copy, flag on mismatch) expressed in
//!   assembly, instrumentable by PECOS, reached from the machine
//!   through the [`DbSyscallBridge`]. The §6 experiments inject errors
//!   into this client's text segment.
//!
//! Each in-flight call runs under its own simulated process identity
//! so the audit's recovery actions (terminate the thread using zombie
//! records) compose with the client: a call whose pid the audit killed
//! is observed as dropped on its next activity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm_client;
mod des_client;

pub use asm_client::{AsmClientConfig, BridgeStats, DbSyscallBridge};
pub use des_client::{CallHandle, CallOutcome, CallStats, DesClient, WorkloadConfig};
