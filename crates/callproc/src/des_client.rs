//! The discrete-event call-processing client (§5.1, Figure 2).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use wtnc_db::{schema, Database, DbApi, DbError};
use wtnc_sim::stats::Accumulator;
use wtnc_sim::{Pid, ProcessRegistry, SimDuration, SimRng, SimTime};

/// Workload parameters (paper Table 2 defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Concurrent call-processing threads.
    pub threads: usize,
    /// Minimum call duration.
    pub call_min: SimDuration,
    /// Maximum call duration.
    pub call_max: SimDuration,
    /// Mean call inter-arrival time (exponential).
    pub interarrival_mean: SimDuration,
    /// Mid-call health-poll period.
    pub poll_period: SimDuration,
    /// Client-side processing time for the setup phases (auth +
    /// resource allocation + feature setup), excluding database API
    /// costs. Calibrated so uninstrumented setup lands near the
    /// paper's 160 ms.
    pub setup_processing: SimDuration,
    /// Fractional slow-down of client processing while the audit
    /// process shares the controller CPU (the paper's measured 160 ms →
    /// 270 ms comes mostly from this contention). Applied only when
    /// audits run.
    pub audit_contention: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            threads: 16,
            call_min: SimDuration::from_secs(20),
            call_max: SimDuration::from_secs(30),
            interarrival_mean: SimDuration::from_secs(10),
            // The paper's client provides "the basic call-processing
            // service of setting up and tearing down a call without
            // additional features": records are touched at setup and
            // tear-down only, so the supervision poll defaults beyond
            // the maximum call duration.
            poll_period: SimDuration::from_secs(60),
            setup_processing: SimDuration::from_millis(150),
            audit_contention: 0.62,
        }
    }
}

/// Aggregate client statistics for one run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CallStats {
    /// Calls whose setup completed.
    pub calls_completed_setup: u64,
    /// Calls refused at setup (no free thread/records or API failure).
    pub calls_refused: u64,
    /// Calls that ran to normal tear-down with matching golden copies.
    pub calls_clean: u64,
    /// Calls torn down with a golden-copy mismatch (corrupted data
    /// reached the client's records).
    pub calls_corrupted: u64,
    /// Calls dropped mid-flight (record freed by audit recovery, owner
    /// terminated, or API failure while active).
    pub calls_dropped: u64,
    /// Mid-call polls that observed corrupted data.
    pub polls_corrupted: u64,
    /// Call setup time distribution.
    pub setup_time: Accumulator,
}

/// Identifier of one in-flight call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CallHandle(pub u64);

/// How a call ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CallOutcome {
    /// Normal tear-down; all golden copies matched.
    Clean,
    /// Tear-down found corrupted record data (the client consumed an
    /// escaped error).
    CorruptedData,
    /// The call had already been dropped (audit terminated its thread
    /// or freed its records, or an API error interrupted it).
    Dropped,
}

#[derive(Debug, Clone)]
struct ActiveCall {
    pid: Pid,
    process_rec: u32,
    connection_rec: u32,
    resource_rec: u32,
    /// Golden local copies: (caller, callee, state) written to the
    /// connection record.
    golden_connection: (u64, u64, u64),
    dropped: bool,
}

/// The multi-threaded call-processing client.
///
/// The experiment harness owns the event queue; it calls
/// [`DesClient::start_call`] on arrival events, [`DesClient::poll_call`]
/// on poll events and [`DesClient::end_call`] on hang-up events.
#[derive(Debug)]
pub struct DesClient {
    config: WorkloadConfig,
    rng: SimRng,
    calls: HashMap<CallHandle, ActiveCall>,
    next_handle: u64,
    stats: CallStats,
    /// Whether the audit subsystem is active (enables the contention
    /// model and lets the harness compare both arms).
    audits_active: bool,
}

impl DesClient {
    /// Creates the client.
    pub fn new(config: WorkloadConfig, seed: u64, audits_active: bool) -> Self {
        DesClient {
            config,
            rng: SimRng::seed_from(seed),
            calls: HashMap::new(),
            next_handle: 0,
            stats: CallStats::default(),
            audits_active,
        }
    }

    /// The workload configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CallStats {
        &self.stats
    }

    /// Number of calls currently in flight.
    pub fn active_calls(&self) -> usize {
        self.calls.len()
    }

    /// Draws the next call inter-arrival gap.
    pub fn next_arrival_gap(&mut self) -> SimDuration {
        self.rng.exponential(self.config.interarrival_mean)
    }

    /// Draws a call duration uniform in `[call_min, call_max]`.
    pub fn next_call_duration(&mut self) -> SimDuration {
        self.rng.uniform_duration(self.config.call_min, self.config.call_max)
    }

    /// Attempts to set up a call at `now`: authentication (config
    /// reads), resource allocation (three records forming the semantic
    /// loop), feature setup (field writes). Returns the call handle and
    /// the setup latency, or `None` when refused (all threads busy, or
    /// the database rejected an operation — e.g. corrupted catalog or
    /// exhausted tables).
    pub fn start_call(
        &mut self,
        db: &mut Database,
        api: &mut DbApi,
        registry: &mut ProcessRegistry,
        now: SimTime,
    ) -> Option<(CallHandle, SimDuration)> {
        if self.calls.len() >= self.config.threads {
            self.stats.calls_refused += 1;
            return None;
        }
        let pid = registry.spawn("cp-thread", now);
        api.init_at(pid, now);
        api.take_cost();

        match self.try_setup(db, api, pid, now) {
            Ok(call) => {
                let api_cost = api.take_cost();
                let processing = if self.audits_active {
                    SimDuration::from_secs_f64(
                        self.config.setup_processing.as_secs_f64()
                            * (1.0 + self.config.audit_contention),
                    )
                } else {
                    self.config.setup_processing
                };
                let setup = processing + api_cost;
                self.stats.calls_completed_setup += 1;
                self.stats.setup_time.push(setup.as_secs_f64() * 1e3);
                let handle = CallHandle(self.next_handle);
                self.next_handle += 1;
                self.calls.insert(handle, call);
                Some((handle, setup))
            }
            Err(_) => {
                // Unwind: free whatever we allocated and retire the
                // thread.
                api.close(pid, now);
                registry.kill(pid, now);
                self.stats.calls_refused += 1;
                None
            }
        }
    }

    fn try_setup(
        &mut self,
        db: &mut Database,
        api: &mut DbApi,
        pid: Pid,
        now: SimTime,
    ) -> Result<ActiveCall, DbError> {
        // Authentication: consult static configuration — the call
        // ceiling plus the parameters of a candidate radio channel.
        let _max_calls =
            api.read_fld(db, pid, schema::SYSCONFIG_TABLE, 0, schema::sysconfig::MAX_CALLS, now)?;
        let channel_cfg_count = db.catalog().table(schema::CHANNEL_CONFIG_TABLE)?.def.record_count;
        let cfg_rec = self.rng.range_u64(0, channel_cfg_count as u64) as u32;
        let _channel_params = api.read_rec(db, pid, schema::CHANNEL_CONFIG_TABLE, cfg_rec, now)?;

        // Resource allocation: the three-record semantic loop. Locks
        // are held across the multi-record transaction so the audit
        // abstains from half-built loops.
        let p = api.alloc_record(db, pid, schema::PROCESS_TABLE, now)?;
        let c = api.alloc_record(db, pid, schema::CONNECTION_TABLE, now)?;
        let r = api.alloc_record(db, pid, schema::RESOURCE_TABLE, now)?;
        let p_rec = wtnc_db::RecordRef::new(schema::PROCESS_TABLE, p);
        let c_rec = wtnc_db::RecordRef::new(schema::CONNECTION_TABLE, c);
        let r_rec = wtnc_db::RecordRef::new(schema::RESOURCE_TABLE, r);
        api.lock(p_rec, pid, now)?;
        api.lock(c_rec, pid, now)?;
        api.lock(r_rec, pid, now)?;

        let caller = self.rng.range_u64(0, 10_000);
        let callee = self.rng.range_u64(0, 10_000);
        let now_secs = now.as_micros() / 1_000_000;
        let rng = &mut self.rng;

        // Feature setup: populate every field of the three records
        // (field order follows the schema definitions).
        let process_values = [
            c as u64, // connection_id
            1,        // status = setting up
            // name_id is unruled but low-cardinality (one of the
            // controller's task-name codes) — the kind of attribute
            // §4.4.2's selective monitoring can learn.
            1_000 + rng.range_u64(0, 8) * 111,
            now_secs,                 // start_time
            rng.range_u64(0, 8),      // priority
            rng.range_u64(0, 4),      // cpu_affinity
            rng.range_u64(10, 1_001), // watchdog_ms
        ];
        let connection_values = [
            r as u64, // channel_id
            caller,
            callee,
            1,                       // state = setup
            now_secs,                // setup_time
            rng.range_u64(0, 4),     // codec
            rng.range_u64(0, 8),     // priority
            rng.range_u64(0, 3),     // bearer
            rng.range_u64(0, 2),     // direction
            rng.range_u64(0, 16),    // hop_count
            rng.range_u64(0, 32),    // timeslot
            rng.range_u64(0, 1_000), // cell_id
            rng.range_u64(0, 8),     // qos
            0,                       // billing_units (unruled; accumulates later)
        ];
        let resource_values = [
            p as u64,                        // process_id
            1,                               // status = busy
            rng.range_u64(800_000, 960_001), // freq_khz
            // power_mw is unruled but quantized to the radio's power
            // steps — learnable by selective monitoring.
            [250u64, 500, 1_000, 2_000][rng.index(4)],
            rng.range_u64(0, 32),    // timeslot
            rng.range_u64(0, 64),    // interference
            rng.range_u64(0, 1_024), // carrier
        ];

        let result = (|| -> Result<(), DbError> {
            api.write_rec(db, pid, schema::PROCESS_TABLE, p, &process_values, now)?;
            api.write_rec(db, pid, schema::CONNECTION_TABLE, c, &connection_values, now)?;
            api.write_rec(db, pid, schema::RESOURCE_TABLE, r, &resource_values, now)?;
            Ok(())
        })();

        api.unlock(p_rec, pid);
        api.unlock(c_rec, pid);
        api.unlock(r_rec, pid);
        result?;

        Ok(ActiveCall {
            pid,
            process_rec: p,
            connection_rec: c,
            resource_rec: r,
            golden_connection: (caller, callee, 1),
            dropped: false,
        })
    }

    /// Mid-call health poll: re-reads the connection record and
    /// compares it against the golden local copy. A mismatch means the
    /// call is running on corrupted data; the client drops it. Returns
    /// `true` while the call is still healthy.
    pub fn poll_call(
        &mut self,
        db: &mut Database,
        api: &mut DbApi,
        registry: &ProcessRegistry,
        handle: CallHandle,
        now: SimTime,
    ) -> bool {
        let Some(call) = self.calls.get(&handle) else {
            return false;
        };
        if call.dropped {
            return false;
        }
        // The audit may have terminated this call's thread.
        if !registry.is_alive(call.pid) {
            self.mark_dropped(handle);
            return false;
        }
        let pid = call.pid;
        let c = call.connection_rec;
        let r = call.resource_rec;
        let golden = call.golden_connection;
        use schema::connection;
        // The mid-call supervision path touches the whole connection
        // record plus the channel status.
        let conn = api.read_rec(db, pid, schema::CONNECTION_TABLE, c, now);
        let res = api.read_fld(db, pid, schema::RESOURCE_TABLE, r, schema::resource::STATUS, now);
        match (conn, res) {
            (Ok(values), Ok(_status)) => {
                let observed = (
                    values[connection::CALLER_ID.0 as usize],
                    values[connection::CALLEE_ID.0 as usize],
                    values[connection::STATE.0 as usize],
                );
                if observed == golden {
                    true
                } else {
                    self.stats.polls_corrupted += 1;
                    self.mark_dropped(handle);
                    false
                }
            }
            _ => {
                // Record freed by recovery or API failure: dropped.
                self.mark_dropped(handle);
                false
            }
        }
    }

    fn mark_dropped(&mut self, handle: CallHandle) {
        if let Some(call) = self.calls.get_mut(&handle) {
            if !call.dropped {
                call.dropped = true;
                self.stats.calls_dropped += 1;
            }
        }
    }

    /// Ends a call at `now`: the Figure-8 discipline — read back every
    /// record, compare against golden local copies, then free the
    /// records and retire the thread.
    pub fn end_call(
        &mut self,
        db: &mut Database,
        api: &mut DbApi,
        registry: &mut ProcessRegistry,
        handle: CallHandle,
        now: SimTime,
    ) -> CallOutcome {
        let Some(call) = self.calls.remove(&handle) else {
            return CallOutcome::Dropped;
        };
        if call.dropped || !registry.is_alive(call.pid) {
            // Clean up whatever recovery left behind.
            let _ = api.free_record(db, call.pid, schema::PROCESS_TABLE, call.process_rec, now);
            let _ =
                api.free_record(db, call.pid, schema::CONNECTION_TABLE, call.connection_rec, now);
            let _ = api.free_record(db, call.pid, schema::RESOURCE_TABLE, call.resource_rec, now);
            api.close(call.pid, now);
            registry.kill(call.pid, now);
            if !call.dropped {
                self.stats.calls_dropped += 1;
            }
            return CallOutcome::Dropped;
        }
        use schema::connection;
        let pid = call.pid;
        let c = call.connection_rec;
        // Tear-down reads back every record it wrote (Figure 8 step 4).
        let conn = api.read_rec(db, pid, schema::CONNECTION_TABLE, c, now);
        let proc_rb = api.read_rec(db, pid, schema::PROCESS_TABLE, call.process_rec, now);
        let res_rb = api.read_rec(db, pid, schema::RESOURCE_TABLE, call.resource_rec, now);
        let outcome = match (conn, proc_rb, res_rb) {
            (Ok(values), Ok(_), Ok(_)) => {
                let observed = (
                    values[connection::CALLER_ID.0 as usize],
                    values[connection::CALLEE_ID.0 as usize],
                    values[connection::STATE.0 as usize],
                );
                if observed == call.golden_connection {
                    self.stats.calls_clean += 1;
                    CallOutcome::Clean
                } else {
                    self.stats.calls_corrupted += 1;
                    CallOutcome::CorruptedData
                }
            }
            _ => {
                self.stats.calls_dropped += 1;
                CallOutcome::Dropped
            }
        };
        let _ = api.free_record(db, pid, schema::PROCESS_TABLE, call.process_rec, now);
        let _ = api.free_record(db, pid, schema::CONNECTION_TABLE, c, now);
        let _ = api.free_record(db, pid, schema::RESOURCE_TABLE, call.resource_rec, now);
        api.close(pid, now);
        registry.kill(pid, now);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(audits: bool) -> (Database, DbApi, ProcessRegistry, DesClient) {
        let db = Database::build(schema::standard_schema()).unwrap();
        let api = if audits { DbApi::new() } else { DbApi::without_instrumentation() };
        let registry = ProcessRegistry::new();
        let client = DesClient::new(WorkloadConfig::default(), 42, audits);
        (db, api, registry, client)
    }

    #[test]
    fn full_call_lifecycle_is_clean() {
        let (mut db, mut api, mut registry, mut client) = setup(true);
        let t0 = SimTime::from_secs(1);
        let (handle, setup_time) = client.start_call(&mut db, &mut api, &mut registry, t0).unwrap();
        assert!(setup_time > SimDuration::ZERO);
        assert_eq!(client.active_calls(), 1);
        // The semantic loop is complete while the call is active.
        assert_eq!(db.active_count(schema::PROCESS_TABLE).unwrap(), 1);
        assert!(client.poll_call(&mut db, &mut api, &registry, handle, SimTime::from_secs(5)));
        let outcome =
            client.end_call(&mut db, &mut api, &mut registry, handle, SimTime::from_secs(25));
        assert_eq!(outcome, CallOutcome::Clean);
        assert_eq!(client.active_calls(), 0);
        // Everything freed.
        assert_eq!(db.active_count(schema::PROCESS_TABLE).unwrap(), 0);
        assert_eq!(db.active_count(schema::CONNECTION_TABLE).unwrap(), 0);
        assert_eq!(db.active_count(schema::RESOURCE_TABLE).unwrap(), 0);
        assert_eq!(client.stats().calls_clean, 1);
    }

    #[test]
    fn corrupted_record_detected_at_teardown() {
        let (mut db, mut api, mut registry, mut client) = setup(true);
        let t0 = SimTime::from_secs(1);
        let (handle, _) = client.start_call(&mut db, &mut api, &mut registry, t0).unwrap();
        // Corrupt the caller id behind the client's back.
        let rec = wtnc_db::RecordRef::new(schema::CONNECTION_TABLE, 0);
        let (off, _) = db.field_extent(rec, schema::connection::CALLER_ID).unwrap();
        db.flip_bit(off, 4).unwrap();
        let outcome =
            client.end_call(&mut db, &mut api, &mut registry, handle, SimTime::from_secs(20));
        assert_eq!(outcome, CallOutcome::CorruptedData);
        assert_eq!(client.stats().calls_corrupted, 1);
    }

    #[test]
    fn poll_detects_corruption_and_drops_call() {
        let (mut db, mut api, mut registry, mut client) = setup(true);
        let (handle, _) =
            client.start_call(&mut db, &mut api, &mut registry, SimTime::from_secs(1)).unwrap();
        let rec = wtnc_db::RecordRef::new(schema::CONNECTION_TABLE, 0);
        let (off, _) = db.field_extent(rec, schema::connection::STATE).unwrap();
        db.flip_bit(off, 1).unwrap();
        assert!(!client.poll_call(&mut db, &mut api, &registry, handle, SimTime::from_secs(5)));
        assert_eq!(client.stats().polls_corrupted, 1);
        assert_eq!(client.stats().calls_dropped, 1);
        let outcome =
            client.end_call(&mut db, &mut api, &mut registry, handle, SimTime::from_secs(20));
        assert_eq!(outcome, CallOutcome::Dropped);
    }

    #[test]
    fn audit_termination_observed_as_drop() {
        let (mut db, mut api, mut registry, mut client) = setup(true);
        let (handle, _) =
            client.start_call(&mut db, &mut api, &mut registry, SimTime::from_secs(1)).unwrap();
        // The audit decides this thread must die.
        let pid = registry.alive().next().unwrap();
        registry.kill(pid, SimTime::from_secs(2));
        assert!(!client.poll_call(&mut db, &mut api, &registry, handle, SimTime::from_secs(5)));
        assert_eq!(
            client.end_call(&mut db, &mut api, &mut registry, handle, SimTime::from_secs(20)),
            CallOutcome::Dropped
        );
    }

    #[test]
    fn thread_limit_refuses_excess_calls() {
        let (mut db, mut api, mut registry, client) = setup(true);
        let config = WorkloadConfig { threads: 2, ..WorkloadConfig::default() };
        let mut client2 = DesClient::new(config, 7, true);
        let t = SimTime::from_secs(1);
        assert!(client2.start_call(&mut db, &mut api, &mut registry, t).is_some());
        assert!(client2.start_call(&mut db, &mut api, &mut registry, t).is_some());
        assert!(client2.start_call(&mut db, &mut api, &mut registry, t).is_none());
        assert_eq!(client2.stats().calls_refused, 1);
        let _ = client;
    }

    #[test]
    fn catalog_corruption_refuses_setup_cleanly() {
        let (mut db, mut api, mut registry, mut client) = setup(true);
        db.flip_bit(0, 0).unwrap(); // magic
        assert!(client
            .start_call(&mut db, &mut api, &mut registry, SimTime::from_secs(1))
            .is_none());
        assert_eq!(client.stats().calls_refused, 1);
        // No leaked locks or threads.
        assert!(api.locks().is_empty());
        assert_eq!(registry.alive().count(), 0);
    }

    #[test]
    fn contention_model_raises_setup_time() {
        let (mut db, mut api, mut registry, mut with_audit) = setup(true);
        let (h, t_with) =
            with_audit.start_call(&mut db, &mut api, &mut registry, SimTime::from_secs(1)).unwrap();
        with_audit.end_call(&mut db, &mut api, &mut registry, h, SimTime::from_secs(21));

        let (mut db2, mut api2, mut registry2, mut without) = setup(false);
        let (h2, t_without) =
            without.start_call(&mut db2, &mut api2, &mut registry2, SimTime::from_secs(1)).unwrap();
        without.end_call(&mut db2, &mut api2, &mut registry2, h2, SimTime::from_secs(21));

        assert!(t_with > t_without);
        // Paper shape: roughly 160 ms → 270 ms.
        let ratio = t_with.as_secs_f64() / t_without.as_secs_f64();
        assert!((1.3..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn arrival_and_duration_draws_respect_config() {
        let (_, _, _, mut client) = setup(true);
        for _ in 0..100 {
            let d = client.next_call_duration();
            assert!(d >= SimDuration::from_secs(20) && d <= SimDuration::from_secs(30));
            let _ = client.next_arrival_gap();
        }
    }
}
