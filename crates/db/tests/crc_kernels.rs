//! Equivalence properties for the CRC-32 kernels.
//!
//! The audit's golden checksums, the store's journal/checkpoint frame
//! CRCs and the incremental `crc32_combine` folds all assume that every
//! kernel — the reference bytewise loop, the portable slice-by-8 and
//! the PCLMULQDQ hardware path — computes the *same* CRC-32 (IEEE
//! 802.3) for the same bytes. A divergence would make images written on
//! one host unreadable on another, so the equivalence is held as a
//! property over arbitrary buffers, arbitrary split points (exercising
//! the folding kernel's 64-byte stride, 16-byte loop and scalar tail in
//! every combination) and arbitrary alignments.

use proptest::prelude::*;
use wtnc_db::{crc32, crc32_bytewise, crc32_combine, crc32_slice8, crc32_with, CrcKernel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every kernel agrees with the bytewise reference on arbitrary
    /// buffers (0 to a few KiB — crossing all stride boundaries).
    #[test]
    fn kernels_agree(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let reference = crc32_bytewise(&data);
        prop_assert_eq!(crc32_slice8(&data), reference);
        // `Hardware` degrades to slice-by-8 where unsupported, so this
        // holds on every host and is the real folding kernel on x86-64.
        prop_assert_eq!(crc32_with(CrcKernel::Hardware, &data), reference);
        prop_assert_eq!(crc32(&data), reference);
    }

    /// Unaligned starts: the hardware kernel's unaligned loads must not
    /// change the answer when the same bytes sit at a different offset.
    #[test]
    fn kernels_agree_at_any_alignment(
        data in proptest::collection::vec(any::<u8>(), 64..512),
        lead in 0usize..16,
    ) {
        let mut shifted = vec![0xEEu8; lead];
        shifted.extend_from_slice(&data);
        prop_assert_eq!(
            crc32_with(CrcKernel::Hardware, &shifted[lead..]),
            crc32_bytewise(&data)
        );
    }

    /// The GF(2) combine path stays exact over hardware-computed parts:
    /// crc(a ‖ b) == combine(crc(a), crc(b), len(b)) for any split.
    #[test]
    fn combine_is_exact_over_hardware_parts(
        data in proptest::collection::vec(any::<u8>(), 1..2048),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((data.len() as f64) * split_frac) as usize;
        let (a, b) = data.split_at(split.min(data.len()));
        let ca = crc32_with(CrcKernel::Hardware, a);
        let cb = crc32_with(CrcKernel::Hardware, b);
        prop_assert_eq!(crc32_combine(ca, cb, b.len()), crc32_bytewise(&data));
    }
}
