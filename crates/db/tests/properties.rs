//! Property-based tests of the database substrate.

use proptest::prelude::*;
use wtnc_db::{
    crc32, schema, Catalog, Database, FieldDef, FieldId, FieldWidth, RecordRef, TableDef, TableId,
    TableNature, TaintKind,
};

fn arb_width() -> impl Strategy<Value = FieldWidth> {
    prop_oneof![
        Just(FieldWidth::U8),
        Just(FieldWidth::U16),
        Just(FieldWidth::U32),
        Just(FieldWidth::U64),
    ]
}

fn arb_field() -> impl Strategy<Value = FieldDef> {
    (arb_width(), any::<bool>(), 0u64..1_000).prop_map(|(width, ruled, hi)| {
        let mut f = FieldDef::dynamic("f", width);
        // 64-bit fields cannot carry range rules (catalog constraint).
        if ruled && width != FieldWidth::U64 {
            let hi = hi.min(width.max_value());
            f = f.with_range(0, hi).with_default(0);
        }
        f
    })
}

fn arb_schema() -> impl Strategy<Value = Vec<TableDef>> {
    prop::collection::vec((prop::collection::vec(arb_field(), 1..6), 1u32..12, any::<bool>()), 1..5)
        .prop_map(|tables| {
            tables
                .into_iter()
                .enumerate()
                .map(|(i, (fields, records, config))| {
                    TableDef::new(
                        &format!("t{i}"),
                        if config { TableNature::Config } else { TableNature::Dynamic },
                        records,
                        fields,
                    )
                })
                .collect()
        })
}

proptest! {
    /// CRC-32 detects any single bit flip in any buffer.
    #[test]
    fn crc_detects_single_flips(
        mut data in prop::collection::vec(any::<u8>(), 1..256),
        pos in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let golden = crc32(&data);
        let i = pos.index(data.len());
        data[i] ^= 1 << bit;
        prop_assert_ne!(crc32(&data), golden);
    }

    /// Any valid random schema builds a database whose in-region
    /// catalog round-trips: every descriptor read back matches the
    /// builder's layout.
    #[test]
    fn catalog_region_round_trips(schema in arb_schema()) {
        let catalog = Catalog::build(schema).unwrap();
        let mut region = vec![0u8; catalog.region_len()];
        catalog.write_region(&mut region);
        for tm in catalog.tables() {
            let entry = Catalog::read_region_entry(&region, tm.id).unwrap();
            prop_assert_eq!(entry.offset, tm.offset);
            prop_assert_eq!(entry.record_size, tm.record_size);
            prop_assert_eq!(entry.record_count, tm.def.record_count);
            for (fi, f) in tm.def.fields.iter().enumerate() {
                let fe = Catalog::read_region_field(&region, tm.id, &entry, FieldId(fi as u16))
                    .unwrap();
                prop_assert_eq!(fe.width, f.width);
                prop_assert_eq!(fe.offset_in_record, tm.field_offsets[fi]);
                prop_assert_eq!(fe.has_range, f.range.is_some());
            }
        }
    }

    /// Field values round-trip through the region bytes at every width
    /// (mod truncation to the field width).
    #[test]
    fn field_values_round_trip(schema in arb_schema(), value in any::<u64>()) {
        let mut db = Database::build(schema).unwrap();
        let tables: Vec<TableId> = db.catalog().tables().map(|t| t.id).collect();
        for table in tables {
            let rec = RecordRef::new(table, 0);
            let field_count = db.catalog().table(table).unwrap().def.fields.len();
            for fi in 0..field_count {
                let fid = FieldId(fi as u16);
                let width = db.catalog().field(table, fid).unwrap().width;
                db.write_field_raw(rec, fid, value).unwrap();
                prop_assert_eq!(
                    db.read_field_raw(rec, fid).unwrap(),
                    value & width.max_value()
                );
            }
        }
    }

    /// Every byte of the region classifies without panicking, and
    /// catalog bytes always classify as static data.
    #[test]
    fn classification_is_total(offset_frac in 0.0f64..1.0, bit in 0u8..8) {
        let db = Database::build(schema::standard_schema()).unwrap();
        let offset = ((db.region_len() - 1) as f64 * offset_frac) as usize;
        let by_offset = db.classify_offset(offset);
        let by_injection = db.classify_injection(offset, bit);
        if offset < db.catalog().catalog_len() {
            prop_assert_eq!(by_offset, TaintKind::StaticData);
            prop_assert_eq!(by_injection, TaintKind::StaticData);
        }
    }

    /// Alloc/free sequences keep the active count and first-free
    /// invariants: alloc returns a previously free slot, free makes it
    /// reusable, and the count matches a reference model.
    #[test]
    fn alloc_free_matches_reference_model(ops in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut db = Database::build(schema::standard_schema_with_slots(8)).unwrap();
        let table = schema::CONNECTION_TABLE;
        let mut model: Vec<u32> = Vec::new(); // allocated indices
        for alloc in ops {
            if alloc {
                match db.alloc_record_raw(table) {
                    Ok(idx) => {
                        prop_assert!(!model.contains(&idx), "slot {idx} double-allocated");
                        model.push(idx);
                    }
                    Err(_) => prop_assert_eq!(model.len(), 8, "full only when model is full"),
                }
            } else if let Some(idx) = model.pop() {
                db.free_record_raw(RecordRef::new(table, idx)).unwrap();
            }
            prop_assert_eq!(db.active_count(table).unwrap() as usize, model.len());
        }
    }

    /// Reloading the full image always restores byte equality with the
    /// golden copy, no matter what was corrupted.
    #[test]
    fn reload_all_is_idempotent_restore(
        flips in prop::collection::vec((any::<prop::sample::Index>(), 0u8..8), 1..64),
    ) {
        let mut db = Database::build(schema::standard_schema()).unwrap();
        let len = db.region_len();
        for (pos, bit) in flips {
            db.flip_bit(pos.index(len), bit).unwrap();
        }
        db.reload_all();
        prop_assert_eq!(db.region(), db.golden());
    }
}

mod api_sequences {
    use proptest::prelude::*;
    use wtnc_db::{schema, Database, DbApi, DbError, FieldId};
    use wtnc_sim::{Pid, SimTime};

    /// One step of a random client workload.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        Alloc(u8),
        Free(u8, u8),
        ReadRec(u8, u8),
        ReadFld(u8, u8, u8),
        WriteFld(u8, u8, u8, u64),
        Move(u8, u8, u8),
        Lock(u8, u8),
        Unlock(u8, u8),
        Close,
        Reconnect,
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u8..3).prop_map(Op::Alloc),
            (0u8..3, any::<u8>()).prop_map(|(t, i)| Op::Free(t, i)),
            (0u8..3, any::<u8>()).prop_map(|(t, i)| Op::ReadRec(t, i)),
            (0u8..3, any::<u8>(), 0u8..8).prop_map(|(t, i, f)| Op::ReadFld(t, i, f)),
            (0u8..3, any::<u8>(), 0u8..8, any::<u64>())
                .prop_map(|(t, i, f, v)| Op::WriteFld(t, i, f, v)),
            (0u8..3, any::<u8>(), any::<u8>()).prop_map(|(t, i, g)| Op::Move(t, i, g)),
            (0u8..3, any::<u8>()).prop_map(|(t, i)| Op::Lock(t, i)),
            (0u8..3, any::<u8>()).prop_map(|(t, i)| Op::Unlock(t, i)),
            Just(Op::Close),
            Just(Op::Reconnect),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arbitrary interleaved API call sequences never panic, never
        /// corrupt catalog validation, and keep the lock table
        /// balanced once every client closes.
        #[test]
        fn random_api_sequences_preserve_invariants(
            ops in prop::collection::vec(arb_op(), 1..120),
        ) {
            let mut db = Database::build(schema::standard_schema_with_slots(6)).unwrap();
            let mut api = DbApi::new();
            let pid = Pid(1);
            api.init(pid);
            let dyn_tables = [
                schema::PROCESS_TABLE,
                schema::CONNECTION_TABLE,
                schema::RESOURCE_TABLE,
            ];
            let now = SimTime::from_secs(1);
            for op in ops {
                // Every operation must return Ok or a *classified*
                // error, never panic.
                let result: Result<(), DbError> = match op {
                    Op::Alloc(t) => api
                        .alloc_record(&mut db, pid, dyn_tables[t as usize], now)
                        .map(|_| ()),
                    Op::Free(t, i) => {
                        api.free_record(&mut db, pid, dyn_tables[t as usize], i as u32, now)
                    }
                    Op::ReadRec(t, i) => api
                        .read_rec(&mut db, pid, dyn_tables[t as usize], i as u32, now)
                        .map(|_| ()),
                    Op::ReadFld(t, i, f) => api
                        .read_fld(&mut db, pid, dyn_tables[t as usize], i as u32, FieldId(f as u16), now)
                        .map(|_| ()),
                    Op::WriteFld(t, i, f, v) => api.write_fld(
                        &mut db,
                        pid,
                        dyn_tables[t as usize],
                        i as u32,
                        FieldId(f as u16),
                        v,
                        now,
                    ),
                    Op::Move(t, i, g) => {
                        api.move_rec(&mut db, pid, dyn_tables[t as usize], i as u32, g, now)
                    }
                    Op::Lock(t, i) => api.lock(
                        wtnc_db::RecordRef::new(dyn_tables[t as usize], i as u32 % 6),
                        pid,
                        now,
                    ),
                    Op::Unlock(t, i) => {
                        api.unlock(
                            wtnc_db::RecordRef::new(dyn_tables[t as usize], i as u32 % 6),
                            pid,
                        );
                        Ok(())
                    }
                    Op::Close => {
                        api.close(pid, now);
                        Ok(())
                    }
                    Op::Reconnect => {
                        api.init_at(pid, now);
                        Ok(())
                    }
                };
                let _ = result;
                // The in-region catalog stays valid under legitimate
                // API traffic (no operation may scribble on it).
                for tm in db.catalog().tables() {
                    prop_assert!(
                        wtnc_db::Catalog::read_region_entry(db.region(), tm.id).is_ok()
                    );
                }
            }
            // After the client closes, no locks remain.
            api.close(pid, SimTime::from_secs(2));
            prop_assert!(api.locks().is_empty());
            // Group chains left by moves stay mutually consistent.
            for &t in &dyn_tables {
                let cap = db.catalog().table(t).unwrap().def.record_count;
                for i in 0..cap {
                    let hdr = db.header(wtnc_db::RecordRef::new(t, i)).unwrap();
                    if hdr.status != wtnc_db::layout::STATUS_ACTIVE {
                        continue;
                    }
                    if hdr.next != wtnc_db::layout::LINK_NONE {
                        let nb = db
                            .header(wtnc_db::RecordRef::new(t, hdr.next as u32))
                            .unwrap();
                        prop_assert_eq!(nb.prev, i as u16, "broken chain in table {}", t.0);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// LockTable reclamation properties
// ---------------------------------------------------------------------------

use wtnc_db::LockTable;
use wtnc_sim::{Pid, SimDuration, SimTime};

proptest! {
    /// Reclaiming a crashed client's locks removes every lock it held
    /// (and only those): afterwards no record reports it as holder,
    /// the returned count matches what it held, and every other
    /// client's locks survive untouched.
    #[test]
    fn release_all_leaves_no_holder_behind(
        grants in proptest::collection::vec((0u32..40, 1u32..5), 1..60),
        victim in 1u32..5,
    ) {
        let mut locks = LockTable::new();
        let table = schema::CONNECTION_TABLE;
        let mut held: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for (i, &(index, pid)) in grants.iter().enumerate() {
            let rec = RecordRef::new(table, index);
            if locks
                .acquire(rec, Pid(pid), SimTime::from_secs(i as u64))
                .is_ok()
            {
                held.entry(index).or_insert(pid);
            }
        }
        let victim_count = held.values().filter(|&&p| p == victim).count();
        let released = locks.release_all(Pid(victim));
        prop_assert_eq!(released, victim_count);
        for (&index, &pid) in &held {
            let holder = locks.holder(RecordRef::new(table, index));
            if pid == victim {
                prop_assert_eq!(holder, None, "record {index} still held by the crashed client");
            } else {
                prop_assert_eq!(holder, Some(Pid(pid)), "bystander lock on {index} lost");
            }
        }
        // Reclaiming again finds nothing.
        prop_assert_eq!(locks.release_all(Pid(victim)), 0);
    }

    /// `stale` reports exactly the locks held longer than the
    /// threshold, sorted by record, and never the fresh ones.
    #[test]
    fn stale_reports_exactly_the_old_locks(
        ages in proptest::collection::vec(0u64..100, 1..30),
        threshold in 0u64..100,
    ) {
        let mut locks = LockTable::new();
        let table = schema::CONNECTION_TABLE;
        let now = SimTime::from_secs(100);
        for (i, &age) in ages.iter().enumerate() {
            let rec = RecordRef::new(table, i as u32);
            locks
                .acquire(rec, Pid(7), SimTime::from_secs(100 - age))
                .unwrap();
        }
        let stale = locks.stale(now, SimDuration::from_secs(threshold));
        let expected: Vec<u32> = ages
            .iter()
            .enumerate()
            .filter(|&(_, &age)| age > threshold)
            .map(|(i, _)| i as u32)
            .collect();
        let got: Vec<u32> = stale.iter().map(|&(r, _, _)| r.index).collect();
        prop_assert_eq!(got, expected, "stale set mismatch at threshold {threshold}");
        for &(rec, pid, since) in &stale {
            prop_assert_eq!(pid, Pid(7));
            prop_assert!(now.saturating_since(since) > SimDuration::from_secs(threshold));
            prop_assert_eq!(locks.holder(rec), Some(pid), "stale lock not actually held");
        }
    }
}
