//! Ground-truth corruption ledger for experiment classification.
//!
//! When the injector flips a bit it records a [`TaintEntry`] here.
//! Detection never consults this map — audits always examine the actual
//! bytes — but classification does: a client API call that reads a
//! tainted byte is an **escaped error** ("a piece of erroneous data
//! that is used by an application process before the audit program can
//! detect it"), a repair that rewrites a tainted byte converts it to
//! **caught**, a client write over a tainted byte makes it
//! **overwritten** (the paper's "no effect" outcome), and anything
//! still tainted at the end of a run is **latent**.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use wtnc_sim::SimTime;

/// What region class a taint landed in, fixed at injection time; this
/// is the row key of the paper's Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaintKind {
    /// Catalog descriptors or a static/config data region.
    StaticData,
    /// A record header.
    Structural,
    /// A dynamic field with a range or semantic rule available.
    DynamicRuled,
    /// A dynamic field with no enforceable rule.
    DynamicUnruled,
    /// Padding or a free record slot (cannot affect the application
    /// unless the slot is later allocated).
    Slack,
}

/// One injected corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaintEntry {
    /// Identifier assigned by the injector.
    pub id: u64,
    /// When the bit was flipped.
    pub at: SimTime,
    /// Region classification at the injection site.
    pub kind: TaintKind,
}

/// Resolution of a taint, recorded when it leaves the map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaintFate {
    /// An audit element repaired the bytes.
    Caught {
        /// When the repair happened.
        at: SimTime,
    },
    /// The client consumed the corrupted bytes first.
    Escaped {
        /// When the client read the bytes.
        at: SimTime,
    },
    /// A legitimate client write replaced the corrupted bytes.
    Overwritten {
        /// When the overwrite happened.
        at: SimTime,
    },
}

/// Byte-offset → taint map over the database region.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TaintMap {
    by_offset: BTreeMap<usize, TaintEntry>,
    resolved: Vec<(usize, TaintEntry, TaintFate)>,
}

impl TaintMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a fresh taint at `offset`. If the offset was already
    /// tainted the older entry is superseded — the new flip determines
    /// the byte's content — and resolved as overwritten so every
    /// injected error keeps exactly one fate. Returns the superseded
    /// entry, if any.
    pub fn insert(&mut self, offset: usize, entry: TaintEntry) -> Option<TaintEntry> {
        let old = self.by_offset.insert(offset, entry);
        if let Some(old) = old {
            self.resolved.push((offset, old, TaintFate::Overwritten { at: entry.at }));
        }
        old
    }

    /// Taints overlapping `[offset, offset + len)`, in offset order.
    pub fn overlapping(&self, offset: usize, len: usize) -> Vec<(usize, TaintEntry)> {
        self.by_offset.range(offset..offset + len.max(1)).map(|(&o, &e)| (o, e)).collect()
    }

    /// Resolves every taint overlapping the range with `fate`,
    /// returning the resolved entries.
    pub fn resolve_range(&mut self, offset: usize, len: usize, fate: TaintFate) -> Vec<TaintEntry> {
        let hits: Vec<usize> =
            self.by_offset.range(offset..offset + len.max(1)).map(|(&o, _)| o).collect();
        let mut out = Vec::with_capacity(hits.len());
        for o in hits {
            if let Some(entry) = self.by_offset.remove(&o) {
                self.resolved.push((o, entry, fate));
                out.push(entry);
            }
        }
        out
    }

    /// Number of unresolved (latent) taints.
    pub fn latent_count(&self) -> usize {
        self.by_offset.len()
    }

    /// Iterates over unresolved taints.
    pub fn latent(&self) -> impl Iterator<Item = (usize, TaintEntry)> + '_ {
        self.by_offset.iter().map(|(&o, &e)| (o, e))
    }

    /// Every resolved taint — `(offset, entry, fate)` — in resolution
    /// order.
    pub fn resolved(&self) -> &[(usize, TaintEntry, TaintFate)] {
        &self.resolved
    }

    /// Drops all state (between runs).
    pub fn clear(&mut self) {
        self.by_offset.clear();
        self.resolved.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64) -> TaintEntry {
        TaintEntry { id, at: SimTime::from_secs(id), kind: TaintKind::DynamicRuled }
    }

    #[test]
    fn insert_and_overlap_query() {
        let mut map = TaintMap::new();
        map.insert(10, entry(1));
        map.insert(20, entry(2));
        assert_eq!(map.overlapping(0, 100).len(), 2);
        assert_eq!(map.overlapping(10, 1).len(), 1);
        assert_eq!(map.overlapping(11, 9).len(), 0);
        assert_eq!(map.overlapping(15, 6).len(), 1);
        assert_eq!(map.latent_count(), 2);
    }

    #[test]
    fn resolve_removes_and_records_fate() {
        let mut map = TaintMap::new();
        map.insert(10, entry(1));
        map.insert(12, entry(2));
        map.insert(50, entry(3));
        let caught = map.resolve_range(8, 8, TaintFate::Caught { at: SimTime::from_secs(9) });
        assert_eq!(caught.len(), 2);
        assert_eq!(map.latent_count(), 1);
        assert_eq!(map.resolved().len(), 2);
        // Re-resolving the same range is a no-op.
        assert!(map
            .resolve_range(8, 8, TaintFate::Caught { at: SimTime::from_secs(9) })
            .is_empty());
    }

    #[test]
    fn newer_taint_supersedes_older() {
        let mut map = TaintMap::new();
        assert_eq!(map.insert(10, entry(1)), None);
        let old = map.insert(10, entry(2));
        assert_eq!(old.map(|e| e.id), Some(1));
        assert_eq!(map.latent_count(), 1);
        let hits = map.overlapping(10, 1);
        assert_eq!(hits[0].1.id, 2);
        // The superseded entry keeps a fate (overwritten by the new
        // flip), so accounting stays complete.
        assert_eq!(map.resolved().len(), 1);
        assert!(matches!(map.resolved()[0].2, TaintFate::Overwritten { .. }));
    }

    #[test]
    fn zero_length_queries_behave() {
        let mut map = TaintMap::new();
        map.insert(5, entry(1));
        // len 0 is treated as len 1 to keep point queries ergonomic.
        assert_eq!(map.overlapping(5, 0).len(), 1);
        map.clear();
        assert_eq!(map.latent_count(), 0);
        assert!(map.resolved().is_empty());
    }
}
