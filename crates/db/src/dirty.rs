//! Dirty-block tracking for incremental audits.
//!
//! The region is partitioned into fixed-size blocks; every mutation
//! path through [`Database`](crate::Database) marks the blocks it
//! touches. Audit elements re-checksum only dirty blocks and clear the
//! bits once a block has been *verified* clean (or repaired), so the
//! bitmap is a conservative over-approximation of "bytes that may
//! differ from the last verified state": a clean bit is a proof, a
//! dirty bit is merely a hint to look.
//!
//! Clearing is deliberately restricted to blocks **fully contained** in
//! the verified range ([`DirtyTracker::clear_contained`]): a boundary
//! block shared with an unverified neighbor stays dirty, trading a
//! little recompute for a simple correctness argument.

/// Default dirty-block granularity in bytes.
///
/// 256 B keeps the bitmap tiny (one bit per block) while making a
/// single-field write dirty at most two blocks.
pub const DIRTY_BLOCK_SIZE: usize = 256;

/// A per-block dirty bitmap over a byte region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirtyTracker {
    block_size: usize,
    n_blocks: usize,
    words: Vec<u64>,
}

impl DirtyTracker {
    /// Creates a tracker for a region of `region_len` bytes cut into
    /// `block_size`-byte blocks (the last block may be short). All
    /// blocks start clean.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(region_len: usize, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        let n_blocks = region_len.div_ceil(block_size);
        DirtyTracker { block_size, n_blocks, words: vec![0u64; n_blocks.div_ceil(64)] }
    }

    /// The block granularity in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Total number of blocks in the region.
    pub fn n_blocks(&self) -> usize {
        self.n_blocks
    }

    /// Block index containing byte `offset`.
    pub fn block_of(&self, offset: usize) -> usize {
        offset / self.block_size
    }

    /// Half-open block-index range `[first, last)` overlapping the byte
    /// range `[offset, offset + len)`, clamped to the region.
    fn overlapping(&self, offset: usize, len: usize) -> (usize, usize) {
        if len == 0 {
            return (0, 0);
        }
        let first = (offset / self.block_size).min(self.n_blocks);
        let last = (offset.saturating_add(len)).div_ceil(self.block_size).min(self.n_blocks);
        (first, last)
    }

    /// Marks every block overlapping `[offset, offset + len)` dirty.
    pub fn mark_range(&mut self, offset: usize, len: usize) {
        let (first, last) = self.overlapping(offset, len);
        for b in first..last {
            self.words[b / 64] |= 1u64 << (b % 64);
        }
    }

    /// Clears blocks **fully contained** in `[offset, offset + len)`.
    /// Boundary blocks only partially covered stay dirty: the caller
    /// has only verified part of their bytes.
    pub fn clear_contained(&mut self, offset: usize, len: usize) {
        if len == 0 {
            return;
        }
        let end = offset.saturating_add(len);
        let first = offset.div_ceil(self.block_size);
        // Blocks are treated as nominally full-size: to clear a short
        // final block, pass a range reaching `n_blocks * block_size`.
        let last = (end / self.block_size).min(self.n_blocks);
        for b in first..last {
            self.words[b / 64] &= !(1u64 << (b % 64));
        }
    }

    /// True if block `b` is dirty.
    pub fn is_dirty(&self, b: usize) -> bool {
        b < self.n_blocks && self.words[b / 64] & (1u64 << (b % 64)) != 0
    }

    /// True if any block overlapping `[offset, offset + len)` is dirty.
    pub fn any_dirty_in(&self, offset: usize, len: usize) -> bool {
        let (first, last) = self.overlapping(offset, len);
        (first..last).any(|b| self.is_dirty(b))
    }

    /// Number of dirty blocks overlapping `[offset, offset + len)`.
    pub fn count_dirty_in(&self, offset: usize, len: usize) -> usize {
        let (first, last) = self.overlapping(offset, len);
        (first..last).filter(|&b| self.is_dirty(b)).count()
    }

    /// Number of blocks overlapping `[offset, offset + len)`.
    pub fn count_blocks_in(&self, offset: usize, len: usize) -> usize {
        let (first, last) = self.overlapping(offset, len);
        last - first
    }

    /// Total number of dirty blocks.
    pub fn dirty_count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Marks every block dirty.
    pub fn mark_all(&mut self) {
        self.mark_range(0, self.n_blocks * self.block_size);
    }

    /// Clears every block.
    pub fn clear_all(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_query() {
        let mut t = DirtyTracker::new(1024, 256);
        assert_eq!(t.n_blocks(), 4);
        assert_eq!(t.dirty_count(), 0);
        t.mark_range(300, 10); // inside block 1
        assert!(t.is_dirty(1));
        assert!(!t.is_dirty(0));
        assert!(t.any_dirty_in(0, 1024));
        assert!(!t.any_dirty_in(512, 512));
        assert_eq!(t.dirty_count(), 1);
    }

    #[test]
    fn straddling_write_marks_both_blocks() {
        let mut t = DirtyTracker::new(1024, 256);
        t.mark_range(254, 4);
        assert!(t.is_dirty(0));
        assert!(t.is_dirty(1));
        assert_eq!(t.dirty_count(), 2);
    }

    #[test]
    fn clear_contained_spares_boundary_blocks() {
        let mut t = DirtyTracker::new(1024, 256);
        t.mark_all();
        // Verified [100, 768): blocks 1 and 2 are fully contained,
        // block 0 only partially, block 3 not at all.
        t.clear_contained(100, 668);
        assert!(t.is_dirty(0));
        assert!(!t.is_dirty(1));
        assert!(!t.is_dirty(2));
        assert!(t.is_dirty(3));
    }

    #[test]
    fn clear_contained_aligned_range_clears_exactly() {
        let mut t = DirtyTracker::new(1024, 256);
        t.mark_all();
        t.clear_contained(256, 512);
        assert!(t.is_dirty(0));
        assert!(!t.is_dirty(1));
        assert!(!t.is_dirty(2));
        assert!(t.is_dirty(3));
        t.clear_contained(0, 1024);
        assert_eq!(t.dirty_count(), 0);
    }

    #[test]
    fn short_final_block_is_clearable() {
        // 1000-byte region: block 3 covers [768, 1000).
        let mut t = DirtyTracker::new(1000, 256);
        assert_eq!(t.n_blocks(), 4);
        t.mark_all();
        t.clear_contained(0, 1000);
        assert_eq!(t.dirty_count(), 1, "short tail block needs the full ceil range");
        t.clear_contained(768, 256);
        assert_eq!(t.dirty_count(), 0);
    }

    #[test]
    fn zero_len_is_noop() {
        let mut t = DirtyTracker::new(1024, 256);
        t.mark_range(100, 0);
        assert_eq!(t.dirty_count(), 0);
        t.mark_all();
        t.clear_contained(100, 0);
        assert_eq!(t.dirty_count(), 4);
    }

    #[test]
    fn out_of_range_marks_clamp() {
        let mut t = DirtyTracker::new(1024, 256);
        t.mark_range(2000, 50);
        assert_eq!(t.dirty_count(), 0);
        t.mark_range(1000, 5000);
        assert_eq!(t.dirty_count(), 1);
        assert!(t.is_dirty(3));
    }

    #[test]
    fn count_helpers() {
        let mut t = DirtyTracker::new(1024, 256);
        t.mark_range(0, 300);
        assert_eq!(t.count_dirty_in(0, 1024), 2);
        assert_eq!(t.count_blocks_in(0, 1024), 4);
        assert_eq!(t.count_dirty_in(512, 512), 0);
    }
}
