//! The client-facing database API (`DBinit` … `DBmove`).
//!
//! This is the "modified" API of the paper: besides performing the
//! requested operation it (a) maintains and manipulates record locks
//! transparently, (b) sends a message to the audit process on every
//! call (the event channel of Figure 1), and (c) maintains the shadow
//! metadata — last writer, last access time, access counters — that the
//! audit's diagnosis and prioritization rely on. All of that costs
//! time, which is exactly what the paper's Figure 4 measures; the
//! instrumentation can be disabled to obtain the "original" API.
//!
//! Unlike the audit (which holds trusted layout knowledge), the API
//! validates and uses the **in-region system catalog** on every call,
//! so catalog corruption genuinely breaks client operations.

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};
use wtnc_sim::{Enqueue, FairQueue, Pid, SimDuration, SimTime};

use crate::catalog::{Catalog, FieldId, TableId};
use crate::database::{Database, RecordRef};
use crate::error::DbError;
use crate::events::{DbEvent, DbOp};
use crate::layout::{
    read_le, write_le, HDR_GROUP, HDR_NEXT, HDR_PREV, HDR_STATUS, LINK_NONE, STATUS_ACTIVE,
};
use crate::taint::TaintFate;

/// Simulated execution cost of each API primitive: the base cost of
/// the original function plus the fractional overhead added by the
/// audit instrumentation. Defaults approximate the paper's Figure 4
/// (microseconds on a Sun UltraSPARC-2; only relative magnitudes
/// matter).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApiCosts {
    /// Base cost of `DBinit` and its instrumentation overhead fraction.
    pub init: (SimDuration, f64),
    /// Base cost of `DBclose`.
    pub close: (SimDuration, f64),
    /// Base cost of `DBread_rec`.
    pub read_rec: (SimDuration, f64),
    /// Base cost of `DBread_fld`.
    pub read_fld: (SimDuration, f64),
    /// Base cost of `DBwrite_rec`.
    pub write_rec: (SimDuration, f64),
    /// Base cost of `DBwrite_fld`.
    pub write_fld: (SimDuration, f64),
    /// Base cost of `DBmove`.
    pub mov: (SimDuration, f64),
}

impl Default for ApiCosts {
    fn default() -> Self {
        let us = SimDuration::from_micros;
        ApiCosts {
            init: (us(620), 0.065),
            close: (us(155), 0.191),
            read_rec: (us(150), 0.105),
            read_fld: (us(110), 0.103),
            write_rec: (us(310), 0.452),
            write_fld: (us(235), 0.294),
            mov: (us(210), 0.258),
        }
    }
}

impl ApiCosts {
    /// Cost of one invocation of `op`, with or without the audit
    /// instrumentation.
    pub fn cost(&self, op: DbOp, instrumented: bool) -> SimDuration {
        let (base, ovh) = match op {
            DbOp::Init => self.init,
            DbOp::Close => self.close,
            DbOp::ReadRec => self.read_rec,
            DbOp::ReadFld => self.read_fld,
            DbOp::WriteRec | DbOp::Alloc | DbOp::Free => self.write_rec,
            DbOp::WriteFld => self.write_fld,
            DbOp::Move => self.mov,
        };
        if instrumented {
            SimDuration::from_secs_f64(base.as_secs_f64() * (1.0 + ovh))
        } else {
            base
        }
    }
}

/// The record-lock table the API manages transparently for its
/// clients. Locks are keyed by record and owned by a client process;
/// the acquisition time supports the progress indicator's stale-lock
/// recovery.
#[derive(Debug, Clone, Default)]
pub struct LockTable {
    locks: HashMap<(TableId, u32), (Pid, SimTime)>,
}

impl LockTable {
    /// Creates an empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires the lock on `rec` for `pid` (re-entrant for the same
    /// owner).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::LockHeld`] if another client holds it.
    pub fn acquire(&mut self, rec: RecordRef, pid: Pid, now: SimTime) -> Result<(), DbError> {
        match self.locks.get(&(rec.table, rec.index)) {
            Some(&(holder, _)) if holder != pid => {
                Err(DbError::LockHeld { table: rec.table, index: rec.index, holder })
            }
            Some(_) => Ok(()),
            None => {
                self.locks.insert((rec.table, rec.index), (pid, now));
                Ok(())
            }
        }
    }

    /// Releases the lock on `rec` if `pid` holds it. Returns whether a
    /// lock was released.
    pub fn release(&mut self, rec: RecordRef, pid: Pid) -> bool {
        match self.locks.get(&(rec.table, rec.index)) {
            Some(&(holder, _)) if holder == pid => {
                self.locks.remove(&(rec.table, rec.index));
                true
            }
            _ => false,
        }
    }

    /// Releases every lock held by `pid` (client exit or recovery
    /// action), returning how many were released.
    pub fn release_all(&mut self, pid: Pid) -> usize {
        let before = self.locks.len();
        self.locks.retain(|_, &mut (holder, _)| holder != pid);
        before - self.locks.len()
    }

    /// Current holder of the lock on `rec`.
    pub fn holder(&self, rec: RecordRef) -> Option<Pid> {
        self.locks.get(&(rec.table, rec.index)).map(|&(p, _)| p)
    }

    /// Locks held longer than `threshold` as of `now`: the candidates
    /// for progress-indicator recovery.
    pub fn stale(&self, now: SimTime, threshold: SimDuration) -> Vec<(RecordRef, Pid, SimTime)> {
        let mut out: Vec<_> = self
            .locks
            .iter()
            .filter(|&(_, &(_, since))| now.saturating_since(since) > threshold)
            .map(|(&(t, i), &(p, since))| (RecordRef::new(t, i), p, since))
            .collect();
        out.sort_by_key(|&(r, _, _)| (r.table, r.index));
        out
    }

    /// Every held lock, sorted by `(table, index)`. The parallel audit
    /// executor snapshots this set at cycle start: locks cannot change
    /// while the audit elements run, so membership here is exactly the
    /// serial elements' `holder(..).is_some()` test.
    pub fn held(&self) -> Vec<(RecordRef, Pid)> {
        let mut out: Vec<_> =
            self.locks.iter().map(|(&(t, i), &(p, _))| (RecordRef::new(t, i), p)).collect();
        out.sort_by_key(|&(r, _)| (r.table, r.index));
        out
    }

    /// Every lock held by `pid`, sorted by `(table, index)`. The
    /// supervision tier uses this to report exactly which locks it is
    /// about to steal from a condemned client before `release_all`.
    pub fn held_by(&self, pid: Pid) -> Vec<RecordRef> {
        let mut out: Vec<_> = self
            .locks
            .iter()
            .filter(|&(_, &(holder, _))| holder == pid)
            .map(|(&(t, i), _)| RecordRef::new(t, i))
            .collect();
        out.sort_by_key(|&r| (r.table, r.index));
        out
    }

    /// Number of held locks.
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// True when no locks are held.
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }
}

/// Sizing of the IPC event queue between the database API and the
/// audit process.
///
/// The queue is a [`FairQueue`]: `capacity` bounds the total backlog
/// the audit process can ever face, and `lane_capacity` bounds any one
/// client's share of it, so a super-producer saturates only its own
/// lane. Producers rejected by global congestion are told to retry
/// after `retry_after`.
///
/// Both capacities must be non-zero: the underlying queue constructors
/// (like [`wtnc_sim::MessageQueue::with_capacity`]) **panic** on a
/// zero capacity rather than silently misbehave as an always-full or
/// always-dropping queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IpcConfig {
    /// Total undelivered-event bound across all producers.
    pub capacity: usize,
    /// Per-producer bound (a single client's maximum share).
    pub lane_capacity: usize,
    /// Retry delay suggested to backpressured producers.
    pub retry_after: SimDuration,
}

impl Default for IpcConfig {
    fn default() -> Self {
        // The historical queue size, now split into four fair lanes.
        IpcConfig {
            capacity: 65_536,
            lane_capacity: 16_384,
            retry_after: SimDuration::from_millis(10),
        }
    }
}

/// The database API instance shared by all clients of one controller
/// node.
#[derive(Debug)]
pub struct DbApi {
    connections: BTreeSet<Pid>,
    locks: LockTable,
    events: FairQueue<DbEvent>,
    costs: ApiCosts,
    instrumented: bool,
    cost_accum: SimDuration,
    ops_performed: u64,
}

impl Default for DbApi {
    fn default() -> Self {
        Self::new()
    }
}

impl DbApi {
    /// Creates an API instance with audit instrumentation enabled,
    /// default costs and the default event-queue sizing.
    pub fn new() -> Self {
        Self::with_ipc(IpcConfig::default())
    }

    /// Creates an API instance with an explicit event-queue sizing.
    ///
    /// # Panics
    ///
    /// Panics if `ipc.capacity` or `ipc.lane_capacity` is zero (see
    /// [`IpcConfig`]).
    pub fn with_ipc(ipc: IpcConfig) -> Self {
        DbApi {
            connections: BTreeSet::new(),
            locks: LockTable::new(),
            events: FairQueue::new(ipc.capacity, ipc.lane_capacity, ipc.retry_after),
            costs: ApiCosts::default(),
            instrumented: true,
            cost_accum: SimDuration::ZERO,
            ops_performed: 0,
        }
    }

    /// Creates an API instance with the given total event-queue
    /// capacity, keeping the default 4-lane fairness split.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (see [`IpcConfig`]).
    pub fn with_event_capacity(capacity: usize) -> Self {
        Self::with_ipc(IpcConfig {
            capacity,
            lane_capacity: (capacity / 4).max(1),
            ..IpcConfig::default()
        })
    }

    /// Creates the "original" API with all audit instrumentation
    /// disabled (no events, no shadow metadata, base costs).
    pub fn without_instrumentation() -> Self {
        let mut api = Self::new();
        api.instrumented = false;
        api
    }

    /// Overrides the cost model.
    pub fn set_costs(&mut self, costs: ApiCosts) {
        self.costs = costs;
    }

    /// Whether audit instrumentation is active.
    pub fn is_instrumented(&self) -> bool {
        self.instrumented
    }

    /// The event queue towards the audit process. The audit main
    /// thread drains this.
    pub fn events_mut(&mut self) -> &mut FairQueue<DbEvent> {
        &mut self.events
    }

    /// Read-only view of the event queue. A supervision tier taps the
    /// pending traffic through this without stealing messages from the
    /// audit process, which remains the queue's consumer.
    pub fn events(&self) -> &FairQueue<DbEvent> {
        &self.events
    }

    /// Posts a raw event on behalf of a client, returning the explicit
    /// [`Enqueue`] verdict. This is the client-visible IPC path: a
    /// flooding client sees `Shed` once its own lane is full and
    /// `Backpressure` when the queue as a whole is congested, and the
    /// caller decides whether to retry. Internal API notifications use
    /// the same queue, so its drop/shed accounting covers both paths.
    pub fn post_event(
        &mut self,
        pid: Pid,
        op: DbOp,
        table: Option<TableId>,
        record: Option<u32>,
        at: SimTime,
    ) -> Enqueue {
        self.events.try_send(pid, DbEvent { at, pid, op, table, record })
    }

    /// Events shed at a producer's lane bound since construction.
    pub fn events_shed(&self) -> u64 {
        self.events.shed()
    }

    /// Enqueue attempts rejected with a retry hint since construction.
    pub fn events_backpressured(&self) -> u64 {
        self.events.backpressured()
    }

    /// The lock table (progress indicator reads it; recovery releases
    /// through it).
    pub fn locks(&self) -> &LockTable {
        &self.locks
    }

    /// Mutable lock table access for recovery actions.
    pub fn locks_mut(&mut self) -> &mut LockTable {
        &mut self.locks
    }

    /// Simulated execution time consumed by API calls since the last
    /// [`DbApi::take_cost`].
    pub fn take_cost(&mut self) -> SimDuration {
        std::mem::take(&mut self.cost_accum)
    }

    /// Total operations performed (successful or not) since creation.
    pub fn ops_performed(&self) -> u64 {
        self.ops_performed
    }

    fn charge(&mut self, op: DbOp) {
        self.cost_accum += self.costs.cost(op, self.instrumented);
        self.ops_performed += 1;
    }

    fn notify(
        &mut self,
        pid: Pid,
        op: DbOp,
        table: Option<TableId>,
        record: Option<u32>,
        at: SimTime,
    ) {
        if self.instrumented {
            // The fair queue accounts for every rejected event (shed
            // or backpressured), so nothing is lost silently even when
            // a storm saturates the audit IPC path.
            let _ = self.events.try_send(pid, DbEvent { at, pid, op, table, record });
        }
    }

    fn require_connection(&self, pid: Pid) -> Result<(), DbError> {
        if self.connections.contains(&pid) {
            Ok(())
        } else {
            Err(DbError::NotConnected(pid))
        }
    }

    /// `DBinit`: opens a client connection.
    pub fn init(&mut self, pid: Pid) {
        self.charge(DbOp::Init);
        self.connections.insert(pid);
        self.notify(pid, DbOp::Init, None, None, SimTime::ZERO);
    }

    /// `DBinit` at a known simulation time.
    pub fn init_at(&mut self, pid: Pid, at: SimTime) {
        self.charge(DbOp::Init);
        self.connections.insert(pid);
        self.notify(pid, DbOp::Init, None, None, at);
    }

    /// `DBclose`: closes a client connection and releases its locks.
    pub fn close(&mut self, pid: Pid, at: SimTime) {
        self.charge(DbOp::Close);
        self.connections.remove(&pid);
        self.locks.release_all(pid);
        self.notify(pid, DbOp::Close, None, None, at);
    }

    /// Simulates a client that terminates prematurely **without**
    /// committing: the connection vanishes but its locks stay behind —
    /// the deadlock scenario the progress indicator exists to resolve.
    pub fn crash_client(&mut self, pid: Pid) {
        self.connections.remove(&pid);
        // Locks intentionally not released.
    }

    /// Validates the in-region catalog entry for `table`, resolving any
    /// consumed taints (a client that trips over corrupted catalog
    /// bytes has been affected by the error).
    fn region_entry(
        &mut self,
        db: &mut Database,
        table: TableId,
        at: SimTime,
    ) -> Result<crate::catalog::RegionTableEntry, DbError> {
        let res = Catalog::read_region_entry(db.region(), table);
        if res.is_err() {
            // The failed validation *consumed* corrupted catalog bytes:
            // mark the bytes it actually examined — the catalog header
            // plus this table's descriptors — as escaped. Corruption in
            // unexamined catalog bytes (other tables, range metadata)
            // stays latent for the static-data audit to catch.
            db.taint_mut().resolve_range(
                0,
                crate::layout::CATALOG_HEADER_SIZE,
                TaintFate::Escaped { at },
            );
            if let Ok(tm) = db.catalog().table(table) {
                let (d, fd, nf) = (tm.desc_offset, tm.field_desc_offset, tm.def.fields.len());
                db.taint_mut().resolve_range(
                    d,
                    crate::layout::TABLE_DESC_SIZE,
                    TaintFate::Escaped { at },
                );
                db.taint_mut().resolve_range(
                    fd,
                    nf * crate::layout::FIELD_DESC_SIZE,
                    TaintFate::Escaped { at },
                );
            }
        }
        res
    }

    fn record_base(
        entry: &crate::catalog::RegionTableEntry,
        table: TableId,
        index: u32,
    ) -> Result<usize, DbError> {
        if index >= entry.record_count {
            return Err(DbError::BadRecordIndex { table, index, capacity: entry.record_count });
        }
        Ok(entry.offset + entry.record_size * index as usize)
    }

    fn require_active(
        &mut self,
        db: &mut Database,
        table: TableId,
        index: u32,
        base: usize,
        at: SimTime,
    ) -> Result<(), DbError> {
        let status = db.peek(base + HDR_STATUS, 1)?[0];
        if status != STATUS_ACTIVE {
            // A corrupted status byte that makes an active record look
            // free has now affected the client; only the status byte
            // was consulted.
            db.taint_mut().resolve_range(base + HDR_STATUS, 1, TaintFate::Escaped { at });
            return Err(DbError::RecordFree(table, index));
        }
        Ok(())
    }

    /// `DBread_rec`: reads every field of an active record.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::NotConnected`], [`DbError::CatalogCorrupt`],
    /// [`DbError::BadRecordIndex`], [`DbError::RecordFree`],
    /// [`DbError::LockHeld`] or [`DbError::OutOfBounds`].
    pub fn read_rec(
        &mut self,
        db: &mut Database,
        pid: Pid,
        table: TableId,
        index: u32,
        at: SimTime,
    ) -> Result<Vec<u64>, DbError> {
        self.charge(DbOp::ReadRec);
        self.require_connection(pid)?;
        let entry = self.region_entry(db, table, at)?;
        let base = Self::record_base(&entry, table, index)?;
        if let Some(holder) = self.locks.holder(RecordRef::new(table, index)) {
            if holder != pid {
                return Err(DbError::LockHeld { table, index, holder });
            }
        }
        self.require_active(db, table, index, base, at)?;
        let mut values = Vec::with_capacity(entry.field_count);
        for fi in 0..entry.field_count {
            let f = Catalog::read_region_field(db.region(), table, &entry, FieldId(fi as u16))?;
            let bytes = db.peek(base + f.offset_in_record, f.width.bytes())?;
            values.push(read_le(bytes, f.width.bytes()));
        }
        // The whole record (header + data) has been consumed.
        db.taint_mut().resolve_range(base, entry.record_size, TaintFate::Escaped { at });
        if self.instrumented {
            db.note_access(RecordRef::new(table, index), pid, at, false);
        }
        self.notify(pid, DbOp::ReadRec, Some(table), Some(index), at);
        Ok(values)
    }

    /// `DBread_fld`: reads one field of an active record.
    ///
    /// # Errors
    ///
    /// As for [`DbApi::read_rec`], plus [`DbError::UnknownField`].
    pub fn read_fld(
        &mut self,
        db: &mut Database,
        pid: Pid,
        table: TableId,
        index: u32,
        field: FieldId,
        at: SimTime,
    ) -> Result<u64, DbError> {
        self.charge(DbOp::ReadFld);
        self.require_connection(pid)?;
        let entry = self.region_entry(db, table, at)?;
        let base = Self::record_base(&entry, table, index)?;
        if let Some(holder) = self.locks.holder(RecordRef::new(table, index)) {
            if holder != pid {
                return Err(DbError::LockHeld { table, index, holder });
            }
        }
        self.require_active(db, table, index, base, at)?;
        let f = Catalog::read_region_field(db.region(), table, &entry, field)?;
        let bytes = db.peek(base + f.offset_in_record, f.width.bytes())?;
        let value = read_le(bytes, f.width.bytes());
        db.taint_mut().resolve_range(
            base + f.offset_in_record,
            f.width.bytes(),
            TaintFate::Escaped { at },
        );
        // Consulting the status byte consumed the header too.
        db.taint_mut().resolve_range(base + HDR_STATUS, 1, TaintFate::Escaped { at });
        if self.instrumented {
            db.note_access(RecordRef::new(table, index), pid, at, false);
        }
        self.notify(pid, DbOp::ReadFld, Some(table), Some(index), at);
        Ok(value)
    }

    /// `DBwrite_rec`: writes every field of an active record.
    ///
    /// # Errors
    ///
    /// As for [`DbApi::read_rec`]; additionally the value slice must
    /// have one entry per field or [`DbError::BadSchema`] is returned.
    pub fn write_rec(
        &mut self,
        db: &mut Database,
        pid: Pid,
        table: TableId,
        index: u32,
        values: &[u64],
        at: SimTime,
    ) -> Result<(), DbError> {
        self.charge(DbOp::WriteRec);
        self.require_connection(pid)?;
        let entry = self.region_entry(db, table, at)?;
        let base = Self::record_base(&entry, table, index)?;
        if values.len() != entry.field_count {
            return Err(DbError::BadSchema(format!(
                "write_rec got {} values for {} fields",
                values.len(),
                entry.field_count
            )));
        }
        let rec = RecordRef::new(table, index);
        let held_before = self.locks.holder(rec) == Some(pid);
        self.locks.acquire(rec, pid, at)?;
        let result = (|| {
            self.require_active(db, table, index, base, at)?;
            for (fi, &v) in values.iter().enumerate() {
                let f = Catalog::read_region_field(db.region(), table, &entry, FieldId(fi as u16))?;
                let (off, w) = (base + f.offset_in_record, f.width.bytes());
                // Legitimate data replaces corrupted data.
                db.taint_mut().resolve_range(off, w, TaintFate::Overwritten { at });
                let mut buf = [0u8; 8];
                write_le(&mut buf, w, v);
                db.poke(off, &buf[..w])?;
            }
            Ok(())
        })();
        if !held_before {
            self.locks.release(rec, pid);
        }
        result?;
        if self.instrumented {
            db.note_access(rec, pid, at, true);
        }
        self.notify(pid, DbOp::WriteRec, Some(table), Some(index), at);
        Ok(())
    }

    /// `DBwrite_fld`: writes one field of an active record.
    ///
    /// # Errors
    ///
    /// As for [`DbApi::read_fld`].
    #[allow(clippy::too_many_arguments)]
    pub fn write_fld(
        &mut self,
        db: &mut Database,
        pid: Pid,
        table: TableId,
        index: u32,
        field: FieldId,
        value: u64,
        at: SimTime,
    ) -> Result<(), DbError> {
        self.charge(DbOp::WriteFld);
        self.require_connection(pid)?;
        let entry = self.region_entry(db, table, at)?;
        let base = Self::record_base(&entry, table, index)?;
        let rec = RecordRef::new(table, index);
        let held_before = self.locks.holder(rec) == Some(pid);
        self.locks.acquire(rec, pid, at)?;
        let result = (|| {
            self.require_active(db, table, index, base, at)?;
            let f = Catalog::read_region_field(db.region(), table, &entry, field)?;
            let (off, w) = (base + f.offset_in_record, f.width.bytes());
            db.taint_mut().resolve_range(off, w, TaintFate::Overwritten { at });
            let mut buf = [0u8; 8];
            write_le(&mut buf, w, value);
            db.poke(off, &buf[..w])?;
            Ok(())
        })();
        if !held_before {
            self.locks.release(rec, pid);
        }
        result?;
        if self.instrumented {
            db.note_access(rec, pid, at, true);
        }
        self.notify(pid, DbOp::WriteFld, Some(table), Some(index), at);
        Ok(())
    }

    /// `DBmove`: moves an active record to another logical group,
    /// relinking the doubly linked neighbour chain.
    ///
    /// # Errors
    ///
    /// As for [`DbApi::read_rec`].
    pub fn move_rec(
        &mut self,
        db: &mut Database,
        pid: Pid,
        table: TableId,
        index: u32,
        new_group: u8,
        at: SimTime,
    ) -> Result<(), DbError> {
        self.charge(DbOp::Move);
        self.require_connection(pid)?;
        let entry = self.region_entry(db, table, at)?;
        let base = Self::record_base(&entry, table, index)?;
        let rec = RecordRef::new(table, index);
        let held_before = self.locks.holder(rec) == Some(pid);
        self.locks.acquire(rec, pid, at)?;
        let result = (|| {
            self.require_active(db, table, index, base, at)?;
            // Unlink from the old chain.
            let next = read_le(db.peek(base + HDR_NEXT, 2)?, 2) as u16;
            let prev = read_le(db.peek(base + HDR_PREV, 2)?, 2) as u16;
            if next != LINK_NONE && (next as u32) < entry.record_count {
                let nb = entry.offset + entry.record_size * next as usize;
                let mut buf = [0u8; 2];
                write_le(&mut buf, 2, prev as u64);
                db.poke(nb + HDR_PREV, &buf)?;
            }
            if prev != LINK_NONE && (prev as u32) < entry.record_count {
                let pb = entry.offset + entry.record_size * prev as usize;
                let mut buf = [0u8; 2];
                write_le(&mut buf, 2, next as u64);
                db.poke(pb + HDR_NEXT, &buf)?;
            }
            // Find the head of the target group to insert before.
            let mut head: Option<u32> = None;
            for i in 0..entry.record_count {
                if i == index {
                    continue;
                }
                let b = entry.offset + entry.record_size * i as usize;
                if db.peek(b + HDR_STATUS, 1)?[0] == STATUS_ACTIVE
                    && db.peek(b + HDR_GROUP, 1)?[0] == new_group
                {
                    head = Some(i);
                    break;
                }
            }
            let mut buf = [0u8; 2];
            match head {
                Some(h) => {
                    let hb = entry.offset + entry.record_size * h as usize;
                    let h_prev = read_le(db.peek(hb + HDR_PREV, 2)?, 2) as u16;
                    // Insert `index` between h's predecessor and h.
                    write_le(&mut buf, 2, h as u64);
                    db.poke(base + HDR_NEXT, &buf)?;
                    write_le(&mut buf, 2, h_prev as u64);
                    db.poke(base + HDR_PREV, &buf)?;
                    write_le(&mut buf, 2, index as u64);
                    db.poke(hb + HDR_PREV, &buf)?;
                    if h_prev != LINK_NONE && (h_prev as u32) < entry.record_count {
                        let qb = entry.offset + entry.record_size * h_prev as usize;
                        write_le(&mut buf, 2, index as u64);
                        db.poke(qb + HDR_NEXT, &buf)?;
                    }
                }
                None => {
                    write_le(&mut buf, 2, LINK_NONE as u64);
                    db.poke(base + HDR_NEXT, &buf)?;
                    db.poke(base + HDR_PREV, &buf)?;
                }
            }
            db.poke(base + HDR_GROUP, &[new_group])?;
            Ok(())
        })();
        if !held_before {
            self.locks.release(rec, pid);
        }
        result?;
        if self.instrumented {
            db.note_access(rec, pid, at, true);
        }
        self.notify(pid, DbOp::Move, Some(table), Some(index), at);
        Ok(())
    }

    /// Allocates a record in `table` (write-class operation used at
    /// call setup).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::NotConnected`], [`DbError::CatalogCorrupt`]
    /// or [`DbError::TableFull`].
    pub fn alloc_record(
        &mut self,
        db: &mut Database,
        pid: Pid,
        table: TableId,
        at: SimTime,
    ) -> Result<u32, DbError> {
        self.charge(DbOp::Alloc);
        self.require_connection(pid)?;
        self.region_entry(db, table, at)?;
        let index = db.alloc_record_raw(table)?;
        // Fresh formatting overwrites any corruption in the slot.
        let tm = db.catalog().table(table)?;
        let (off, len) = (tm.record_offset(index), tm.record_size);
        db.taint_mut().resolve_range(off, len, TaintFate::Overwritten { at });
        if self.instrumented {
            db.note_access(RecordRef::new(table, index), pid, at, true);
        }
        self.notify(pid, DbOp::Alloc, Some(table), Some(index), at);
        Ok(index)
    }

    /// Frees a record in `table` (write-class operation used at call
    /// teardown).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::NotConnected`], [`DbError::CatalogCorrupt`],
    /// [`DbError::BadRecordIndex`] or [`DbError::LockHeld`].
    pub fn free_record(
        &mut self,
        db: &mut Database,
        pid: Pid,
        table: TableId,
        index: u32,
        at: SimTime,
    ) -> Result<(), DbError> {
        self.charge(DbOp::Free);
        self.require_connection(pid)?;
        self.region_entry(db, table, at)?;
        let rec = RecordRef::new(table, index);
        if let Some(holder) = self.locks.holder(rec) {
            if holder != pid {
                return Err(DbError::LockHeld { table, index, holder });
            }
        }
        db.free_record_raw(rec)?;
        if self.instrumented {
            db.note_access(rec, pid, at, true);
        }
        self.notify(pid, DbOp::Free, Some(table), Some(index), at);
        Ok(())
    }

    /// Operator reconfiguration: writes a **static** configuration
    /// field and commits the change to the golden disk image, so the
    /// new value survives audit reloads. The caller must also
    /// rebaseline the static-data audit's checksums (the
    /// [`Controller`](https://docs.rs/wtnc) facade does both).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownField`] for a dynamic field — runtime
    /// state is never committed to the disk image — plus the usual
    /// lookup errors.
    #[allow(clippy::too_many_arguments)]
    pub fn reconfigure(
        &mut self,
        db: &mut Database,
        pid: Pid,
        table: TableId,
        index: u32,
        field: FieldId,
        value: u64,
        at: SimTime,
    ) -> Result<(), DbError> {
        self.charge(DbOp::WriteFld);
        self.require_connection(pid)?;
        let f = db.catalog().field(table, field)?;
        if f.kind != crate::catalog::FieldKind::Static {
            return Err(DbError::UnknownField(table, field));
        }
        let rec = RecordRef::new(table, index);
        db.write_field_raw(rec, field, value)?;
        let (off, len) = db.field_extent(rec, field)?;
        db.commit_golden(off, len);
        db.taint_mut().resolve_range(off, len, TaintFate::Overwritten { at });
        if self.instrumented {
            db.note_access(rec, pid, at, true);
        }
        self.notify(pid, DbOp::WriteFld, Some(table), Some(index), at);
        Ok(())
    }

    /// Explicitly acquires a record lock (multi-operation
    /// transactions).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::LockHeld`] if another client holds it.
    pub fn lock(&mut self, rec: RecordRef, pid: Pid, at: SimTime) -> Result<(), DbError> {
        self.locks.acquire(rec, pid, at)
    }

    /// Explicitly releases a record lock.
    pub fn unlock(&mut self, rec: RecordRef, pid: Pid) -> bool {
        self.locks.release(rec, pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{self, connection, standard_schema};
    use crate::taint::{TaintEntry, TaintKind};

    fn setup() -> (Database, DbApi, Pid) {
        let db = Database::build(standard_schema()).unwrap();
        let mut api = DbApi::new();
        let pid = Pid(1);
        api.init(pid);
        (db, api, pid)
    }

    #[test]
    fn full_call_record_lifecycle() {
        let (mut db, mut api, pid) = setup();
        let t = schema::CONNECTION_TABLE;
        let at = SimTime::from_secs(1);
        let idx = api.alloc_record(&mut db, pid, t, at).unwrap();
        api.write_fld(&mut db, pid, t, idx, connection::CALLER_ID, 5551234, at).unwrap();
        let vals = api.read_rec(&mut db, pid, t, idx, at).unwrap();
        assert_eq!(vals[connection::CALLER_ID.0 as usize], 5551234);
        api.free_record(&mut db, pid, t, idx, at).unwrap();
        assert!(matches!(api.read_rec(&mut db, pid, t, idx, at), Err(DbError::RecordFree(_, _))));
    }

    #[test]
    fn write_rec_requires_matching_arity() {
        let (mut db, mut api, pid) = setup();
        let t = schema::CONNECTION_TABLE;
        let at = SimTime::ZERO;
        let idx = api.alloc_record(&mut db, pid, t, at).unwrap();
        assert!(matches!(
            api.write_rec(&mut db, pid, t, idx, &[1, 2], at),
            Err(DbError::BadSchema(_))
        ));
        let field_count = db.catalog().table(t).unwrap().def.fields.len();
        let mut values = vec![0u64; field_count];
        values[connection::CALLEE_ID.0 as usize] = 2;
        api.write_rec(&mut db, pid, t, idx, &values, at).unwrap();
        assert_eq!(api.read_fld(&mut db, pid, t, idx, connection::CALLEE_ID, at).unwrap(), 2);
    }

    #[test]
    fn not_connected_is_rejected() {
        let (mut db, mut api, _) = setup();
        let stranger = Pid(99);
        assert!(matches!(
            api.read_rec(&mut db, stranger, schema::CONNECTION_TABLE, 0, SimTime::ZERO),
            Err(DbError::NotConnected(_))
        ));
    }

    #[test]
    fn close_releases_locks() {
        let (mut db, mut api, pid) = setup();
        let t = schema::CONNECTION_TABLE;
        let at = SimTime::ZERO;
        let idx = api.alloc_record(&mut db, pid, t, at).unwrap();
        api.lock(RecordRef::new(t, idx), pid, at).unwrap();
        assert_eq!(api.locks().len(), 1);
        api.close(pid, at);
        assert!(api.locks().is_empty());
    }

    #[test]
    fn crashed_client_leaks_locks() {
        let (mut db, mut api, pid) = setup();
        let t = schema::CONNECTION_TABLE;
        let at = SimTime::ZERO;
        let idx = api.alloc_record(&mut db, pid, t, at).unwrap();
        api.lock(RecordRef::new(t, idx), pid, at).unwrap();
        api.crash_client(pid);
        assert_eq!(api.locks().len(), 1);
        // Another client is blocked.
        let other = Pid(2);
        api.init(other);
        assert!(matches!(
            api.write_fld(&mut db, other, t, idx, connection::STATE, 1, at),
            Err(DbError::LockHeld { .. })
        ));
        // Stale-lock detection sees it.
        let stale = api.locks().stale(SimTime::from_secs(200), SimDuration::from_millis(100));
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].1, pid);
        // Recovery releases everything the dead client held.
        assert_eq!(api.locks_mut().release_all(pid), 1);
        api.write_fld(&mut db, other, t, idx, connection::STATE, 1, at).unwrap();
    }

    #[test]
    fn catalog_corruption_breaks_operations_and_escapes() {
        let (mut db, mut api, pid) = setup();
        db.flip_bit(0, 0).unwrap(); // magic byte
        db.taint_mut()
            .insert(0, TaintEntry { id: 1, at: SimTime::ZERO, kind: TaintKind::StaticData });
        let err = api
            .read_rec(&mut db, pid, schema::CONNECTION_TABLE, 0, SimTime::from_secs(1))
            .unwrap_err();
        assert!(matches!(err, DbError::CatalogCorrupt { .. }));
        // The taint has been consumed as an escape.
        assert_eq!(db.taint().latent_count(), 0);
        assert_eq!(db.taint().resolved().len(), 1);
    }

    #[test]
    fn read_resolves_taint_as_escape_write_as_overwrite() {
        let (mut db, mut api, pid) = setup();
        let t = schema::CONNECTION_TABLE;
        let at = SimTime::ZERO;
        let idx = api.alloc_record(&mut db, pid, t, at).unwrap();
        let rec = RecordRef::new(t, idx);
        let (off, _) = db.field_extent(rec, connection::CALLER_ID).unwrap();

        // Taint + read => escape.
        db.taint_mut().insert(off, TaintEntry { id: 1, at, kind: TaintKind::DynamicRuled });
        api.read_fld(&mut db, pid, t, idx, connection::CALLER_ID, at).unwrap();
        assert!(matches!(db.taint().resolved()[0].2, TaintFate::Escaped { .. }));

        // Taint + write => overwritten.
        db.taint_mut().insert(off, TaintEntry { id: 2, at, kind: TaintKind::DynamicRuled });
        api.write_fld(&mut db, pid, t, idx, connection::CALLER_ID, 7, at).unwrap();
        assert!(matches!(db.taint().resolved()[1].2, TaintFate::Overwritten { .. }));
    }

    #[test]
    fn move_rec_maintains_group_chain() {
        let (mut db, mut api, pid) = setup();
        let t = schema::CONNECTION_TABLE;
        let at = SimTime::ZERO;
        let a = api.alloc_record(&mut db, pid, t, at).unwrap();
        let b = api.alloc_record(&mut db, pid, t, at).unwrap();
        let c = api.alloc_record(&mut db, pid, t, at).unwrap();
        api.move_rec(&mut db, pid, t, a, 5, at).unwrap();
        api.move_rec(&mut db, pid, t, b, 5, at).unwrap();
        api.move_rec(&mut db, pid, t, c, 5, at).unwrap();
        // All three now in group 5; chain is consistent (prev/next are
        // mutual).
        for idx in [a, b, c] {
            let hdr = db.header(RecordRef::new(t, idx)).unwrap();
            assert_eq!(hdr.group, 5);
            if hdr.next != LINK_NONE {
                let nb = db.header(RecordRef::new(t, hdr.next as u32)).unwrap();
                assert_eq!(nb.prev, idx as u16);
            }
            if hdr.prev != LINK_NONE {
                let pb = db.header(RecordRef::new(t, hdr.prev as u32)).unwrap();
                assert_eq!(pb.next, idx as u16);
            }
        }
        // Move one out again; the remaining two stay linked.
        api.move_rec(&mut db, pid, t, b, 9, at).unwrap();
        let ha = db.header(RecordRef::new(t, a)).unwrap();
        let hc = db.header(RecordRef::new(t, c)).unwrap();
        assert_eq!(ha.group, 5);
        assert_eq!(hc.group, 5);
        let hb = db.header(RecordRef::new(t, b)).unwrap();
        assert_eq!(hb.group, 9);
    }

    #[test]
    fn events_flow_when_instrumented_only() {
        let (mut db, mut api, pid) = setup();
        let t = schema::CONNECTION_TABLE;
        let at = SimTime::ZERO;
        let idx = api.alloc_record(&mut db, pid, t, at).unwrap();
        api.write_fld(&mut db, pid, t, idx, connection::STATE, 1, at).unwrap();
        let events: Vec<_> = api.events_mut().drain().collect();
        assert!(events.iter().any(|e| e.op == DbOp::WriteFld));
        assert!(events.iter().any(|e| e.op == DbOp::Alloc));

        let mut raw = DbApi::without_instrumentation();
        raw.init(pid);
        let idx2 = raw.alloc_record(&mut db, pid, t, at).unwrap();
        raw.write_fld(&mut db, pid, t, idx2, connection::STATE, 1, at).unwrap();
        assert!(raw.events_mut().is_empty());
    }

    #[test]
    fn post_event_sheds_a_flooding_lane_but_admits_quiet_clients() {
        use wtnc_sim::Enqueue;
        let mut api = DbApi::with_ipc(IpcConfig {
            capacity: 8,
            lane_capacity: 2,
            retry_after: SimDuration::from_millis(5),
        });
        let spammer = Pid(9);
        let quiet = Pid(10);
        let at = SimTime::ZERO;
        assert!(api.post_event(spammer, DbOp::WriteFld, None, None, at).accepted());
        assert!(api.post_event(spammer, DbOp::WriteFld, None, None, at).accepted());
        // Third message from the same producer exceeds its lane.
        assert_eq!(api.post_event(spammer, DbOp::WriteFld, None, None, at), Enqueue::Shed);
        // A quieter client still gets through.
        assert!(api.post_event(quiet, DbOp::ReadRec, None, None, at).accepted());
        assert_eq!(api.events_shed(), 1);
        assert_eq!(api.events().len(), 3);
    }

    #[test]
    fn event_capacity_is_configurable() {
        let api = DbApi::with_event_capacity(16);
        assert_eq!(api.events().capacity(), 16);
        assert_eq!(api.events().lane_capacity(), 4);
    }

    #[test]
    fn instrumentation_costs_more() {
        let costs = ApiCosts::default();
        for op in [
            DbOp::Init,
            DbOp::Close,
            DbOp::ReadRec,
            DbOp::ReadFld,
            DbOp::WriteRec,
            DbOp::WriteFld,
            DbOp::Move,
        ] {
            assert!(costs.cost(op, true) > costs.cost(op, false), "{op:?}");
        }
        // Figure 4: DBwrite_rec has the largest overhead, DBinit the
        // smallest.
        let rel =
            |op: DbOp| costs.cost(op, true).as_secs_f64() / costs.cost(op, false).as_secs_f64();
        assert!(rel(DbOp::WriteRec) > rel(DbOp::WriteFld));
        assert!(rel(DbOp::Init) < rel(DbOp::ReadFld));
    }

    #[test]
    fn cost_accumulator_drains() {
        let (mut db, mut api, pid) = setup();
        let t = schema::CONNECTION_TABLE;
        let at = SimTime::ZERO;
        api.take_cost();
        let idx = api.alloc_record(&mut db, pid, t, at).unwrap();
        api.read_rec(&mut db, pid, t, idx, at).unwrap();
        let cost = api.take_cost();
        assert!(cost > SimDuration::ZERO);
        assert_eq!(api.take_cost(), SimDuration::ZERO);
    }

    #[test]
    fn lock_table_reentrancy_and_stale() {
        let mut locks = LockTable::new();
        let rec = RecordRef::new(TableId(1), 3);
        locks.acquire(rec, Pid(1), SimTime::ZERO).unwrap();
        locks.acquire(rec, Pid(1), SimTime::ZERO).unwrap(); // re-entrant
        assert!(matches!(locks.acquire(rec, Pid(2), SimTime::ZERO), Err(DbError::LockHeld { .. })));
        assert!(locks.stale(SimTime::from_millis(50), SimDuration::from_millis(100)).is_empty());
        assert_eq!(locks.stale(SimTime::from_millis(150), SimDuration::from_millis(100)).len(), 1);
        assert!(!locks.release(rec, Pid(2)));
        assert!(locks.release(rec, Pid(1)));
        assert!(locks.is_empty());
    }

    #[test]
    fn held_by_reports_only_the_given_owner() {
        let mut locks = LockTable::new();
        locks.acquire(RecordRef::new(TableId(1), 2), Pid(1), SimTime::ZERO).unwrap();
        locks.acquire(RecordRef::new(TableId(1), 0), Pid(1), SimTime::ZERO).unwrap();
        locks.acquire(RecordRef::new(TableId(2), 5), Pid(2), SimTime::ZERO).unwrap();
        assert_eq!(
            locks.held_by(Pid(1)),
            vec![RecordRef::new(TableId(1), 0), RecordRef::new(TableId(1), 2)]
        );
        assert_eq!(locks.held_by(Pid(2)), vec![RecordRef::new(TableId(2), 5)]);
        assert!(locks.held_by(Pid(3)).is_empty());
    }
}
