//! Consistent read-only snapshots for parallel audit execution.
//!
//! The parallel audit executor shards one audit cycle across worker
//! threads. Workers must observe a *stable* database image — the audit
//! elements' detection logic assumes the bytes under a record do not
//! move between the header check and the field reads. [`DbSnapshot`]
//! is that image: an epoch-stamped copy of the region plus the
//! mutation generations the incremental engine skips by.
//!
//! The [`DbRead`] trait abstracts the read-side API shared by the live
//! [`Database`] and a [`DbSnapshot`], so an audit element's detection
//! pass can be written once and run against either. The decode logic
//! (header layout, field extents) lives in the trait's provided
//! methods; both implementors only supply raw access to the catalog,
//! the region bytes and the generation counters.
//!
//! A snapshot is *cheap*, not free: the region of the standard schema
//! is ~53 KiB, so taking one per audit cycle costs a few microseconds
//! of `memcpy` — far below the cost of the cycle it enables to run in
//! parallel. The `epoch` field carries the owner's mutation generation
//! at capture time; [`DbSnapshot::is_fresh`] tells the executor whether
//! screening results computed against the snapshot still describe the
//! live database (no repair or client write has intervened).

use std::sync::Arc;

use crate::catalog::{Catalog, FieldId, TableId};
use crate::database::{Database, RecordHeader, RecordRef};
use crate::error::DbError;
use crate::layout::{
    read_le, HDR_GROUP, HDR_NEXT, HDR_PREV, HDR_RECORD_ID, HDR_STATUS, STATUS_ACTIVE,
};

/// Read-side database access shared by the live [`Database`] and a
/// [`DbSnapshot`].
///
/// Audit detection passes are written against this trait so the same
/// code screens a frozen snapshot on a worker thread and re-checks the
/// live database on the owner thread.
pub trait DbRead {
    /// The parsed (trusted) catalog.
    fn catalog(&self) -> &Catalog;

    /// Read-only view of the whole region.
    fn region(&self) -> &[u8];

    /// Generation of the last mutation overlapping the record slot
    /// (0 = never mutated, or unknown slot).
    fn record_generation(&self, rec: RecordRef) -> u64;

    /// Generation of the last mutation overlapping `table` (0 = never
    /// mutated, or unknown table).
    fn table_generation(&self, table: TableId) -> u64;

    /// Size of the region in bytes.
    fn region_len(&self) -> usize {
        self.region().len()
    }

    /// Byte offset of a record within the region.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownTable`] or [`DbError::BadRecordIndex`].
    fn record_offset(&self, rec: RecordRef) -> Result<usize, DbError> {
        let tm = self.catalog().table(rec.table)?;
        if rec.index >= tm.def.record_count {
            return Err(DbError::BadRecordIndex {
                table: rec.table,
                index: rec.index,
                capacity: tm.def.record_count,
            });
        }
        Ok(tm.record_offset(rec.index))
    }

    /// Record size (header + fields) for a table.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownTable`].
    fn record_size(&self, table: TableId) -> Result<usize, DbError> {
        Ok(self.catalog().table(table)?.record_size)
    }

    /// Decodes a record header from the region bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownTable`] or [`DbError::BadRecordIndex`].
    fn header(&self, rec: RecordRef) -> Result<RecordHeader, DbError> {
        let base = self.record_offset(rec)?;
        let r = self.region();
        Ok(RecordHeader {
            record_id: read_le(&r[base + HDR_RECORD_ID..], 4) as u32,
            status: r[base + HDR_STATUS],
            group: r[base + HDR_GROUP],
            next: read_le(&r[base + HDR_NEXT..], 2) as u16,
            prev: read_le(&r[base + HDR_PREV..], 2) as u16,
        })
    }

    /// True if the record slot's status byte is exactly
    /// [`crate::layout::STATUS_ACTIVE`].
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownTable`] or [`DbError::BadRecordIndex`].
    fn is_active(&self, rec: RecordRef) -> Result<bool, DbError> {
        Ok(self.header(rec)?.status == STATUS_ACTIVE)
    }

    /// Reads one field of an (active or free) record.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownTable`], [`DbError::BadRecordIndex`]
    /// or [`DbError::UnknownField`].
    fn read_field_raw(&self, rec: RecordRef, field: FieldId) -> Result<u64, DbError> {
        let tm = self.catalog().table(rec.table)?;
        let f = self.catalog().field(rec.table, field)?;
        let base = self.record_offset(rec)?;
        let off = base + tm.field_offsets[field.0 as usize];
        Ok(read_le(&self.region()[off..], f.width.bytes()))
    }

    /// Byte range `(offset, len)` of one field within the region.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownTable`], [`DbError::BadRecordIndex`]
    /// or [`DbError::UnknownField`].
    fn field_extent(&self, rec: RecordRef, field: FieldId) -> Result<(usize, usize), DbError> {
        let tm = self.catalog().table(rec.table)?;
        let f = self.catalog().field(rec.table, field)?;
        let base = self.record_offset(rec)?;
        Ok((base + tm.field_offsets[field.0 as usize], f.width.bytes()))
    }
}

/// An epoch-stamped, immutable copy of the database's audited state:
/// region bytes, catalog (shared, the catalog never changes after
/// build) and the mutation generations.
///
/// Workers screen against a snapshot; the owner applies their verdicts
/// only while [`DbSnapshot::is_fresh`] still holds.
#[derive(Debug, Clone)]
pub struct DbSnapshot {
    pub(crate) epoch: u64,
    pub(crate) catalog: Arc<Catalog>,
    pub(crate) region: Box<[u8]>,
    pub(crate) table_gen: Vec<u64>,
    pub(crate) record_gen: Vec<Vec<u64>>,
}

impl DbSnapshot {
    /// The owner's mutation generation at capture time.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// True while no mutation has hit the live database since this
    /// snapshot was taken — i.e. screening verdicts computed against
    /// the snapshot still describe `db` exactly.
    pub fn is_fresh(&self, db: &Database) -> bool {
        self.epoch == db.mutation_generation()
    }
}

impl DbRead for DbSnapshot {
    fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    fn region(&self) -> &[u8] {
        &self.region
    }

    fn record_generation(&self, rec: RecordRef) -> u64 {
        self.record_gen
            .get(rec.table.0 as usize)
            .and_then(|t| t.get(rec.index as usize))
            .copied()
            .unwrap_or(0)
    }

    fn table_generation(&self, table: TableId) -> u64 {
        self.table_gen.get(table.0 as usize).copied().unwrap_or(0)
    }
}

impl DbRead for Database {
    fn catalog(&self) -> &Catalog {
        Database::catalog(self)
    }

    fn region(&self) -> &[u8] {
        Database::region(self)
    }

    fn record_generation(&self, rec: RecordRef) -> u64 {
        Database::record_generation(self, rec)
    }

    fn table_generation(&self, table: TableId) -> u64 {
        Database::table_generation(self, table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema;

    #[test]
    fn snapshot_reads_match_live_database() {
        let mut db = Database::build(schema::standard_schema()).unwrap();
        let t = schema::PROCESS_TABLE;
        let i = db.alloc_record_raw(t).unwrap();
        let rec = RecordRef::new(t, i);
        db.write_field_raw(rec, FieldId(1), 42).unwrap();

        let snap = db.snapshot();
        assert!(snap.is_fresh(&db));
        assert_eq!(snap.region(), db.region());
        assert_eq!(snap.epoch(), db.mutation_generation());
        assert_eq!(snap.header(rec).unwrap(), db.header(rec).unwrap());
        assert_eq!(
            snap.read_field_raw(rec, FieldId(1)).unwrap(),
            db.read_field_raw(rec, FieldId(1)).unwrap()
        );
        assert_eq!(snap.record_generation(rec), db.record_generation(rec));
        assert_eq!(snap.table_generation(t), db.table_generation(t));
        assert!(snap.is_active(rec).unwrap());
    }

    #[test]
    fn snapshot_goes_stale_on_mutation_and_stays_frozen() {
        let mut db = Database::build(schema::standard_schema()).unwrap();
        let t = schema::PROCESS_TABLE;
        let i = db.alloc_record_raw(t).unwrap();
        let rec = RecordRef::new(t, i);

        let snap = db.snapshot();
        let before = snap.read_field_raw(rec, FieldId(1)).unwrap();
        db.write_field_raw(rec, FieldId(1), before + 7).unwrap();

        assert!(!snap.is_fresh(&db), "mutation must invalidate the epoch");
        // The snapshot still reads the pre-mutation value.
        assert_eq!(snap.read_field_raw(rec, FieldId(1)).unwrap(), before);
        assert_ne!(db.read_field_raw(rec, FieldId(1)).unwrap(), before);
    }

    #[test]
    fn trait_defaults_agree_with_inherent_database_reads() {
        let mut db = Database::build(schema::standard_schema()).unwrap();
        let t = schema::CONNECTION_TABLE;
        let i = db.alloc_record_raw(t).unwrap();
        let rec = RecordRef::new(t, i);
        // Call the trait's provided methods on the live database and
        // compare with the inherent implementations.
        assert_eq!(DbRead::header(&db, rec).unwrap(), db.header(rec).unwrap());
        assert_eq!(DbRead::record_offset(&db, rec).unwrap(), db.record_offset(rec).unwrap());
        assert_eq!(DbRead::record_size(&db, t).unwrap(), db.record_size(t).unwrap());
        assert_eq!(
            DbRead::read_field_raw(&db, rec, FieldId(0)).unwrap(),
            db.read_field_raw(rec, FieldId(0)).unwrap()
        );
        assert_eq!(
            DbRead::field_extent(&db, rec, FieldId(0)).unwrap(),
            db.field_extent(rec, FieldId(0)).unwrap()
        );
        assert_eq!(DbRead::region_len(&db), db.region_len());
    }
}
