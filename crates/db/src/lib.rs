//! In-memory database substrate of the wireless telephone network
//! controller.
//!
//! This crate reproduces the database subsystem described in §3 of the
//! paper:
//!
//! * The entire database lives in one **contiguous, statically
//!   allocated memory region** ([`Database`] owns a `Vec<u8>`); no
//!   dynamic allocation happens during operation, so the image size is
//!   constant.
//! * The region begins with the **system catalog** — table and field
//!   descriptors serialized *into the region itself*, referenced on
//!   every API operation. Corrupting the catalog therefore corrupts
//!   every subsequent database operation, exactly the failure mode the
//!   paper calls the most serious.
//! * Every record starts with a **header** (record identifier computed
//!   from its offset, status byte, logical-group links) that the
//!   structural audit validates, and tables are a mixture of **static**
//!   fields (configuration, covered by a CRC-32 golden checksum) and
//!   **dynamic** fields (covered by range and semantic checks).
//! * Clients access the database through the **DB API** ([`DbApi`]):
//!   `DBinit`, `DBclose`, `DBread_rec`, `DBread_fld`, `DBwrite_rec`,
//!   `DBwrite_fld`, `DBmove` — with transparent per-record locking,
//!   shadow metadata (last writer, last access time, access counters)
//!   and event notification to the audit process.
//! * A **golden disk image** supports the paper's recovery actions
//!   (reload affected portion / reload entire database).
//!
//! Fault injection flips bits in the real backing bytes; a parallel
//! [`TaintMap`] ledger records ground truth for classifying experiment
//! outcomes without influencing detection, which always operates on the
//! actual bytes.
//!
//! # Example
//!
//! ```
//! use wtnc_db::{Database, DbApi, schema};
//! use wtnc_sim::{Pid, SimTime};
//!
//! let mut db = Database::build(schema::standard_schema()).unwrap();
//! let mut api = DbApi::new();
//! let client = Pid(7);
//! api.init(client);
//!
//! // Allocate a record in the Connection table and write a field.
//! let conn = schema::CONNECTION_TABLE;
//! let rec = api.alloc_record(&mut db, client, conn, SimTime::ZERO).unwrap();
//! api.write_fld(&mut db, client, conn, rec, schema::connection::CALLER_ID,
//!               42, SimTime::ZERO).unwrap();
//! let v = api.read_fld(&mut db, client, conn, rec, schema::connection::CALLER_ID,
//!                      SimTime::ZERO).unwrap();
//! assert_eq!(v, 42);
//! ```

// `deny`, not `forbid`: the one sanctioned exception is the
// runtime-feature-gated PCLMULQDQ CRC kernel (`crc::pclmul`), which
// carries its own scoped `allow` and safety argument.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod api;
mod catalog;
mod crc;
mod database;
mod dirty;
mod error;
mod events;
pub mod layout;
pub mod schema;
mod snapshot;
mod taint;

pub use api::{ApiCosts, DbApi, IpcConfig, LockTable};
pub use catalog::{
    Catalog, FieldDef, FieldId, FieldKind, FieldWidth, TableDef, TableId, TableNature,
};
pub use crc::{
    crc32, crc32_bytewise, crc32_combine, crc32_slice8, crc32_with, crc_kernel,
    set_crc_kernel_override, Crc32Shift, CrcKernel,
};
pub use database::{CapturedMutation, Database, RecordMeta, RecordRef, TableStats};
pub use dirty::{DirtyTracker, DIRTY_BLOCK_SIZE};
pub use error::DbError;
pub use events::{DbEvent, DbOp};
pub use snapshot::{DbRead, DbSnapshot};
pub use taint::{TaintEntry, TaintFate, TaintKind, TaintMap};
