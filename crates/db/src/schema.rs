//! The controller's standard database schema.
//!
//! Reproduces the data organization of §3.1.2 and the semantic-loop
//! example of §4.3.3: servicing a voice connection writes one record
//! into each of the Process, Connection and Resource tables, and the
//! three records form a closed referential loop (Process → Connection
//! via `connection_id`, Connection → Resource via `channel_id`,
//! Resource → Process via `process_id`), making a single corruption
//! 1-detectable.
//!
//! Two config tables provide the static region the CRC audit covers,
//! and several dynamic fields are deliberately left without range rules
//! to reproduce the paper's "escape due to lack of rule" category.

use crate::catalog::{FieldDef, FieldId, FieldWidth, TableDef, TableId, TableNature};
use crate::layout::LINK_NONE;

/// System configuration table (static).
pub const SYSCONFIG_TABLE: TableId = TableId(0);
/// Channel configuration table (static).
pub const CHANNEL_CONFIG_TABLE: TableId = TableId(1);
/// Process table (dynamic; one record per call-processing thread).
pub const PROCESS_TABLE: TableId = TableId(2);
/// Connection table (dynamic; one record per active call).
pub const CONNECTION_TABLE: TableId = TableId(3);
/// Resource table (dynamic; one record per allocated radio channel).
pub const RESOURCE_TABLE: TableId = TableId(4);

/// Field ids of the system configuration table.
pub mod sysconfig {
    use super::FieldId;
    /// Number of CPUs in the controller.
    pub const N_CPUS: FieldId = FieldId(0);
    /// Maximum simultaneous calls.
    pub const MAX_CALLS: FieldId = FieldId(1);
    /// Software version word.
    pub const SW_VERSION: FieldId = FieldId(2);
    /// Cell/region identifier.
    pub const REGION_ID: FieldId = FieldId(3);
}

/// Field ids of the channel configuration table.
pub mod channel_config {
    use super::FieldId;
    /// Carrier frequency (kHz).
    pub const FREQ_KHZ: FieldId = FieldId(0);
    /// Maximum transmit power (mW).
    pub const MAX_POWER_MW: FieldId = FieldId(1);
}

/// Field ids of the process table.
pub mod process {
    use super::FieldId;
    /// Index of the connection this thread manages (link →
    /// Connection).
    pub const CONNECTION_ID: FieldId = FieldId(0);
    /// Thread status code (0 = idle … 3 = tearing down).
    pub const STATUS: FieldId = FieldId(1);
    /// Encoded thread name (no range rule on purpose).
    pub const NAME_ID: FieldId = FieldId(2);
    /// Start time, seconds since boot.
    pub const START_TIME: FieldId = FieldId(3);
    /// Scheduling priority.
    pub const PRIORITY: FieldId = FieldId(4);
    /// CPU the thread is pinned to.
    pub const CPU_AFFINITY: FieldId = FieldId(5);
    /// Watchdog budget in milliseconds.
    pub const WATCHDOG_MS: FieldId = FieldId(6);
}

/// Field ids of the connection table.
pub mod connection {
    use super::FieldId;
    /// Index of the allocated channel (link → Resource).
    pub const CHANNEL_ID: FieldId = FieldId(0);
    /// Calling-party number.
    pub const CALLER_ID: FieldId = FieldId(1);
    /// Called-party number.
    pub const CALLEE_ID: FieldId = FieldId(2);
    /// Call state code (0 = setup … 4 = released).
    pub const STATE: FieldId = FieldId(3);
    /// Setup time, seconds since boot.
    pub const SETUP_TIME: FieldId = FieldId(4);
    /// Voice codec selector.
    pub const CODEC: FieldId = FieldId(5);
    /// Call priority class.
    pub const PRIORITY: FieldId = FieldId(6);
    /// Bearer type (voice / data / fax).
    pub const BEARER: FieldId = FieldId(7);
    /// Direction (mobile-originated / mobile-terminated).
    pub const DIRECTION: FieldId = FieldId(8);
    /// Handover hop count.
    pub const HOP_COUNT: FieldId = FieldId(9);
    /// TDMA timeslot.
    pub const TIMESLOT: FieldId = FieldId(10);
    /// Serving cell identifier.
    pub const CELL_ID: FieldId = FieldId(11);
    /// Quality-of-service class.
    pub const QOS: FieldId = FieldId(12);
    /// Accumulated billing units (no range rule on purpose).
    pub const BILLING_UNITS: FieldId = FieldId(13);
}

/// Field ids of the resource table.
pub mod resource {
    use super::FieldId;
    /// Index of the owning process record (link → Process; closes the
    /// semantic loop).
    pub const PROCESS_ID: FieldId = FieldId(0);
    /// Channel status (0 = free, 1 = busy, 2 = maintenance).
    pub const STATUS: FieldId = FieldId(1);
    /// Assigned frequency (kHz).
    pub const FREQ_KHZ: FieldId = FieldId(2);
    /// Measured power (no range rule on purpose).
    pub const POWER_MW: FieldId = FieldId(3);
    /// TDMA timeslot.
    pub const TIMESLOT: FieldId = FieldId(4);
    /// Interference level indicator.
    pub const INTERFERENCE: FieldId = FieldId(5);
    /// Carrier index.
    pub const CARRIER: FieldId = FieldId(6);
}

/// Number of record slots in each dynamic table of the standard
/// schema. Bounds the number of simultaneous calls.
pub const STANDARD_DYNAMIC_SLOTS: u32 = 64;

/// Builds the standard controller schema.
///
/// # Example
///
/// ```
/// use wtnc_db::{schema, Database};
///
/// let db = Database::build(schema::standard_schema()).unwrap();
/// assert_eq!(db.catalog().table_count(), 5);
/// ```
pub fn standard_schema() -> Vec<TableDef> {
    standard_schema_with_slots(STANDARD_DYNAMIC_SLOTS)
}

/// Builds the standard schema with a custom number of dynamic record
/// slots (used by experiments that need more concurrent calls).
pub fn standard_schema_with_slots(slots: u32) -> Vec<TableDef> {
    vec![
        TableDef::new(
            "sysconfig",
            TableNature::Config,
            4,
            vec![
                FieldDef::static_value("n_cpus", FieldWidth::U8, 4),
                FieldDef::static_value("max_calls", FieldWidth::U32, 1_000),
                FieldDef::static_value("sw_version", FieldWidth::U32, 0x0205_0001),
                FieldDef::static_value("region_id", FieldWidth::U16, 314),
            ],
        ),
        TableDef::new(
            "channel_config",
            TableNature::Config,
            16,
            vec![
                FieldDef::static_value("freq_khz", FieldWidth::U32, 890_000),
                FieldDef::static_value("max_power_mw", FieldWidth::U32, 2_000),
            ],
        ),
        TableDef::new(
            "process",
            TableNature::Dynamic,
            slots,
            vec![
                FieldDef::dynamic("connection_id", FieldWidth::U16)
                    .with_default(LINK_NONE as u64)
                    .with_link(CONNECTION_TABLE),
                FieldDef::dynamic("status", FieldWidth::U8).with_range(0, 3),
                FieldDef::dynamic("name_id", FieldWidth::U32),
                FieldDef::dynamic("start_time", FieldWidth::U32).with_range(0, 86_400),
                FieldDef::dynamic("priority", FieldWidth::U8).with_range(0, 7),
                FieldDef::dynamic("cpu_affinity", FieldWidth::U8).with_range(0, 3),
                FieldDef::dynamic("watchdog_ms", FieldWidth::U16)
                    .with_range(10, 1_000)
                    .with_default(100),
            ],
        ),
        TableDef::new(
            "connection",
            TableNature::Dynamic,
            slots,
            vec![
                FieldDef::dynamic("channel_id", FieldWidth::U16)
                    .with_default(LINK_NONE as u64)
                    .with_link(RESOURCE_TABLE),
                // Subscriber indices into the home-location register
                // (kept narrow relative to the field width, which is
                // what gives the range check its power).
                FieldDef::dynamic("caller_id", FieldWidth::U32).with_range(0, 9_999),
                FieldDef::dynamic("callee_id", FieldWidth::U32).with_range(0, 9_999),
                FieldDef::dynamic("state", FieldWidth::U8).with_range(0, 4),
                FieldDef::dynamic("setup_time", FieldWidth::U32).with_range(0, 86_400),
                FieldDef::dynamic("codec", FieldWidth::U8).with_range(0, 3),
                FieldDef::dynamic("priority", FieldWidth::U8).with_range(0, 7),
                FieldDef::dynamic("bearer", FieldWidth::U8).with_range(0, 2),
                FieldDef::dynamic("direction", FieldWidth::U8).with_range(0, 1),
                FieldDef::dynamic("hop_count", FieldWidth::U8).with_range(0, 15),
                FieldDef::dynamic("timeslot", FieldWidth::U8).with_range(0, 31),
                FieldDef::dynamic("cell_id", FieldWidth::U16).with_range(0, 999),
                FieldDef::dynamic("qos", FieldWidth::U8).with_range(0, 7),
                FieldDef::dynamic("billing_units", FieldWidth::U32),
            ],
        ),
        TableDef::new(
            "resource",
            TableNature::Dynamic,
            slots,
            vec![
                FieldDef::dynamic("process_id", FieldWidth::U16)
                    .with_default(LINK_NONE as u64)
                    .with_link(PROCESS_TABLE),
                FieldDef::dynamic("status", FieldWidth::U8).with_range(0, 2),
                FieldDef::dynamic("freq_khz", FieldWidth::U32)
                    .with_range(800_000, 960_000)
                    .with_default(890_000),
                FieldDef::dynamic("power_mw", FieldWidth::U32),
                FieldDef::dynamic("timeslot", FieldWidth::U8).with_range(0, 31),
                FieldDef::dynamic("interference", FieldWidth::U8).with_range(0, 63),
                FieldDef::dynamic("carrier", FieldWidth::U16).with_range(0, 1_023),
            ],
        ),
    ]
}

/// Builds the six-table schema of the prioritized-audit experiment
/// (paper Table 5): relative size ratio 7 : 18 : 1 : 125 : 8 : 4, one
/// generic ruled field, one link-free unruled field per table. `scale`
/// multiplies the size ratio to set absolute record counts.
pub fn six_table_schema(scale: u32) -> Vec<TableDef> {
    const RATIOS: [u32; 6] = [7, 18, 1, 125, 8, 4];
    RATIOS
        .iter()
        .enumerate()
        .map(|(i, &r)| {
            TableDef::new(
                &format!("t{i}"),
                TableNature::Dynamic,
                (r * scale).max(1),
                vec![
                    // Narrow range relative to the field width: most
                    // bit flips are detectable, so the audit race (the
                    // thing prioritization accelerates) decides the
                    // outcome.
                    FieldDef::dynamic("value", FieldWidth::U32).with_range(0, 999),
                    FieldDef::dynamic("aux", FieldWidth::U32),
                ],
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::database::Database;

    #[test]
    fn standard_schema_builds() {
        let cat = Catalog::build(standard_schema()).unwrap();
        assert_eq!(cat.table_count(), 5);
        assert_eq!(cat.table_by_name("process"), Some(PROCESS_TABLE));
        assert_eq!(cat.table_by_name("connection"), Some(CONNECTION_TABLE));
        assert_eq!(cat.table_by_name("resource"), Some(RESOURCE_TABLE));
    }

    #[test]
    fn semantic_loop_is_closed() {
        let cat = Catalog::build(standard_schema()).unwrap();
        let p = cat.field(PROCESS_TABLE, process::CONNECTION_ID).unwrap();
        assert_eq!(p.link, Some(CONNECTION_TABLE));
        let c = cat.field(CONNECTION_TABLE, connection::CHANNEL_ID).unwrap();
        assert_eq!(c.link, Some(RESOURCE_TABLE));
        let r = cat.field(RESOURCE_TABLE, resource::PROCESS_ID).unwrap();
        assert_eq!(r.link, Some(PROCESS_TABLE));
    }

    #[test]
    fn unruled_fields_exist_for_escape_category() {
        let cat = Catalog::build(standard_schema()).unwrap();
        let f = cat.field(PROCESS_TABLE, process::NAME_ID).unwrap();
        assert!(f.range.is_none() && f.link.is_none());
        let f = cat.field(CONNECTION_TABLE, connection::BILLING_UNITS).unwrap();
        assert!(f.range.is_none() && f.link.is_none());
        let f = cat.field(RESOURCE_TABLE, resource::POWER_MW).unwrap();
        assert!(f.range.is_none() && f.link.is_none());
    }

    #[test]
    fn six_table_schema_matches_ratio() {
        let cat = Catalog::build(six_table_schema(2)).unwrap();
        let counts: Vec<u32> = cat.tables().map(|t| t.def.record_count).collect();
        assert_eq!(counts, vec![14, 36, 2, 250, 16, 8]);
    }

    #[test]
    fn six_table_schema_scale_one_keeps_min_one_record() {
        let cat = Catalog::build(six_table_schema(1)).unwrap();
        assert!(cat.tables().all(|t| t.def.record_count >= 1));
    }

    #[test]
    fn database_builds_from_standard_schema() {
        let db = Database::build(standard_schema()).unwrap();
        // All dynamic tables start empty; config tables start full.
        assert_eq!(db.active_count(PROCESS_TABLE).unwrap(), 0);
        assert_eq!(db.active_count(SYSCONFIG_TABLE).unwrap(), 4);
        assert!(db.region_len() > 0);
    }
}
