//! The database proper: the contiguous memory region, raw accessors,
//! shadow metadata and the golden disk image.

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use wtnc_sim::{Pid, SimTime};

use crate::catalog::{Catalog, FieldId, TableDef, TableId, TableNature};
use crate::dirty::{DirtyTracker, DIRTY_BLOCK_SIZE};
use crate::error::DbError;
use crate::layout::{
    encode_record_id, read_le, write_le, HDR_GROUP, HDR_NEXT, HDR_PREV, HDR_RECORD_ID, HDR_STATUS,
    LINK_NONE, RECORD_HEADER_SIZE, STATUS_ACTIVE, STATUS_FREE,
};
use crate::taint::{TaintKind, TaintMap};

/// A `(table, record index)` pair naming one record slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RecordRef {
    /// The table.
    pub table: TableId,
    /// The record index within the table.
    pub index: u32,
}

impl RecordRef {
    /// Creates a record reference.
    pub fn new(table: TableId, index: u32) -> Self {
        RecordRef { table, index }
    }
}

/// The redundant per-record data structure of §4.3.3: "the ID of the
/// client process that last accessed the record ... the time of last
/// access and counters that maintain database access frequencies".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordMeta {
    /// Client that last wrote the record, if any.
    pub last_writer: Option<Pid>,
    /// Time of the most recent access (read or write).
    pub last_access: SimTime,
    /// Number of reads.
    pub reads: u64,
    /// Number of writes.
    pub writes: u64,
}

/// Per-table access statistics feeding prioritized audit triggering
/// (§4.4.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableStats {
    /// Read-class API operations against the table.
    pub reads: u64,
    /// Write-class API operations against the table.
    pub writes: u64,
    /// Errors the audit found in the table during the last audit cycle.
    pub errors_last_cycle: u64,
    /// Errors the audit has ever found in the table.
    pub errors_total: u64,
}

impl TableStats {
    /// Total operations.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

/// One captured region (or golden-image) mutation, in call order.
///
/// The capture buffer is the feed for the `wtnc-store` journal: every
/// byte-level mutation that goes through the unified
/// [`Database::note_mutation`] hook — API writes, repairs, reloads,
/// even raw injector bit flips — lands here when capture is enabled,
/// so the journal sees exactly what the dirty-block bitmap sees.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapturedMutation {
    /// The global mutation generation stamped on the write. Golden
    /// commits share the generation of the region write they follow
    /// (they do not bump it).
    pub gen: u64,
    /// Byte offset within the region (or golden image).
    pub offset: usize,
    /// The bytes as written.
    pub bytes: Vec<u8>,
    /// True when the mutation targeted the golden disk image
    /// (operator reconfiguration committing new configuration).
    pub golden: bool,
}

/// The decoded header of one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordHeader {
    /// Stored record identifier (should equal
    /// [`encode_record_id`]`(table, index)`).
    pub record_id: u32,
    /// Status byte (should be [`STATUS_FREE`] or [`STATUS_ACTIVE`]).
    pub status: u8,
    /// Logical-group byte.
    pub group: u8,
    /// Next record index in the logical group ([`LINK_NONE`] = none).
    pub next: u16,
    /// Previous record index in the logical group.
    pub prev: u16,
}

/// The in-memory controller database.
///
/// See the [crate documentation](crate) for the overall model. All
/// methods here are *raw*: they bypass locking, event notification and
/// shadow-metadata upkeep, which belong to [`DbApi`](crate::DbApi).
/// The audit process uses these raw methods deliberately — the paper's
/// audit "access\[es\] the database directly instead of through the
/// database API" to reduce contention.
#[derive(Debug, Clone)]
pub struct Database {
    region: Vec<u8>,
    golden: Vec<u8>,
    /// The parsed catalog, immutable after build. Shared (`Arc`) so
    /// audit snapshots can reference the layout without copying it.
    catalog: Arc<Catalog>,
    meta: Vec<Vec<RecordMeta>>,
    stats: Vec<TableStats>,
    taint: TaintMap,
    /// Per-table scan hints making sequential allocation O(1)
    /// amortized.
    alloc_hints: Vec<u32>,
    /// Per-block dirty bitmap, marked by every region mutation.
    dirty: DirtyTracker,
    /// Checkpoint-dirty bitmap over `region ‖ golden` (golden bytes at
    /// offset `region_len`). Unlike [`Database::dirty`], whose bits
    /// audits clear as blocks *verify* clean, these bits accumulate
    /// every mutation since the last checkpoint and are cleared only
    /// by [`Database::clear_checkpoint_dirty`] once a checkpoint has
    /// durably sealed them — the consumption hook for delta
    /// checkpoints.
    ckpt_dirty: DirtyTracker,
    /// Monotonic mutation counter; bumped once per region mutation.
    global_gen: u64,
    /// Per-table generation: `global_gen` at the table's last mutation.
    table_gen: Vec<u64>,
    /// Per-record generation: `global_gen` at the record's last
    /// mutation.
    record_gen: Vec<Vec<u64>>,
    /// Journal capture buffer (`None` = capture disabled). Fed by the
    /// same [`Database::note_mutation`] hook that maintains the dirty
    /// bitmap, drained by `wtnc-store`.
    capture: Option<Vec<CapturedMutation>>,
}

impl Database {
    /// Builds a database from a schema: computes the layout, writes the
    /// in-region catalog, formats every record slot, pre-populates
    /// config tables with their default values, and snapshots the
    /// golden disk image.
    ///
    /// # Errors
    ///
    /// Propagates [`DbError::BadSchema`] from catalog construction.
    pub fn build(schema: Vec<TableDef>) -> Result<Self, DbError> {
        let catalog = Catalog::build(schema)?;
        let mut region = vec![0u8; catalog.region_len()];
        catalog.write_region(&mut region);

        let mut meta = Vec::with_capacity(catalog.table_count());
        let mut stats = Vec::with_capacity(catalog.table_count());
        for tm in catalog.tables() {
            meta.push(vec![RecordMeta::default(); tm.def.record_count as usize]);
            stats.push(TableStats::default());
            let config = tm.def.nature == TableNature::Config;
            for index in 0..tm.def.record_count {
                let base = tm.record_offset(index);
                write_le(
                    &mut region[base + HDR_RECORD_ID..],
                    4,
                    encode_record_id(tm.id.0, index) as u64,
                );
                region[base + HDR_STATUS] = if config { STATUS_ACTIVE } else { STATUS_FREE };
                region[base + HDR_GROUP] = 0;
                write_le(&mut region[base + HDR_NEXT..], 2, LINK_NONE as u64);
                write_le(&mut region[base + HDR_PREV..], 2, LINK_NONE as u64);
                // Every field starts at its default; for config tables
                // that *is* the configuration data.
                for (fi, f) in tm.def.fields.iter().enumerate() {
                    let off = base + tm.field_offsets[fi];
                    write_le(&mut region[off..], f.width.bytes(), f.default);
                }
            }
        }

        let golden = region.clone();
        let alloc_hints = vec![0; catalog.table_count()];
        let dirty = DirtyTracker::new(region.len(), DIRTY_BLOCK_SIZE);
        // A freshly built image has never been checkpointed: everything
        // is checkpoint-dirty until the first (full) checkpoint seals it.
        let mut ckpt_dirty = DirtyTracker::new(region.len() * 2, DIRTY_BLOCK_SIZE);
        ckpt_dirty.mark_all();
        let table_gen = vec![0u64; catalog.table_count()];
        let record_gen =
            catalog.tables().map(|tm| vec![0u64; tm.def.record_count as usize]).collect();
        Ok(Database {
            region,
            golden,
            catalog: Arc::new(catalog),
            meta,
            stats,
            taint: TaintMap::new(),
            alloc_hints,
            dirty,
            ckpt_dirty,
            global_gen: 0,
            table_gen,
            record_gen,
            capture: None,
        })
    }

    /// The parsed (trusted) catalog. The audit process holds layout
    /// knowledge here; the client API instead re-validates the
    /// in-region copy on every call.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Read-only view of the whole region.
    pub fn region(&self) -> &[u8] {
        &self.region
    }

    /// Size of the region in bytes.
    pub fn region_len(&self) -> usize {
        self.region.len()
    }

    /// Read-only view of the golden disk image.
    pub fn golden(&self) -> &[u8] {
        &self.golden
    }

    /// Captures an epoch-stamped consistent snapshot of the audited
    /// state (region bytes, catalog reference, mutation generations)
    /// for parallel audit screening. See [`crate::DbSnapshot`].
    pub fn snapshot(&self) -> crate::snapshot::DbSnapshot {
        crate::snapshot::DbSnapshot {
            epoch: self.global_gen,
            catalog: Arc::clone(&self.catalog),
            region: self.region.clone().into_boxed_slice(),
            table_gen: self.table_gen.clone(),
            record_gen: self.record_gen.clone(),
        }
    }

    /// The ground-truth taint ledger.
    pub fn taint(&self) -> &TaintMap {
        &self.taint
    }

    // ------------------------------------------------------------------
    // The unified mutation hook: dirty-block tracking, mutation
    // generations and journal capture.
    //
    // Every region mutation funnels through poke / flip_bit /
    // reload_range / reload_all / write_header / write_field_raw, and
    // each of those calls `note_mutation` — including the injector's
    // raw bit flips, so nothing bypasses the bitmap *or* the journal
    // capture buffer. Audit elements consume the bitmap and
    // generations to skip provably unchanged state; `wtnc-store`
    // drains the capture buffer into the on-disk journal. (The DB
    // API's event queue is a separate, coarser channel gated on
    // instrumentation; durability deliberately does not depend on it.)
    // ------------------------------------------------------------------

    /// Marks `[offset, offset + len)` mutated: dirties the overlapping
    /// blocks, bumps the global, per-table and per-record generations,
    /// and (when capture is enabled) records the written bytes for the
    /// mutation journal.
    fn note_mutation(&mut self, offset: usize, len: usize) {
        if len == 0 {
            return;
        }
        self.dirty.mark_range(offset, len);
        self.ckpt_dirty.mark_range(offset, len);
        self.global_gen += 1;
        let gen = self.global_gen;
        let end = offset.saturating_add(len);
        for tm in self.catalog.tables() {
            let t_start = tm.offset;
            let t_end = t_start + tm.data_len();
            if end <= t_start || offset >= t_end {
                continue;
            }
            let ti = tm.id.0 as usize;
            self.table_gen[ti] = gen;
            let lo = offset.max(t_start) - t_start;
            let hi = end.min(t_end) - t_start;
            let first = (lo / tm.record_size) as u32;
            let last = (((hi - 1) / tm.record_size) as u32).min(tm.def.record_count - 1);
            for r in first..=last {
                self.record_gen[ti][r as usize] = gen;
            }
        }
        if let Some(buf) = self.capture.as_mut() {
            let end = end.min(self.region.len());
            buf.push(CapturedMutation {
                gen,
                offset,
                bytes: self.region[offset..end].to_vec(),
                golden: false,
            });
        }
    }

    /// Enables or disables journal capture. Enabling starts an empty
    /// buffer; disabling discards any undreained captures.
    pub fn set_capture(&mut self, enabled: bool) {
        self.capture = if enabled { Some(Vec::new()) } else { None };
    }

    /// Whether journal capture is enabled.
    pub fn capture_enabled(&self) -> bool {
        self.capture.is_some()
    }

    /// Drains the capture buffer, returning the mutations in call
    /// order. Empty when capture is disabled.
    pub fn take_captured(&mut self) -> Vec<CapturedMutation> {
        self.capture.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Applies one journaled mutation during replay, *without*
    /// re-capturing it: bytes are written to the region (or golden
    /// image), dirty blocks are marked, and the generations are
    /// stamped with the journal's recorded generation so the recovered
    /// database continues the same monotonic sequence.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::OutOfBounds`] if the extent leaves the
    /// region (a corrupt journal record that framing failed to catch).
    pub fn apply_captured(&mut self, m: &CapturedMutation) -> Result<(), DbError> {
        self.check_bounds(m.offset, m.bytes.len())?;
        let target = if m.golden { &mut self.golden } else { &mut self.region };
        target[m.offset..m.offset + m.bytes.len()].copy_from_slice(&m.bytes);
        let ckpt_off = if m.golden { self.region.len() + m.offset } else { m.offset };
        self.ckpt_dirty.mark_range(ckpt_off, m.bytes.len());
        if !m.golden {
            self.dirty.mark_range(m.offset, m.bytes.len());
            let end = m.offset + m.bytes.len();
            for tm in self.catalog.tables() {
                let t_start = tm.offset;
                let t_end = t_start + tm.data_len();
                if end <= t_start || m.offset >= t_end {
                    continue;
                }
                let ti = tm.id.0 as usize;
                self.table_gen[ti] = self.table_gen[ti].max(m.gen);
                let lo = m.offset.max(t_start) - t_start;
                let hi = end.min(t_end) - t_start;
                let first = (lo / tm.record_size) as u32;
                let last = (((hi - 1) / tm.record_size) as u32).min(tm.def.record_count - 1);
                for r in first..=last {
                    let g = &mut self.record_gen[ti][r as usize];
                    *g = (*g).max(m.gen);
                }
            }
        }
        self.global_gen = self.global_gen.max(m.gen);
        Ok(())
    }

    /// Replaces the region and golden image wholesale from a recovered
    /// checkpoint, stamping every generation with the checkpoint's
    /// generation and marking everything dirty (the audits re-verify a
    /// recovered image from scratch). Any pending captures are
    /// discarded — the image *is* the durable state.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::OutOfBounds`] when either image does not
    /// match the schema's region length.
    pub fn load_image(&mut self, region: &[u8], golden: &[u8], gen: u64) -> Result<(), DbError> {
        for image in [region, golden] {
            if image.len() != self.region.len() {
                return Err(DbError::OutOfBounds {
                    offset: 0,
                    len: image.len(),
                    region: self.region.len(),
                });
            }
        }
        self.region.copy_from_slice(region);
        self.golden.copy_from_slice(golden);
        self.dirty.mark_range(0, self.region.len());
        // The loaded image may differ arbitrarily from whatever the
        // last checkpoint sealed.
        self.ckpt_dirty.mark_all();
        self.global_gen = gen;
        for t in &mut self.table_gen {
            *t = gen;
        }
        for t in &mut self.record_gen {
            for r in t.iter_mut() {
                *r = gen;
            }
        }
        if let Some(buf) = self.capture.as_mut() {
            buf.clear();
        }
        Ok(())
    }

    /// The per-block dirty bitmap.
    pub fn dirty(&self) -> &DirtyTracker {
        &self.dirty
    }

    /// Mutable access to the dirty bitmap. Audit elements clear bits
    /// here after *verifying* (or repairing) the covered bytes; nothing
    /// else should clear them.
    pub fn dirty_mut(&mut self) -> &mut DirtyTracker {
        &mut self.dirty
    }

    /// The checkpoint-dirty bitmap over `region ‖ golden` (golden
    /// bytes at offset [`Database::region_len`]): every block mutated
    /// since the last [`Database::clear_checkpoint_dirty`]. Delta
    /// checkpoints persist exactly these blocks.
    pub fn checkpoint_dirty(&self) -> &DirtyTracker {
        &self.ckpt_dirty
    }

    /// Clears the checkpoint-dirty bitmap. Called by the store only
    /// after a checkpoint covering the dirty blocks is durably on disk
    /// (written, synced, renamed into place).
    pub fn clear_checkpoint_dirty(&mut self) {
        self.ckpt_dirty.clear_all();
    }

    /// The global mutation generation: bumped once per region
    /// mutation, never reset.
    pub fn mutation_generation(&self) -> u64 {
        self.global_gen
    }

    /// Generation of the last mutation overlapping `table` (0 = never
    /// mutated since build, or unknown table).
    pub fn table_generation(&self, table: TableId) -> u64 {
        self.table_gen.get(table.0 as usize).copied().unwrap_or(0)
    }

    /// Generation of the last mutation overlapping the record slot
    /// (0 = never mutated since build, or unknown slot).
    pub fn record_generation(&self, rec: RecordRef) -> u64 {
        self.record_gen
            .get(rec.table.0 as usize)
            .and_then(|t| t.get(rec.index as usize))
            .copied()
            .unwrap_or(0)
    }

    /// Fraction of `table`'s blocks currently dirty, in `[0, 1]`
    /// (0 for unknown tables). Feeds the scheduler's dirty-density
    /// priority signal.
    pub fn dirty_density(&self, table: TableId) -> f64 {
        let Ok(tm) = self.catalog.table(table) else {
            return 0.0;
        };
        let blocks = self.dirty.count_blocks_in(tm.offset, tm.data_len());
        if blocks == 0 {
            return 0.0;
        }
        self.dirty.count_dirty_in(tm.offset, tm.data_len()) as f64 / blocks as f64
    }

    /// Mutable access to the taint ledger (injector and classification
    /// paths).
    pub fn taint_mut(&mut self) -> &mut TaintMap {
        &mut self.taint
    }

    // ------------------------------------------------------------------
    // Byte-level access (injection and audit).
    // ------------------------------------------------------------------

    /// Reads `len` bytes at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::OutOfBounds`] if the range leaves the region.
    pub fn peek(&self, offset: usize, len: usize) -> Result<&[u8], DbError> {
        self.check_bounds(offset, len)?;
        Ok(&self.region[offset..offset + len])
    }

    /// Overwrites bytes at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::OutOfBounds`] if the range leaves the region.
    pub fn poke(&mut self, offset: usize, bytes: &[u8]) -> Result<(), DbError> {
        self.check_bounds(offset, bytes.len())?;
        self.region[offset..offset + bytes.len()].copy_from_slice(bytes);
        self.note_mutation(offset, bytes.len());
        Ok(())
    }

    /// Flips bit `bit` (0–7) of the byte at `offset`, returning
    /// `(old, new)`. This is the injector's primitive.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::OutOfBounds`] if `offset` leaves the region.
    ///
    /// # Panics
    ///
    /// Panics if `bit > 7`.
    pub fn flip_bit(&mut self, offset: usize, bit: u8) -> Result<(u8, u8), DbError> {
        assert!(bit < 8, "bit index out of range");
        self.check_bounds(offset, 1)?;
        let old = self.region[offset];
        let new = old ^ (1 << bit);
        self.region[offset] = new;
        self.note_mutation(offset, 1);
        Ok((old, new))
    }

    fn check_bounds(&self, offset: usize, len: usize) -> Result<(), DbError> {
        if offset.checked_add(len).is_none_or(|end| end > self.region.len()) {
            return Err(DbError::OutOfBounds { offset, len, region: self.region.len() });
        }
        Ok(())
    }

    /// Restores `[offset, offset+len)` from the golden disk image —
    /// the paper's "reload the affected portion from permanent
    /// storage".
    ///
    /// # Errors
    ///
    /// Returns [`DbError::OutOfBounds`] if the range leaves the region.
    pub fn reload_range(&mut self, offset: usize, len: usize) -> Result<(), DbError> {
        self.check_bounds(offset, len)?;
        self.region[offset..offset + len].copy_from_slice(&self.golden[offset..offset + len]);
        self.note_mutation(offset, len);
        Ok(())
    }

    /// Restores the entire region from the golden disk image — the
    /// escalated recovery for multi-record structural damage.
    pub fn reload_all(&mut self) {
        self.region.copy_from_slice(&self.golden);
        self.note_mutation(0, self.region.len());
    }

    /// Updates the golden image for `[offset, offset+len)` to match the
    /// current region. Called by the API after *legitimate* writes to
    /// static configuration (operator reconfiguration), so that the
    /// golden image tracks intent. Captured for the journal (sharing
    /// the generation of the region write it follows) — golden commits
    /// are the one mutation class that does not go through
    /// [`Database::note_mutation`], and losing one across a restart
    /// would resurrect pre-reconfiguration values.
    pub(crate) fn commit_golden(&mut self, offset: usize, len: usize) {
        self.golden[offset..offset + len].copy_from_slice(&self.region[offset..offset + len]);
        self.ckpt_dirty.mark_range(self.region.len() + offset, len);
        if let Some(buf) = self.capture.as_mut() {
            buf.push(CapturedMutation {
                gen: self.global_gen,
                offset,
                bytes: self.golden[offset..offset + len].to_vec(),
                golden: true,
            });
        }
    }

    /// Overwrites part of the in-memory golden image from an external
    /// durable source (the on-disk checkpoint) — the repair path for a
    /// *golden-side* divergence, where the in-memory reference copy
    /// itself is the corrupted party and every golden-based repair
    /// would propagate the corruption. Captured like a golden commit
    /// so the journal stays consistent with the repaired image.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::OutOfBounds`] if the extent leaves the
    /// region.
    pub fn restore_golden_range(&mut self, offset: usize, bytes: &[u8]) -> Result<(), DbError> {
        self.check_bounds(offset, bytes.len())?;
        self.golden[offset..offset + bytes.len()].copy_from_slice(bytes);
        self.ckpt_dirty.mark_range(self.region.len() + offset, bytes.len());
        if let Some(buf) = self.capture.as_mut() {
            buf.push(CapturedMutation {
                gen: self.global_gen,
                offset,
                bytes: bytes.to_vec(),
                golden: true,
            });
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Repair API (used by the recovery engine).
    //
    // Each method performs exactly one narrowly scoped repair and
    // returns the byte extent it rewrote, so the caller can resolve
    // taints over that extent, log the repair and re-run the
    // originating audit element against it. Error history is recorded
    // via `note_errors_detected` by the caller, keeping the
    // prioritized-audit feedback loop intact.
    // ------------------------------------------------------------------

    /// CRC-32 block diff of `[offset, offset+len)` against the golden
    /// disk image: the range is cut into `block_size`-byte blocks and
    /// the extents of the mismatching blocks are returned. Restoring
    /// only dirty blocks keeps large static regions repairable within a
    /// small per-cycle budget.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn golden_block_diff(
        &self,
        offset: usize,
        len: usize,
        block_size: usize,
    ) -> Vec<(usize, usize)> {
        assert!(block_size > 0, "block size must be positive");
        let end = (offset + len).min(self.region.len());
        let mut dirty = Vec::new();
        let mut at = offset.min(end);
        while at < end {
            let block_len = block_size.min(end - at);
            let live = crate::crc::crc32(&self.region[at..at + block_len]);
            let gold = crate::crc::crc32(&self.golden[at..at + block_len]);
            if live != gold {
                dirty.push((at, block_len));
            }
            at += block_len;
        }
        dirty
    }

    /// Restores one static block from the golden disk image, returning
    /// the restored extent.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::OutOfBounds`] if the range leaves the region.
    pub fn restore_static_block(
        &mut self,
        offset: usize,
        len: usize,
    ) -> Result<(usize, usize), DbError> {
        self.reload_range(offset, len)?;
        Ok((offset, len))
    }

    /// Restores one record slot (header and fields) from the golden
    /// disk image, returning the restored extent. For dynamic tables
    /// the golden image holds a formatted free slot, so this doubles as
    /// record re-initialization.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownTable`] or [`DbError::BadRecordIndex`].
    pub fn restore_record(&mut self, rec: RecordRef) -> Result<(usize, usize), DbError> {
        let base = self.record_offset(rec)?;
        let size = self.record_size(rec.table)?;
        self.reload_range(base, size)?;
        let hint = &mut self.alloc_hints[rec.table.0 as usize];
        *hint = (*hint).min(rec.index);
        Ok((base, size))
    }

    /// Resets one field to its catalog default, returning the field's
    /// extent.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownTable`], [`DbError::BadRecordIndex`]
    /// or [`DbError::UnknownField`].
    pub fn reset_field_to_default(
        &mut self,
        rec: RecordRef,
        field: FieldId,
    ) -> Result<(usize, usize), DbError> {
        let default = self.catalog.field(rec.table, field)?.default;
        self.write_field_raw(rec, field, default)?;
        self.field_extent(rec, field)
    }

    /// Rebuilds one record header from its computed offset: the record
    /// id is re-derived, an impossible status byte resolves to
    /// [`STATUS_FREE`], and out-of-range links are cleared. Returns the
    /// header's extent.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownTable`] or [`DbError::BadRecordIndex`].
    pub fn rebuild_header(&mut self, rec: RecordRef) -> Result<(usize, usize), DbError> {
        let record_count = self.catalog.table(rec.table)?.def.record_count;
        let mut hdr = self.header(rec)?;
        hdr.record_id = encode_record_id(rec.table.0, rec.index);
        if hdr.status != STATUS_ACTIVE && hdr.status != STATUS_FREE {
            hdr.status = STATUS_FREE;
        }
        if hdr.next != LINK_NONE && (hdr.next as u32) >= record_count {
            hdr.next = LINK_NONE;
        }
        if hdr.prev != LINK_NONE && (hdr.prev as u32) >= record_count {
            hdr.prev = LINK_NONE;
        }
        self.write_header(rec, hdr)?;
        let base = self.record_offset(rec)?;
        Ok((base, RECORD_HEADER_SIZE))
    }

    // ------------------------------------------------------------------
    // Record-level access.
    // ------------------------------------------------------------------

    /// Byte offset of a record within the region.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownTable`] or [`DbError::BadRecordIndex`].
    pub fn record_offset(&self, rec: RecordRef) -> Result<usize, DbError> {
        let tm = self.catalog.table(rec.table)?;
        if rec.index >= tm.def.record_count {
            return Err(DbError::BadRecordIndex {
                table: rec.table,
                index: rec.index,
                capacity: tm.def.record_count,
            });
        }
        Ok(tm.record_offset(rec.index))
    }

    /// Record size (header + fields) for a table.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownTable`].
    pub fn record_size(&self, table: TableId) -> Result<usize, DbError> {
        Ok(self.catalog.table(table)?.record_size)
    }

    /// Decodes a record header from the region bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownTable`] or [`DbError::BadRecordIndex`].
    pub fn header(&self, rec: RecordRef) -> Result<RecordHeader, DbError> {
        let base = self.record_offset(rec)?;
        let r = &self.region;
        Ok(RecordHeader {
            record_id: read_le(&r[base + HDR_RECORD_ID..], 4) as u32,
            status: r[base + HDR_STATUS],
            group: r[base + HDR_GROUP],
            next: read_le(&r[base + HDR_NEXT..], 2) as u16,
            prev: read_le(&r[base + HDR_PREV..], 2) as u16,
        })
    }

    /// Rewrites a record header.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownTable`] or [`DbError::BadRecordIndex`].
    pub fn write_header(&mut self, rec: RecordRef, hdr: RecordHeader) -> Result<(), DbError> {
        let base = self.record_offset(rec)?;
        let r = &mut self.region;
        write_le(&mut r[base + HDR_RECORD_ID..], 4, hdr.record_id as u64);
        r[base + HDR_STATUS] = hdr.status;
        r[base + HDR_GROUP] = hdr.group;
        write_le(&mut r[base + HDR_NEXT..], 2, hdr.next as u64);
        write_le(&mut r[base + HDR_PREV..], 2, hdr.prev as u64);
        self.note_mutation(base, RECORD_HEADER_SIZE);
        Ok(())
    }

    /// True if the record slot's status byte is exactly
    /// [`STATUS_ACTIVE`].
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownTable`] or [`DbError::BadRecordIndex`].
    pub fn is_active(&self, rec: RecordRef) -> Result<bool, DbError> {
        Ok(self.header(rec)?.status == STATUS_ACTIVE)
    }

    /// Reads one field of an (active or free) record, bypassing locks
    /// and notification.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownTable`], [`DbError::BadRecordIndex`]
    /// or [`DbError::UnknownField`].
    pub fn read_field_raw(&self, rec: RecordRef, field: FieldId) -> Result<u64, DbError> {
        let tm = self.catalog.table(rec.table)?;
        let f = self.catalog.field(rec.table, field)?;
        let base = self.record_offset(rec)?;
        let off = base + tm.field_offsets[field.0 as usize];
        Ok(read_le(&self.region[off..], f.width.bytes()))
    }

    /// Writes one field of a record, bypassing locks and notification.
    /// The value is truncated to the field width.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownTable`], [`DbError::BadRecordIndex`]
    /// or [`DbError::UnknownField`].
    pub fn write_field_raw(
        &mut self,
        rec: RecordRef,
        field: FieldId,
        value: u64,
    ) -> Result<(), DbError> {
        let tm = self.catalog.table(rec.table)?;
        let f = self.catalog.field(rec.table, field)?;
        let base = self.record_offset(rec)?;
        let off = base + tm.field_offsets[field.0 as usize];
        let width = f.width.bytes();
        write_le(&mut self.region[off..], width, value);
        self.note_mutation(off, width);
        Ok(())
    }

    /// Byte range `[offset, len)` of one field within the region.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownTable`], [`DbError::BadRecordIndex`]
    /// or [`DbError::UnknownField`].
    pub fn field_extent(&self, rec: RecordRef, field: FieldId) -> Result<(usize, usize), DbError> {
        let tm = self.catalog.table(rec.table)?;
        let f = self.catalog.field(rec.table, field)?;
        let base = self.record_offset(rec)?;
        Ok((base + tm.field_offsets[field.0 as usize], f.width.bytes()))
    }

    /// Finds the first free slot in `table`, marks it active, restores
    /// its header and resets its fields to defaults. Returns the index.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableFull`] when no slot is free, or
    /// [`DbError::UnknownTable`].
    pub fn alloc_record_raw(&mut self, table: TableId) -> Result<u32, DbError> {
        let tm = self.catalog.table(table)?.clone();
        // Every slot below the hint is known-active (the hint is a
        // lower bound on the first free index, maintained by
        // `free_record_raw`), so allocation keeps first-free semantics
        // at O(1) amortized cost.
        let hint = self.alloc_hints[table.0 as usize].min(tm.def.record_count - 1);
        // Scan from the hint first; if reload-style repairs freed a
        // slot below the hint behind our back, the wrap-around pass
        // still finds it.
        let order = (hint..tm.def.record_count).chain(0..hint);
        for index in order {
            let rec = RecordRef::new(table, index);
            if self.header(rec)?.status == STATUS_FREE {
                self.alloc_hints[table.0 as usize] = index + 1;
                self.write_header(
                    rec,
                    RecordHeader {
                        record_id: encode_record_id(table.0, index),
                        status: STATUS_ACTIVE,
                        group: 0,
                        next: LINK_NONE,
                        prev: LINK_NONE,
                    },
                )?;
                for (fi, f) in tm.def.fields.iter().enumerate() {
                    self.write_field_raw(rec, FieldId(fi as u16), f.default)?;
                }
                return Ok(index);
            }
        }
        Err(DbError::TableFull(table))
    }

    /// Marks a record slot free (its bytes are left in place, like a
    /// real freed record).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownTable`] or [`DbError::BadRecordIndex`].
    pub fn free_record_raw(&mut self, rec: RecordRef) -> Result<(), DbError> {
        let mut hdr = self.header(rec)?;
        hdr.status = STATUS_FREE;
        hdr.next = LINK_NONE;
        hdr.prev = LINK_NONE;
        self.write_header(rec, hdr)?;
        let hint = &mut self.alloc_hints[rec.table.0 as usize];
        *hint = (*hint).min(rec.index);
        Ok(())
    }

    /// Number of active records in `table`.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownTable`].
    pub fn active_count(&self, table: TableId) -> Result<u32, DbError> {
        let tm = self.catalog.table(table)?;
        let mut n = 0;
        for index in 0..tm.def.record_count {
            if self.is_active(RecordRef::new(table, index))? {
                n += 1;
            }
        }
        Ok(n)
    }

    // ------------------------------------------------------------------
    // Shadow metadata and statistics.
    // ------------------------------------------------------------------

    /// The redundant metadata for one record.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownTable`] or [`DbError::BadRecordIndex`].
    pub fn record_meta(&self, rec: RecordRef) -> Result<&RecordMeta, DbError> {
        self.record_offset(rec)?;
        Ok(&self.meta[rec.table.0 as usize][rec.index as usize])
    }

    /// Records a client access in the shadow metadata and table stats.
    /// The API calls this on every instrumented operation; harnesses
    /// may call it directly to synthesize access patterns.
    pub fn note_access(&mut self, rec: RecordRef, pid: Pid, at: SimTime, write: bool) {
        if let (Some(per_table), Some(stats)) =
            (self.meta.get_mut(rec.table.0 as usize), self.stats.get_mut(rec.table.0 as usize))
        {
            if let Some(m) = per_table.get_mut(rec.index as usize) {
                m.last_access = at;
                if write {
                    m.writes += 1;
                    m.last_writer = Some(pid);
                    stats.writes += 1;
                } else {
                    m.reads += 1;
                    stats.reads += 1;
                }
            }
        }
    }

    /// Per-table access/error statistics.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownTable`].
    pub fn table_stats(&self, table: TableId) -> Result<&TableStats, DbError> {
        self.catalog.table(table)?;
        Ok(&self.stats[table.0 as usize])
    }

    /// Records `n` audit-detected errors against `table`.
    pub fn note_errors_detected(&mut self, table: TableId, n: u64) {
        if let Some(s) = self.stats.get_mut(table.0 as usize) {
            s.errors_last_cycle += n;
            s.errors_total += n;
        }
    }

    /// Zeroes each table's `errors_last_cycle` counter (start of an
    /// audit cycle).
    pub fn reset_error_cycle(&mut self) {
        for s in &mut self.stats {
            s.errors_last_cycle = 0;
        }
    }

    /// Zeroes one table's `errors_last_cycle` counter (the scheduler
    /// has consumed it and the table is about to be re-audited).
    pub fn reset_error_cycle_table(&mut self, table: TableId) {
        if let Some(s) = self.stats.get_mut(table.0 as usize) {
            s.errors_last_cycle = 0;
        }
    }

    // ------------------------------------------------------------------
    // Offset classification (injector support).
    // ------------------------------------------------------------------

    /// Classifies an *impending single-bit flip* for taint
    /// bookkeeping, value-aware: the kind says which detector (if any)
    /// could flag the post-flip state.
    ///
    /// * Catalog and static/config bytes → [`TaintKind::StaticData`]
    ///   (the golden CRC detects any flip).
    /// * Header bytes whose flip breaks a structural invariant
    ///   (record id, status byte, out-of-range link) →
    ///   [`TaintKind::Structural`].
    /// * Dynamic field bytes of active records → ruled when the
    ///   post-flip value violates its range rule or perturbs a
    ///   semantic link (the loop check catches even valid-looking
    ///   wrong indices), unruled when the corrupted value would pass
    ///   every rule.
    /// * Everything else (free slots, padding, rule-silent header
    ///   bytes of free records) → [`TaintKind::Slack`].
    pub fn classify_injection(&self, offset: usize, bit: u8) -> TaintKind {
        if offset < self.catalog.catalog_len() {
            return TaintKind::StaticData;
        }
        for tm in self.catalog.tables() {
            let start = tm.offset;
            let end = start + tm.data_len();
            if offset < start || offset >= end {
                continue;
            }
            if tm.def.nature == TableNature::Config {
                return TaintKind::StaticData;
            }
            let rel = offset - start;
            let index = (rel / tm.record_size) as u32;
            let in_rec = rel % tm.record_size;
            let rec = RecordRef::new(tm.id, index);
            let active = self.is_active(rec).unwrap_or(false);
            if in_rec < RECORD_HEADER_SIZE {
                // Which header invariant does the flip break?
                let hdr_byte = in_rec;
                match hdr_byte {
                    HDR_RECORD_ID..=3 => return TaintKind::Structural,
                    b if b == HDR_STATUS => return TaintKind::Structural,
                    b if b == HDR_GROUP => {
                        // The group byte carries no validity rule.
                        return if active { TaintKind::DynamicUnruled } else { TaintKind::Slack };
                    }
                    _ => {
                        // Link bytes: detectable when the flipped link
                        // leaves the valid index range (and is not the
                        // NONE sentinel).
                        let (link_off, shift) = if hdr_byte < HDR_PREV {
                            (HDR_NEXT, hdr_byte - HDR_NEXT)
                        } else if hdr_byte < HDR_PREV + 2 {
                            (HDR_PREV, hdr_byte - HDR_PREV)
                        } else {
                            return if active {
                                TaintKind::DynamicUnruled
                            } else {
                                TaintKind::Slack
                            };
                        };
                        let base = tm.record_offset(index);
                        let current = read_le(&self.region[base + link_off..], 2) as u16;
                        let flipped = current ^ (1u16 << (bit as usize + shift * 8));
                        let invalid = flipped != LINK_NONE && flipped as u32 >= tm.def.record_count;
                        return if invalid {
                            TaintKind::Structural
                        } else if active {
                            TaintKind::DynamicUnruled
                        } else {
                            TaintKind::Slack
                        };
                    }
                }
            }
            if !active {
                return TaintKind::Slack;
            }
            for (fi, f) in tm.def.fields.iter().enumerate() {
                let fo = tm.field_offsets[fi];
                if in_rec < fo || in_rec >= fo + f.width.bytes() {
                    continue;
                }
                if f.kind == crate::catalog::FieldKind::Static {
                    return TaintKind::StaticData;
                }
                // A perturbed link is always caught: either the index
                // leaves the table, or the loop no longer closes at its
                // origin.
                if f.link.is_some() {
                    return TaintKind::DynamicRuled;
                }
                if let Some((lo, hi)) = f.range {
                    let base = tm.record_offset(index);
                    let current = read_le(&self.region[base + fo..], f.width.bytes());
                    let byte_in_field = in_rec - fo;
                    let flipped = current ^ (1u64 << (bit as usize + byte_in_field * 8));
                    let flipped = flipped & f.width.max_value();
                    return if flipped < lo || flipped > hi {
                        TaintKind::DynamicRuled
                    } else {
                        TaintKind::DynamicUnruled
                    };
                }
                return TaintKind::DynamicUnruled;
            }
            return TaintKind::Slack;
        }
        TaintKind::Slack
    }

    /// Classifies a byte offset for taint bookkeeping: catalog bytes and
    /// static fields are [`TaintKind::StaticData`], record headers are
    /// [`TaintKind::Structural`], dynamic fields split into ruled
    /// (range or link available) and unruled, and padding or fields of
    /// free dynamic records are [`TaintKind::Slack`].
    pub fn classify_offset(&self, offset: usize) -> TaintKind {
        if offset < self.catalog.catalog_len() {
            return TaintKind::StaticData;
        }
        for tm in self.catalog.tables() {
            let start = tm.offset;
            let end = start + tm.data_len();
            if offset < start || offset >= end {
                continue;
            }
            let rel = offset - start;
            let index = (rel / tm.record_size) as u32;
            let in_rec = rel % tm.record_size;
            if in_rec < RECORD_HEADER_SIZE {
                return TaintKind::Structural;
            }
            let active = self.is_active(RecordRef::new(tm.id, index)).unwrap_or(false);
            for (fi, f) in tm.def.fields.iter().enumerate() {
                let fo = tm.field_offsets[fi];
                if in_rec >= fo && in_rec < fo + f.width.bytes() {
                    return match f.kind {
                        crate::catalog::FieldKind::Static => TaintKind::StaticData,
                        crate::catalog::FieldKind::Dynamic => {
                            if !active {
                                TaintKind::Slack
                            } else if f.range.is_some() || f.link.is_some() {
                                TaintKind::DynamicRuled
                            } else {
                                TaintKind::DynamicUnruled
                            }
                        }
                    };
                }
            }
            return TaintKind::Slack; // padding inside the record
        }
        TaintKind::Slack // inter-table alignment padding
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{FieldDef, FieldWidth};

    fn schema() -> Vec<TableDef> {
        vec![
            TableDef::new(
                "config",
                TableNature::Config,
                2,
                vec![
                    FieldDef::static_value("n_cpus", FieldWidth::U8, 4),
                    FieldDef::static_value("max_calls", FieldWidth::U32, 1000),
                ],
            ),
            TableDef::new(
                "conn",
                TableNature::Dynamic,
                4,
                vec![
                    FieldDef::dynamic("caller", FieldWidth::U32).with_range(0, 99_999),
                    FieldDef::dynamic("channel", FieldWidth::U16).with_link(TableId(0)),
                    FieldDef::dynamic("unruled", FieldWidth::U64),
                ],
            ),
        ]
    }

    #[test]
    fn build_formats_headers_and_defaults() {
        let db = Database::build(schema()).unwrap();
        // Config records are pre-populated and active.
        let cfg0 = RecordRef::new(TableId(0), 0);
        assert!(db.is_active(cfg0).unwrap());
        assert_eq!(db.read_field_raw(cfg0, FieldId(0)).unwrap(), 4);
        assert_eq!(db.read_field_raw(cfg0, FieldId(1)).unwrap(), 1000);
        let hdr = db.header(cfg0).unwrap();
        assert_eq!(hdr.record_id, encode_record_id(0, 0));
        assert_eq!(hdr.next, LINK_NONE);
        // Dynamic records start free.
        let conn0 = RecordRef::new(TableId(1), 0);
        assert!(!db.is_active(conn0).unwrap());
        // Golden image matches the freshly built region.
        assert_eq!(db.region(), db.golden());
    }

    #[test]
    fn alloc_free_cycle() {
        let mut db = Database::build(schema()).unwrap();
        let t = TableId(1);
        let a = db.alloc_record_raw(t).unwrap();
        let b = db.alloc_record_raw(t).unwrap();
        assert_ne!(a, b);
        assert_eq!(db.active_count(t).unwrap(), 2);
        db.free_record_raw(RecordRef::new(t, a)).unwrap();
        assert_eq!(db.active_count(t).unwrap(), 1);
        // Freed slot is reused.
        let c = db.alloc_record_raw(t).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn alloc_exhaustion() {
        let mut db = Database::build(schema()).unwrap();
        let t = TableId(1);
        for _ in 0..4 {
            db.alloc_record_raw(t).unwrap();
        }
        assert_eq!(db.alloc_record_raw(t).unwrap_err(), DbError::TableFull(t));
    }

    #[test]
    fn alloc_resets_fields_to_defaults() {
        let mut db = Database::build(schema()).unwrap();
        let t = TableId(1);
        let i = db.alloc_record_raw(t).unwrap();
        let rec = RecordRef::new(t, i);
        db.write_field_raw(rec, FieldId(0), 777).unwrap();
        db.free_record_raw(rec).unwrap();
        let j = db.alloc_record_raw(t).unwrap();
        assert_eq!(i, j);
        assert_eq!(db.read_field_raw(rec, FieldId(0)).unwrap(), 0);
    }

    #[test]
    fn field_round_trip_and_truncation() {
        let mut db = Database::build(schema()).unwrap();
        let t = TableId(1);
        let i = db.alloc_record_raw(t).unwrap();
        let rec = RecordRef::new(t, i);
        db.write_field_raw(rec, FieldId(1), 0x1_FFFF).unwrap();
        assert_eq!(db.read_field_raw(rec, FieldId(1)).unwrap(), 0xFFFF);
    }

    #[test]
    fn flip_bit_and_reload_range() {
        let mut db = Database::build(schema()).unwrap();
        let rec = RecordRef::new(TableId(0), 0);
        let (off, len) = db.field_extent(rec, FieldId(1)).unwrap();
        let (old, new) = db.flip_bit(off, 3).unwrap();
        assert_eq!(old ^ 8, new);
        assert_ne!(db.read_field_raw(rec, FieldId(1)).unwrap(), 1000);
        db.reload_range(off, len).unwrap();
        assert_eq!(db.read_field_raw(rec, FieldId(1)).unwrap(), 1000);
    }

    #[test]
    fn reload_all_restores_everything() {
        let mut db = Database::build(schema()).unwrap();
        for off in (0..db.region_len()).step_by(97) {
            db.flip_bit(off, 0).unwrap();
        }
        db.reload_all();
        assert_eq!(db.region(), db.golden());
    }

    #[test]
    fn bounds_are_enforced() {
        let mut db = Database::build(schema()).unwrap();
        let len = db.region_len();
        assert!(matches!(db.peek(len, 1), Err(DbError::OutOfBounds { .. })));
        assert!(matches!(db.flip_bit(len, 0), Err(DbError::OutOfBounds { .. })));
        assert!(matches!(db.peek(usize::MAX, 2), Err(DbError::OutOfBounds { .. })));
        assert!(matches!(
            db.record_offset(RecordRef::new(TableId(1), 99)),
            Err(DbError::BadRecordIndex { .. })
        ));
    }

    #[test]
    fn classify_offset_covers_all_kinds() {
        let mut db = Database::build(schema()).unwrap();
        // Catalog bytes.
        assert_eq!(db.classify_offset(0), TaintKind::StaticData);
        // Structural: header of config record 0.
        let cfg_off = db.record_offset(RecordRef::new(TableId(0), 0)).unwrap();
        assert_eq!(db.classify_offset(cfg_off), TaintKind::Structural);
        // Static field data.
        let (f_off, _) = db.field_extent(RecordRef::new(TableId(0), 0), FieldId(0)).unwrap();
        assert_eq!(db.classify_offset(f_off), TaintKind::StaticData);
        // Dynamic, free record: slack.
        let (d_off, _) = db.field_extent(RecordRef::new(TableId(1), 0), FieldId(0)).unwrap();
        assert_eq!(db.classify_offset(d_off), TaintKind::Slack);
        // Activate it: ruled (has range) and unruled fields.
        let i = db.alloc_record_raw(TableId(1)).unwrap();
        assert_eq!(i, 0);
        assert_eq!(db.classify_offset(d_off), TaintKind::DynamicRuled);
        let (u_off, _) = db.field_extent(RecordRef::new(TableId(1), 0), FieldId(2)).unwrap();
        assert_eq!(db.classify_offset(u_off), TaintKind::DynamicUnruled);
        // Header of a dynamic record is structural even when free.
        let hdr_off = db.record_offset(RecordRef::new(TableId(1), 1)).unwrap();
        assert_eq!(db.classify_offset(hdr_off), TaintKind::Structural);
    }

    #[test]
    fn shadow_metadata_updates() {
        let mut db = Database::build(schema()).unwrap();
        let rec = RecordRef::new(TableId(1), 0);
        db.alloc_record_raw(TableId(1)).unwrap();
        db.note_access(rec, Pid(9), SimTime::from_secs(5), true);
        db.note_access(rec, Pid(9), SimTime::from_secs(6), false);
        let m = db.record_meta(rec).unwrap();
        assert_eq!(m.last_writer, Some(Pid(9)));
        assert_eq!(m.last_access, SimTime::from_secs(6));
        assert_eq!((m.reads, m.writes), (1, 1));
        let s = db.table_stats(TableId(1)).unwrap();
        assert_eq!((s.reads, s.writes), (1, 1));
    }

    #[test]
    fn mutations_mark_dirty_blocks_and_generations() {
        let mut db = Database::build(schema()).unwrap();
        assert_eq!(db.dirty().dirty_count(), 0, "fresh build starts clean");
        assert_eq!(db.mutation_generation(), 0);

        // An API-path field write marks the record, table and block.
        let t = TableId(1);
        let i = db.alloc_record_raw(t).unwrap();
        let rec = RecordRef::new(t, i);
        let gen_after_alloc = db.mutation_generation();
        assert!(gen_after_alloc > 0);
        assert!(db.table_generation(t) > 0);
        assert!(db.record_generation(rec) > 0);
        assert!(db.dirty().dirty_count() > 0);

        // A raw injector flip also bumps generations: nothing bypasses.
        let (off, _) = db.field_extent(rec, FieldId(0)).unwrap();
        db.flip_bit(off, 0).unwrap();
        assert!(db.mutation_generation() > gen_after_alloc);
        assert_eq!(db.record_generation(rec), db.mutation_generation());
        assert!(db.dirty().any_dirty_in(off, 1));

        // A golden reload of the slot is itself a mutation.
        let before = db.mutation_generation();
        let (base, size) = db.restore_record(rec).unwrap();
        assert!(db.mutation_generation() > before);
        assert!(db.dirty().any_dirty_in(base, size));

        // Untouched table keeps generation 0. (Its dirty *density* may
        // still be nonzero: 256-byte blocks can span table boundaries.)
        assert_eq!(db.table_generation(TableId(0)), 0);
        assert!(db.dirty_density(t) > 0.0);
    }

    #[test]
    fn capture_feeds_from_the_unified_mutation_hook() {
        let mut db = Database::build(schema()).unwrap();
        db.set_capture(true);
        assert!(db.capture_enabled());
        let t = TableId(1);
        let i = db.alloc_record_raw(t).unwrap();
        let rec = RecordRef::new(t, i);
        db.write_field_raw(rec, FieldId(0), 77).unwrap();
        // A raw injector flip is captured too: nothing bypasses.
        let (off, _) = db.field_extent(rec, FieldId(0)).unwrap();
        db.flip_bit(off, 1).unwrap();
        let captured = db.take_captured();
        assert!(captured.len() >= 3);
        for w in captured.windows(2) {
            assert!(w[0].gen <= w[1].gen, "capture order follows generation order");
        }
        assert!(db.take_captured().is_empty(), "drained");

        // Replaying the stream over a fresh database reproduces the
        // exact image and generation.
        let mut fresh = Database::build(schema()).unwrap();
        for m in &captured {
            fresh.apply_captured(m).unwrap();
        }
        assert_eq!(fresh.region(), db.region());
        assert_eq!(fresh.mutation_generation(), db.mutation_generation());
    }

    #[test]
    fn golden_commit_and_golden_restore_are_captured() {
        let mut db = Database::build(schema()).unwrap();
        db.set_capture(true);
        let rec = RecordRef::new(TableId(0), 0);
        let (off, len) = db.field_extent(rec, FieldId(1)).unwrap();
        db.write_field_raw(rec, FieldId(1), 2000).unwrap();
        db.commit_golden(off, len);
        let captured = db.take_captured();
        let golden: Vec<_> = captured.iter().filter(|m| m.golden).collect();
        assert_eq!(golden.len(), 1);
        assert_eq!(golden[0].offset, off);
        assert_eq!(golden[0].gen, captured[0].gen, "golden commit shares the write's generation");

        // Replay onto a fresh db: the golden image tracks the commit.
        let mut fresh = Database::build(schema()).unwrap();
        for m in &captured {
            fresh.apply_captured(m).unwrap();
        }
        assert_eq!(fresh.golden(), db.golden());

        // restore_golden_range is captured the same way.
        let patch = vec![0xEE; len];
        db.restore_golden_range(off, &patch).unwrap();
        let captured = db.take_captured();
        assert_eq!(captured.len(), 1);
        assert!(captured[0].golden);
        assert_eq!(captured[0].bytes, patch);
        assert!(db.restore_golden_range(db.region_len(), &[1]).is_err());
    }

    #[test]
    fn load_image_replaces_state_and_stamps_generations() {
        let mut db = Database::build(schema()).unwrap();
        db.alloc_record_raw(TableId(1)).unwrap();
        let region = db.region().to_vec();
        let golden = db.golden().to_vec();

        let mut other = Database::build(schema()).unwrap();
        other.load_image(&region, &golden, 42).unwrap();
        assert_eq!(other.region(), db.region());
        assert_eq!(other.golden(), db.golden());
        assert_eq!(other.mutation_generation(), 42);
        assert_eq!(other.table_generation(TableId(1)), 42);
        assert!(other.dirty().dirty_count() > 0, "a recovered image is re-verified from scratch");
        assert!(other.load_image(&region[1..], &golden, 1).is_err());
    }

    #[test]
    fn error_counters_cycle() {
        let mut db = Database::build(schema()).unwrap();
        db.note_errors_detected(TableId(1), 3);
        assert_eq!(db.table_stats(TableId(1)).unwrap().errors_last_cycle, 3);
        db.reset_error_cycle();
        let s = db.table_stats(TableId(1)).unwrap();
        assert_eq!(s.errors_last_cycle, 0);
        assert_eq!(s.errors_total, 3);
    }
}
