//! Table and field descriptors, layout computation, and the in-region
//! system catalog.
//!
//! The paper stresses that the system catalog "consists of several
//! database tables that are referenced on each database operation" and
//! that corrupting it "can cause all database operations to fail"
//! (§3.2). We reproduce that by serializing the descriptors into the
//! head of the database region; the client API re-reads and validates
//! them on every call, so a bit flip in the catalog genuinely breaks
//! operations rather than being absorbed by out-of-band Rust state.

use serde::{Deserialize, Serialize};

use crate::error::DbError;
use crate::layout::{
    align_up, read_le, write_le, CATALOG_HEADER_SIZE, CATALOG_MAGIC, FIELD_DESC_SIZE,
    RECORD_HEADER_SIZE, TABLE_DESC_SIZE,
};

/// Identifier of a table: its position in the schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TableId(pub u16);

/// Identifier of a field within a table: its position in the table's
/// field list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FieldId(pub u16);

/// Storage width of a field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FieldWidth {
    /// One byte.
    U8,
    /// Two bytes, little-endian.
    U16,
    /// Four bytes, little-endian.
    U32,
    /// Eight bytes, little-endian.
    U64,
}

impl FieldWidth {
    /// Width in bytes.
    pub const fn bytes(self) -> usize {
        match self {
            FieldWidth::U8 => 1,
            FieldWidth::U16 => 2,
            FieldWidth::U32 => 4,
            FieldWidth::U64 => 8,
        }
    }

    /// Largest value representable at this width.
    pub const fn max_value(self) -> u64 {
        match self {
            FieldWidth::U8 => u8::MAX as u64,
            FieldWidth::U16 => u16::MAX as u64,
            FieldWidth::U32 => u32::MAX as u64,
            FieldWidth::U64 => u64::MAX,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(FieldWidth::U8),
            2 => Some(FieldWidth::U16),
            4 => Some(FieldWidth::U32),
            8 => Some(FieldWidth::U64),
            _ => None,
        }
    }
}

/// Whether a field holds static configuration or dynamic runtime data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FieldKind {
    /// Constant during operation (system configuration); covered by the
    /// golden checksum.
    Static,
    /// Updated at runtime (e.g. on every incoming call); covered by
    /// range and semantic checks.
    Dynamic,
}

/// The nature of a table, used by prioritized audit triggering: the
/// paper ranks the system catalog as most important "because it is
/// referenced on every database access".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TableNature {
    /// Static configuration (all fields static); recovered by reload.
    Config,
    /// Runtime state (records allocated/freed per call).
    Dynamic,
}

/// Definition of one field of a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldDef {
    /// Human-readable name (diagnostics only; not stored in-region).
    pub name: String,
    /// Storage width.
    pub width: FieldWidth,
    /// Static or dynamic.
    pub kind: FieldKind,
    /// Permitted value range, if a rule is known. The paper notes "not
    /// all ranges are specified" — fields with `None` here are exactly
    /// the source of its "escape due to lack of rule" category.
    pub range: Option<(u64, u64)>,
    /// Default value used by range-check recovery ("the field is reset
    /// to its default value, which is also specified in the system
    /// catalog").
    pub default: u64,
    /// If set, this field semantically references a record index in the
    /// given table — a link the referential-integrity audit follows.
    pub link: Option<TableId>,
}

impl FieldDef {
    /// Convenience constructor for a dynamic field without range or
    /// link.
    pub fn dynamic(name: &str, width: FieldWidth) -> Self {
        FieldDef {
            name: name.to_owned(),
            width,
            kind: FieldKind::Dynamic,
            range: None,
            default: 0,
            link: None,
        }
    }

    /// Convenience constructor for a static field with a fixed value.
    pub fn static_value(name: &str, width: FieldWidth, value: u64) -> Self {
        FieldDef {
            name: name.to_owned(),
            width,
            kind: FieldKind::Static,
            range: Some((value, value)),
            default: value,
            link: None,
        }
    }

    /// Adds a range rule (builder style).
    pub fn with_range(mut self, min: u64, max: u64) -> Self {
        self.range = Some((min, max));
        self
    }

    /// Adds a default value (builder style).
    pub fn with_default(mut self, default: u64) -> Self {
        self.default = default;
        self
    }

    /// Marks the field as a semantic link to `table` (builder style).
    pub fn with_link(mut self, table: TableId) -> Self {
        self.link = Some(table);
        self
    }
}

/// Definition of one table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableDef {
    /// Human-readable name.
    pub name: String,
    /// Static configuration or dynamic runtime table.
    pub nature: TableNature,
    /// Pre-allocated record slots (fixed for the life of the database).
    pub record_count: u32,
    /// Field list; field ids are positions in this list.
    pub fields: Vec<FieldDef>,
}

impl TableDef {
    /// Creates a table definition.
    pub fn new(name: &str, nature: TableNature, record_count: u32, fields: Vec<FieldDef>) -> Self {
        TableDef { name: name.to_owned(), nature, record_count, fields }
    }
}

/// Computed per-table layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableMeta {
    /// The source definition.
    pub def: TableDef,
    /// Assigned identifier.
    pub id: TableId,
    /// Byte offset of the table's data region within the database.
    pub offset: usize,
    /// Size of one record including its header.
    pub record_size: usize,
    /// Byte offset of each field inside a record (after the header).
    pub field_offsets: Vec<usize>,
    /// Byte offset of this table's descriptor within the region.
    pub desc_offset: usize,
    /// Byte offset of this table's field-descriptor array.
    pub field_desc_offset: usize,
}

impl TableMeta {
    /// Total bytes occupied by the table's data region.
    pub fn data_len(&self) -> usize {
        self.record_size * self.def.record_count as usize
    }

    /// Byte offset of record `index` within the database region.
    pub fn record_offset(&self, index: u32) -> usize {
        self.offset + self.record_size * index as usize
    }
}

/// The parsed system catalog: schema plus computed layout.
///
/// A `Catalog` is built once from a schema and then serialized into the
/// head of the database region with [`Catalog::write_region`]; the API
/// subsequently trusts only the region copy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    tables: Vec<TableMeta>,
    catalog_len: usize,
    region_len: usize,
}

impl Catalog {
    /// Builds a catalog from a schema, computing the full region
    /// layout.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::BadSchema`] if the schema is empty, a table
    /// has no fields or no records, a default value lies outside its
    /// declared range or width, or a semantic link points at a table
    /// that does not exist.
    pub fn build(schema: Vec<TableDef>) -> Result<Self, DbError> {
        if schema.is_empty() {
            return Err(DbError::BadSchema("schema has no tables".into()));
        }
        if schema.len() > u16::MAX as usize {
            return Err(DbError::BadSchema("too many tables".into()));
        }
        let table_count = schema.len();
        for (i, t) in schema.iter().enumerate() {
            if t.fields.is_empty() {
                return Err(DbError::BadSchema(format!("table {} has no fields", t.name)));
            }
            if t.record_count == 0 {
                return Err(DbError::BadSchema(format!("table {} has no records", t.name)));
            }
            if t.record_count as u64 > 0x000F_FFFF {
                return Err(DbError::BadSchema(format!(
                    "table {} exceeds the record-index space",
                    t.name
                )));
            }
            for f in &t.fields {
                if f.default > f.width.max_value() {
                    return Err(DbError::BadSchema(format!(
                        "default of {}.{} exceeds field width",
                        t.name, f.name
                    )));
                }
                if let Some((min, max)) = f.range {
                    if min > max {
                        return Err(DbError::BadSchema(format!(
                            "range of {}.{} is inverted",
                            t.name, f.name
                        )));
                    }
                    if max > f.width.max_value() {
                        return Err(DbError::BadSchema(format!(
                            "range of {}.{} exceeds field width",
                            t.name, f.name
                        )));
                    }
                    if f.default < min || f.default > max {
                        return Err(DbError::BadSchema(format!(
                            "default of {}.{} lies outside its range",
                            t.name, f.name
                        )));
                    }
                }
                if let Some(link) = f.link {
                    if link.0 as usize >= table_count {
                        return Err(DbError::BadSchema(format!(
                            "link of {}.{} references unknown table {}",
                            t.name, f.name, link.0
                        )));
                    }
                }
                // The in-region descriptor stores range metadata as
                // 32-bit values.
                if f.width == FieldWidth::U64 && f.range.is_some() {
                    return Err(DbError::BadSchema(format!(
                        "{}.{}: 64-bit fields cannot carry range rules",
                        t.name, f.name
                    )));
                }
                if f.default > u32::MAX as u64 {
                    return Err(DbError::BadSchema(format!(
                        "default of {}.{} exceeds the catalog's 32-bit metadata",
                        t.name, f.name
                    )));
                }
                if i == usize::MAX {
                    unreachable!();
                }
            }
        }

        // Descriptor area: header, table descriptors, field descriptors.
        let mut field_desc_cursor = CATALOG_HEADER_SIZE + table_count * TABLE_DESC_SIZE;
        let mut metas = Vec::with_capacity(table_count);
        for (i, def) in schema.iter().enumerate() {
            let field_desc_offset = field_desc_cursor;
            field_desc_cursor += def.fields.len() * FIELD_DESC_SIZE;

            // Record layout: header, then fields packed with natural
            // alignment.
            let mut field_offsets = Vec::with_capacity(def.fields.len());
            let mut cursor = RECORD_HEADER_SIZE;
            for f in &def.fields {
                cursor = align_up(cursor, f.width.bytes());
                field_offsets.push(cursor);
                cursor += f.width.bytes();
            }
            let record_size = align_up(cursor, 4);

            metas.push(TableMeta {
                def: def.clone(),
                id: TableId(i as u16),
                offset: 0, // fixed up below
                record_size,
                field_offsets,
                desc_offset: CATALOG_HEADER_SIZE + i * TABLE_DESC_SIZE,
                field_desc_offset,
            });
        }

        let catalog_len = align_up(field_desc_cursor, 8);
        let mut data_cursor = catalog_len;
        for meta in &mut metas {
            meta.offset = data_cursor;
            data_cursor += align_up(meta.data_len(), 8);
        }

        Ok(Catalog { tables: metas, catalog_len, region_len: data_cursor })
    }

    /// Total size of the database region.
    pub fn region_len(&self) -> usize {
        self.region_len
    }

    /// Size of the descriptor (catalog) area at the head of the region.
    pub fn catalog_len(&self) -> usize {
        self.catalog_len
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Looks up the computed metadata for a table.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownTable`] for an id outside the schema.
    pub fn table(&self, id: TableId) -> Result<&TableMeta, DbError> {
        self.tables.get(id.0 as usize).ok_or(DbError::UnknownTable(id))
    }

    /// Looks up a field definition.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownTable`] or [`DbError::UnknownField`].
    pub fn field(&self, table: TableId, field: FieldId) -> Result<&FieldDef, DbError> {
        let meta = self.table(table)?;
        meta.def.fields.get(field.0 as usize).ok_or(DbError::UnknownField(table, field))
    }

    /// Iterates over all table metadata in id order.
    pub fn tables(&self) -> impl Iterator<Item = &TableMeta> {
        self.tables.iter()
    }

    /// Finds a table id by name.
    pub fn table_by_name(&self, name: &str) -> Option<TableId> {
        self.tables.iter().find(|m| m.def.name == name).map(|m| m.id)
    }

    /// Serializes the catalog into the head of `region`.
    ///
    /// # Panics
    ///
    /// Panics if `region` is smaller than [`Catalog::region_len`]; the
    /// database constructor always sizes it correctly.
    pub fn write_region(&self, region: &mut [u8]) {
        assert!(region.len() >= self.region_len, "region too small for catalog");
        write_le(&mut region[0..], 4, CATALOG_MAGIC as u64);
        write_le(&mut region[4..], 4, self.tables.len() as u64);
        write_le(&mut region[8..], 4, self.region_len as u64);
        let total_fields: usize = self.tables.iter().map(|t| t.def.fields.len()).sum();
        write_le(&mut region[12..], 4, total_fields as u64);

        for meta in &self.tables {
            let d = meta.desc_offset;
            write_le(&mut region[d..], 2, meta.id.0 as u64);
            region[d + 2] = match meta.def.nature {
                TableNature::Config => 0,
                TableNature::Dynamic => 1,
            };
            region[d + 3] = 0;
            write_le(&mut region[d + 4..], 4, meta.offset as u64);
            write_le(&mut region[d + 8..], 4, meta.record_size as u64);
            write_le(&mut region[d + 12..], 4, meta.def.record_count as u64);
            write_le(&mut region[d + 16..], 4, meta.def.fields.len() as u64);
            write_le(&mut region[d + 20..], 4, meta.field_desc_offset as u64);
            // bytes d+24..d+32 reserved (zero)

            for (fi, f) in meta.def.fields.iter().enumerate() {
                let o = meta.field_desc_offset + fi * FIELD_DESC_SIZE;
                write_le(&mut region[o..], 2, fi as u64);
                region[o + 2] = f.width.bytes() as u8;
                region[o + 3] = match f.kind {
                    FieldKind::Static => 0,
                    FieldKind::Dynamic => 1,
                };
                region[o + 4] = f.range.is_some() as u8;
                region[o + 5] = f.link.is_some() as u8;
                write_le(&mut region[o + 6..], 2, f.link.map_or(0, |t| t.0) as u64);
                let (min, max) = f.range.unwrap_or((0, f.width.max_value().min(u32::MAX as u64)));
                write_le(&mut region[o + 8..], 4, min);
                write_le(&mut region[o + 12..], 4, max);
                write_le(&mut region[o + 16..], 4, f.default);
                write_le(&mut region[o + 20..], 4, meta.field_offsets[fi] as u64);
            }
        }
    }

    /// Validates the in-region catalog copy and returns the region-held
    /// entry for `table` — offset, record size and count as stored in
    /// the (possibly corrupted) bytes. This is what the API consults on
    /// every operation.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::CatalogCorrupt`] if the magic number, table
    /// count, or the entry's identity/bounds fail validation, and
    /// [`DbError::UnknownTable`] if `table` exceeds the (validated)
    /// table count.
    pub fn read_region_entry(region: &[u8], table: TableId) -> Result<RegionTableEntry, DbError> {
        if region.len() < CATALOG_HEADER_SIZE {
            return Err(DbError::CatalogCorrupt { reason: "region shorter than header" });
        }
        if read_le(&region[0..], 4) as u32 != CATALOG_MAGIC {
            return Err(DbError::CatalogCorrupt { reason: "bad magic number" });
        }
        let table_count = read_le(&region[4..], 4) as usize;
        let region_size = read_le(&region[8..], 4) as usize;
        if region_size != region.len() {
            return Err(DbError::CatalogCorrupt { reason: "stored size disagrees with region" });
        }
        if CATALOG_HEADER_SIZE + table_count * TABLE_DESC_SIZE > region.len() {
            return Err(DbError::CatalogCorrupt { reason: "descriptor area exceeds region" });
        }
        if table.0 as usize >= table_count {
            return Err(DbError::UnknownTable(table));
        }
        let d = CATALOG_HEADER_SIZE + table.0 as usize * TABLE_DESC_SIZE;
        let stored_id = read_le(&region[d..], 2) as u16;
        if stored_id != table.0 {
            return Err(DbError::CatalogCorrupt { reason: "table descriptor id mismatch" });
        }
        let entry = RegionTableEntry {
            offset: read_le(&region[d + 4..], 4) as usize,
            record_size: read_le(&region[d + 8..], 4) as usize,
            record_count: read_le(&region[d + 12..], 4) as u32,
            field_count: read_le(&region[d + 16..], 4) as usize,
            field_desc_offset: read_le(&region[d + 20..], 4) as usize,
        };
        if entry.record_size == 0
            || entry.record_size < RECORD_HEADER_SIZE
            || entry
                .offset
                .checked_add(entry.record_size * entry.record_count as usize)
                .is_none_or(|end| end > region.len())
        {
            return Err(DbError::CatalogCorrupt { reason: "table extent exceeds region" });
        }
        if entry
            .field_desc_offset
            .checked_add(entry.field_count * FIELD_DESC_SIZE)
            .is_none_or(|end| end > region.len())
        {
            return Err(DbError::CatalogCorrupt { reason: "field descriptors exceed region" });
        }
        Ok(entry)
    }

    /// Reads the in-region field descriptor `field` of a validated
    /// table entry.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownField`] if `field` exceeds the entry's
    /// field count and [`DbError::CatalogCorrupt`] if the descriptor
    /// fails validation (impossible width, field extent outside the
    /// record).
    pub fn read_region_field(
        region: &[u8],
        table: TableId,
        entry: &RegionTableEntry,
        field: FieldId,
    ) -> Result<RegionFieldEntry, DbError> {
        if field.0 as usize >= entry.field_count {
            return Err(DbError::UnknownField(table, field));
        }
        let o = entry.field_desc_offset + field.0 as usize * FIELD_DESC_SIZE;
        if o + FIELD_DESC_SIZE > region.len() {
            return Err(DbError::CatalogCorrupt { reason: "field descriptor exceeds region" });
        }
        let width = FieldWidth::from_code(region[o + 2])
            .ok_or(DbError::CatalogCorrupt { reason: "impossible field width" })?;
        let offset_in_record = read_le(&region[o + 20..], 4) as usize;
        if offset_in_record + width.bytes() > entry.record_size {
            return Err(DbError::CatalogCorrupt { reason: "field extent outside record" });
        }
        Ok(RegionFieldEntry {
            width,
            kind: if region[o + 3] == 0 { FieldKind::Static } else { FieldKind::Dynamic },
            has_range: region[o + 4] != 0,
            min: read_le(&region[o + 8..], 4),
            max: read_le(&region[o + 12..], 4),
            default: read_le(&region[o + 16..], 4),
            offset_in_record,
            link: (region[o + 5] != 0).then(|| TableId(read_le(&region[o + 6..], 2) as u16)),
        })
    }
}

/// A table descriptor as read back from the (possibly corrupted)
/// region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionTableEntry {
    /// Data-region offset.
    pub offset: usize,
    /// Record size in bytes.
    pub record_size: usize,
    /// Number of record slots.
    pub record_count: u32,
    /// Number of fields.
    pub field_count: usize,
    /// Offset of the field-descriptor array.
    pub field_desc_offset: usize,
}

/// A field descriptor as read back from the region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionFieldEntry {
    /// Storage width.
    pub width: FieldWidth,
    /// Static or dynamic.
    pub kind: FieldKind,
    /// Whether a range rule is recorded.
    pub has_range: bool,
    /// Range minimum (meaningful when `has_range`).
    pub min: u64,
    /// Range maximum (meaningful when `has_range`).
    pub max: u64,
    /// Default value for recovery.
    pub default: u64,
    /// Byte offset of the field inside a record.
    pub offset_in_record: usize,
    /// Semantic link target, if any.
    pub link: Option<TableId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_schema() -> Vec<TableDef> {
        vec![
            TableDef::new(
                "config",
                TableNature::Config,
                2,
                vec![
                    FieldDef::static_value("n_cpus", FieldWidth::U8, 4),
                    FieldDef::static_value("max_calls", FieldWidth::U32, 1000),
                ],
            ),
            TableDef::new(
                "conn",
                TableNature::Dynamic,
                8,
                vec![
                    FieldDef::dynamic("caller", FieldWidth::U32).with_range(0, 99_999),
                    FieldDef::dynamic("channel", FieldWidth::U16).with_link(TableId(0)),
                    FieldDef::dynamic("unruled", FieldWidth::U64),
                ],
            ),
        ]
    }

    #[test]
    fn layout_is_packed_and_aligned() {
        let cat = Catalog::build(small_schema()).unwrap();
        let conn = cat.table(TableId(1)).unwrap();
        // header 12, u32 at 12, u16 at 16, u64 at 24 -> record 32
        assert_eq!(conn.field_offsets, vec![12, 16, 24]);
        assert_eq!(conn.record_size, 32);
        let config = cat.table(TableId(0)).unwrap();
        // header 12, u8 at 12, u32 aligned to 16 -> record 20
        assert_eq!(config.field_offsets, vec![12, 16]);
        assert_eq!(config.record_size, 20);
        assert!(cat.region_len() >= cat.catalog_len() + config.data_len() + conn.data_len());
        assert_eq!(config.offset, cat.catalog_len());
    }

    #[test]
    fn region_round_trip() {
        let cat = Catalog::build(small_schema()).unwrap();
        let mut region = vec![0u8; cat.region_len()];
        cat.write_region(&mut region);

        let entry = Catalog::read_region_entry(&region, TableId(1)).unwrap();
        let meta = cat.table(TableId(1)).unwrap();
        assert_eq!(entry.offset, meta.offset);
        assert_eq!(entry.record_size, meta.record_size);
        assert_eq!(entry.record_count, 8);
        assert_eq!(entry.field_count, 3);

        let f0 = Catalog::read_region_field(&region, TableId(1), &entry, FieldId(0)).unwrap();
        assert_eq!(f0.width, FieldWidth::U32);
        assert!(f0.has_range);
        assert_eq!((f0.min, f0.max), (0, 99_999));
        assert_eq!(f0.offset_in_record, 12);
        assert_eq!(f0.link, None);

        let f1 = Catalog::read_region_field(&region, TableId(1), &entry, FieldId(1)).unwrap();
        assert_eq!(f1.link, Some(TableId(0)));

        let f2 = Catalog::read_region_field(&region, TableId(1), &entry, FieldId(2)).unwrap();
        assert!(!f2.has_range);
        assert_eq!(f2.kind, FieldKind::Dynamic);
    }

    #[test]
    fn corrupt_magic_fails_every_operation() {
        let cat = Catalog::build(small_schema()).unwrap();
        let mut region = vec![0u8; cat.region_len()];
        cat.write_region(&mut region);
        region[0] ^= 0x01;
        let err = Catalog::read_region_entry(&region, TableId(0)).unwrap_err();
        assert!(matches!(err, DbError::CatalogCorrupt { .. }));
    }

    #[test]
    fn corrupt_table_extent_detected() {
        let cat = Catalog::build(small_schema()).unwrap();
        let mut region = vec![0u8; cat.region_len()];
        cat.write_region(&mut region);
        let meta = cat.table(TableId(1)).unwrap();
        // Blow up the stored record size.
        let d = meta.desc_offset;
        write_le(&mut region[d + 8..], 4, u32::MAX as u64);
        let err = Catalog::read_region_entry(&region, TableId(1)).unwrap_err();
        assert_eq!(err, DbError::CatalogCorrupt { reason: "table extent exceeds region" });
    }

    #[test]
    fn unknown_table_and_field() {
        let cat = Catalog::build(small_schema()).unwrap();
        let mut region = vec![0u8; cat.region_len()];
        cat.write_region(&mut region);
        assert_eq!(
            Catalog::read_region_entry(&region, TableId(9)).unwrap_err(),
            DbError::UnknownTable(TableId(9))
        );
        let entry = Catalog::read_region_entry(&region, TableId(0)).unwrap();
        assert_eq!(
            Catalog::read_region_field(&region, TableId(0), &entry, FieldId(7)).unwrap_err(),
            DbError::UnknownField(TableId(0), FieldId(7))
        );
        assert!(cat.field(TableId(0), FieldId(1)).is_ok());
        assert!(cat.field(TableId(0), FieldId(2)).is_err());
    }

    #[test]
    fn schema_validation_rejects_bad_inputs() {
        assert!(matches!(Catalog::build(vec![]), Err(DbError::BadSchema(_))));

        let no_fields = vec![TableDef::new("t", TableNature::Dynamic, 1, vec![])];
        assert!(matches!(Catalog::build(no_fields), Err(DbError::BadSchema(_))));

        let no_records = vec![TableDef::new(
            "t",
            TableNature::Dynamic,
            0,
            vec![FieldDef::dynamic("f", FieldWidth::U8)],
        )];
        assert!(matches!(Catalog::build(no_records), Err(DbError::BadSchema(_))));

        let bad_default = vec![TableDef::new(
            "t",
            TableNature::Dynamic,
            1,
            vec![FieldDef::dynamic("f", FieldWidth::U8).with_default(300)],
        )];
        assert!(matches!(Catalog::build(bad_default), Err(DbError::BadSchema(_))));

        let inverted_range = vec![TableDef::new(
            "t",
            TableNature::Dynamic,
            1,
            vec![FieldDef::dynamic("f", FieldWidth::U32).with_range(10, 5).with_default(10)],
        )];
        assert!(matches!(Catalog::build(inverted_range), Err(DbError::BadSchema(_))));

        let default_outside_range = vec![TableDef::new(
            "t",
            TableNature::Dynamic,
            1,
            vec![FieldDef::dynamic("f", FieldWidth::U32).with_range(5, 10).with_default(0)],
        )];
        assert!(matches!(Catalog::build(default_outside_range), Err(DbError::BadSchema(_))));

        let dangling_link = vec![TableDef::new(
            "t",
            TableNature::Dynamic,
            1,
            vec![FieldDef::dynamic("f", FieldWidth::U16).with_link(TableId(9))],
        )];
        assert!(matches!(Catalog::build(dangling_link), Err(DbError::BadSchema(_))));
    }

    #[test]
    fn table_by_name() {
        let cat = Catalog::build(small_schema()).unwrap();
        assert_eq!(cat.table_by_name("conn"), Some(TableId(1)));
        assert_eq!(cat.table_by_name("missing"), None);
    }
}
