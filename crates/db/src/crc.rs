//! CRC-32 (IEEE 802.3) used by the static-data audit.
//!
//! The paper's static-data check "detects corruption in static data
//! region by computing a golden checksum of all static data at startup
//! and comparing it with a periodically computed checksum (32-bit
//! Cyclic Redundancy Code)" (§4.3.1). This is the classic reflected
//! polynomial 0xEDB88320 with a lazily built lookup table.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// Computes the CRC-32 (IEEE) of `data`.
///
/// # Example
///
/// ```
/// use wtnc_db::crc32;
///
/// // Standard check value for "123456789".
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn detects_every_single_bit_flip_in_small_buffer() {
        let base = [0x5Au8; 64];
        let golden = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut corrupted = base;
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), golden, "missed flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(crc32(b"ab"), crc32(b"ba"));
    }
}
