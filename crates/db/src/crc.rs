//! CRC-32 (IEEE 802.3) used by the static-data audit and the durable
//! store's journal/checkpoint framing.
//!
//! The paper's static-data check "detects corruption in static data
//! region by computing a golden checksum of all static data at startup
//! and comparing it with a periodically computed checksum (32-bit
//! Cyclic Redundancy Code)" (§4.3.1). This is the classic reflected
//! polynomial 0xEDB88320.
//!
//! Three things make the checksum hot loop fast:
//!
//! * [`crc32`] dispatches to the best **kernel** the host supports,
//!   selected once at runtime: a PCLMULQDQ carry-less-multiply folding
//!   kernel on x86-64 (the SSE4.2-era `crc32` *instruction* computes
//!   the Castagnoli polynomial, not IEEE, so folding is the correct
//!   hardware path for this CRC), falling back to the portable
//!   **slice-by-8** kernel ([`crc32_slice8`]) everywhere else or when
//!   `WTNC_NO_HWCRC=1` is set. Both kernels are bit-identical by
//!   construction and by property test, so on-disk frames written on
//!   one host verify on any other. The classic bytewise loop is kept
//!   as [`crc32_bytewise`] for reference and the `crc_kernel`
//!   microbench.
//! * [`crc32_combine`] (and its amortized form [`Crc32Shift`]) folds
//!   per-block CRCs into the CRC of the concatenation without touching
//!   the bytes again, so the incremental static-data audit can verify
//!   a whole-chunk golden checksum while re-reading only dirty blocks.
//!   The fold operates on the CRC *values*, so it composes with either
//!   kernel.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// The reflected CRC-32 (IEEE) polynomial.
const POLY: u32 = 0xEDB8_8320;

fn tables() -> &'static [[u32; 256]; 8] {
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, slot) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        for k in 1..8 {
            for i in 0..256usize {
                let prev = t[k - 1][i];
                t[k][i] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            }
        }
        t
    })
}

/// Computes the CRC-32 (IEEE) of `data` one byte at a time — the
/// reference kernel. Prefer [`crc32`]; this exists so tests can prove
/// the fast kernels equivalent and the microbench can quantify the
/// speedup.
pub fn crc32_bytewise(data: &[u8]) -> u32 {
    let t = &tables()[0];
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Advances a raw (pre-inversion) CRC register across `data` with the
/// slice-by-8 tables. Shared by the portable kernel and the hardware
/// kernel's unaligned head/tail handling.
fn update_slice8(crc: u32, data: &[u8]) -> u32 {
    let t = tables();
    let mut c = crc;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][((lo >> 24) & 0xFF) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][((hi >> 24) & 0xFF) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// Computes the CRC-32 (IEEE) of `data` with the portable slice-by-8
/// kernel, regardless of what hardware the host offers.
pub fn crc32_slice8(data: &[u8]) -> u32 {
    update_slice8(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Computes the CRC-32 (IEEE) of `data` with the best kernel the host
/// supports (see [`crc_kernel`] for which one that is).
///
/// # Example
///
/// ```
/// use wtnc_db::crc32;
///
/// // Standard check value for "123456789".
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    crc32_with(crc_kernel(), data)
}

// ---------------------------------------------------------------------------
// Kernel selection.
// ---------------------------------------------------------------------------

/// Which checksum kernel [`crc32`] runs. Both produce bit-identical
/// CRC-32 (IEEE) values; they differ only in throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrcKernel {
    /// x86-64 PCLMULQDQ folding (≥3× slice-by-8 on capable hosts).
    Hardware,
    /// Portable slice-by-8 table kernel.
    Slice8,
}

impl CrcKernel {
    /// Short name for logs and bench artifacts.
    pub fn name(self) -> &'static str {
        match self {
            CrcKernel::Hardware => "pclmul",
            CrcKernel::Slice8 => "slice8",
        }
    }
}

/// Whether this build + host can run the hardware kernel at all.
fn hw_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("pclmulqdq")
            && std::arch::is_x86_feature_detected!("sse4.1")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The pure selection rule behind the runtime gate, split out so the
/// env-override behavior is unit-testable without mutating the process
/// environment: `WTNC_NO_HWCRC=1` always forces the portable kernel.
fn kernel_for(no_hwcrc_env: Option<&str>, hw_available: bool) -> CrcKernel {
    if no_hwcrc_env == Some("1") || !hw_available {
        CrcKernel::Slice8
    } else {
        CrcKernel::Hardware
    }
}

/// Process-wide override: 0 = auto-detect, 1 = force portable,
/// 2 = prefer hardware (still falls back when unsupported). Set by
/// [`set_crc_kernel_override`] (CLI `--no-hwcrc`, kernel-parity tests).
static KERNEL_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Forces (or un-forces, with `None`) the kernel [`crc32`] uses.
/// Both kernels are bit-identical, so flipping this at runtime never
/// changes any checksum — only throughput. `Some(Hardware)` on a host
/// without PCLMULQDQ silently keeps the portable kernel.
pub fn set_crc_kernel_override(kernel: Option<CrcKernel>) {
    let v = match kernel {
        None => 0,
        Some(CrcKernel::Slice8) => 1,
        Some(CrcKernel::Hardware) => 2,
    };
    KERNEL_OVERRIDE.store(v, Ordering::Relaxed);
}

/// The kernel [`crc32`] will use right now: the override if one is
/// set, otherwise the cached auto-detection (CPU features gated by the
/// `WTNC_NO_HWCRC=1` environment override, read once).
pub fn crc_kernel() -> CrcKernel {
    match KERNEL_OVERRIDE.load(Ordering::Relaxed) {
        1 => CrcKernel::Slice8,
        2 if hw_supported() => CrcKernel::Hardware,
        2 => CrcKernel::Slice8,
        _ => {
            static DETECTED: OnceLock<CrcKernel> = OnceLock::new();
            *DETECTED.get_or_init(|| {
                let env = std::env::var("WTNC_NO_HWCRC").ok();
                kernel_for(env.as_deref(), hw_supported())
            })
        }
    }
}

/// Computes the CRC-32 (IEEE) of `data` with an explicitly chosen
/// kernel (benchmarks and parity tests; [`crc32`] for normal use).
/// `Hardware` on an unsupported host falls back to slice-by-8.
pub fn crc32_with(kernel: CrcKernel, data: &[u8]) -> u32 {
    match kernel {
        #[cfg(target_arch = "x86_64")]
        CrcKernel::Hardware if hw_supported() => pclmul::crc32_hw(data),
        _ => crc32_slice8(data),
    }
}

/// The PCLMULQDQ folding kernel for the reflected CRC-32 (IEEE)
/// polynomial, after Gopal et al., *Fast CRC Computation for Generic
/// Polynomials Using PCLMULQDQ Instruction* (Intel, 2009) — the same
/// construction (and fold constants) as the Linux kernel's
/// `crc32-pclmul` and zlib-ng. Four 128-bit lanes fold 64-byte strides
/// of the message polynomial, the lanes collapse to one, and a Barrett
/// reduction brings the 128-bit remainder back to the 32-bit CRC.
///
/// This module is the only `unsafe` code in the workspace; the crate
/// is otherwise `deny(unsafe_code)`. Safety rests on two invariants:
/// every entry point is gated by `hw_supported()` runtime feature
/// detection before the `#[target_feature]` functions are called, and
/// all loads are unaligned (`_mm_loadu_si128`) within bounds
/// established by the slicing logic.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod pclmul {
    use super::update_slice8;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::{
        __m128i, _mm_and_si128, _mm_clmulepi64_si128, _mm_cvtsi32_si128, _mm_extract_epi32,
        _mm_loadu_si128, _mm_set_epi32, _mm_set_epi64x, _mm_srli_si128, _mm_xor_si128,
    };

    // Fold constants for the IEEE polynomial (reflected): x^t mod P
    // for the shift distances the folding uses. Identical values to
    // the Linux kernel's `crc32-pclmul_asm.S` constant pool.
    const K1: i64 = 0x1_5444_2bd4; // x^(4·128+32) mod P
    const K2: i64 = 0x1_c6e4_1596; // x^(4·128-32) mod P
    const K3: i64 = 0x1_7519_97d0; // x^(128+32) mod P
    const K4: i64 = 0x0_ccaa_009e; // x^(128-32) mod P
    const K5: i64 = 0x1_63cd_6124; // x^64 mod P
    const POLY_P: i64 = 0x1_db71_0641; // P'
    const POLY_U: i64 = 0x1_f701_1641; // Barrett µ

    /// Below this the fold setup costs more than it saves; the
    /// portable kernel handles short buffers.
    const FOLD_MIN: usize = 64;

    /// Folds `a` down by 128 bits into `b`: `a.lo·k.lo ⊕ a.hi·k.hi ⊕ b`.
    #[inline]
    #[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
    unsafe fn fold128(a: __m128i, b: __m128i, keys: __m128i) -> __m128i {
        let lo = _mm_clmulepi64_si128(a, keys, 0x00);
        let hi = _mm_clmulepi64_si128(a, keys, 0x11);
        _mm_xor_si128(_mm_xor_si128(b, lo), hi)
    }

    /// Advances raw register `crc` across `data`, which must be a
    /// multiple of 16 bytes and at least [`FOLD_MIN`] long.
    #[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
    unsafe fn update_pclmul(crc: u32, data: &[u8]) -> u32 {
        debug_assert!(data.len() >= FOLD_MIN && data.len().is_multiple_of(16));
        let mut ptr = data.as_ptr().cast::<__m128i>();
        let mut len = data.len();

        // Four lanes over the first 64 bytes; the running CRC enters
        // the message by XOR into the first 32 bits (linearity).
        let mut x3 = _mm_loadu_si128(ptr);
        let mut x2 = _mm_loadu_si128(ptr.add(1));
        let mut x1 = _mm_loadu_si128(ptr.add(2));
        let mut x0 = _mm_loadu_si128(ptr.add(3));
        ptr = ptr.add(4);
        len -= 64;
        x3 = _mm_xor_si128(x3, _mm_cvtsi32_si128(crc as i32));

        let k1k2 = _mm_set_epi64x(K2, K1);
        while len >= 64 {
            x3 = fold128(x3, _mm_loadu_si128(ptr), k1k2);
            x2 = fold128(x2, _mm_loadu_si128(ptr.add(1)), k1k2);
            x1 = fold128(x1, _mm_loadu_si128(ptr.add(2)), k1k2);
            x0 = fold128(x0, _mm_loadu_si128(ptr.add(3)), k1k2);
            ptr = ptr.add(4);
            len -= 64;
        }

        // Collapse the four lanes, then fold any 16-byte stragglers.
        let k3k4 = _mm_set_epi64x(K4, K3);
        let mut x = fold128(x3, x2, k3k4);
        x = fold128(x, x1, k3k4);
        x = fold128(x, x0, k3k4);
        while len >= 16 {
            x = fold128(x, _mm_loadu_si128(ptr), k3k4);
            ptr = ptr.add(1);
            len -= 16;
        }
        debug_assert_eq!(len, 0);

        // 128 → 64 bits.
        let mask32 = _mm_set_epi32(0, 0, 0, !0);
        x = _mm_xor_si128(_mm_clmulepi64_si128(x, k3k4, 0x10), _mm_srli_si128(x, 8));
        x = _mm_xor_si128(
            _mm_clmulepi64_si128(_mm_and_si128(x, mask32), _mm_set_epi64x(0, K5), 0x00),
            _mm_srli_si128(x, 4),
        );

        // Barrett reduction 64 → 32 bits.
        let pu = _mm_set_epi64x(POLY_U, POLY_P);
        let t1 = _mm_clmulepi64_si128(_mm_and_si128(x, mask32), pu, 0x10);
        let t2 = _mm_xor_si128(_mm_clmulepi64_si128(_mm_and_si128(t1, mask32), pu, 0x00), x);
        _mm_extract_epi32(t2, 1) as u32
    }

    /// Whole-buffer CRC on the hardware kernel: PCLMUL folding over the
    /// largest 16-byte-aligned span, slice-by-8 for the tail (and for
    /// buffers too short to amortize the fold setup).
    pub(super) fn crc32_hw(data: &[u8]) -> u32 {
        let mut c = 0xFFFF_FFFFu32;
        if data.len() >= FOLD_MIN {
            let main = data.len() & !15;
            // SAFETY: callers reach this module only after
            // `hw_supported()` confirmed pclmulqdq+sse4.1 at runtime,
            // and `main` is a 16-byte multiple ≥ FOLD_MIN within
            // bounds.
            c = unsafe { update_pclmul(c, &data[..main]) };
            c = update_slice8(c, &data[main..]);
        } else {
            c = update_slice8(c, data);
        }
        c ^ 0xFFFF_FFFF
    }
}

// ---------------------------------------------------------------------------
// CRC combination (zlib's gf2-matrix technique).
//
// A CRC is linear over GF(2): appending `len2` bytes of zeroes to a
// message transforms its CRC by a fixed 32×32 bit-matrix that depends
// only on `len2`. crc(A ‖ B) is then shift(crc(A), |B|) ^ crc(B).
// ---------------------------------------------------------------------------

/// A 32×32 GF(2) matrix: column `i` is the image of bit `i`.
type Gf2Matrix = [u32; 32];

fn gf2_matrix_times(mat: &Gf2Matrix, mut vec: u32) -> u32 {
    let mut sum = 0u32;
    let mut i = 0;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

fn gf2_matrix_square(square: &mut Gf2Matrix, mat: &Gf2Matrix) {
    for i in 0..32 {
        square[i] = gf2_matrix_times(mat, mat[i]);
    }
}

/// The linear operator advancing a CRC across `len` zero bytes.
///
/// Building one costs a handful of 32×32 matrix squarings; applying it
/// is 32 XORs. The incremental static-data audit builds the operator
/// for its block size once and reuses it for every fold step, which is
/// what makes per-block CRC folding cheaper than re-hashing the bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32Shift {
    mat: Gf2Matrix,
    len: usize,
}

impl Crc32Shift {
    /// Builds the shift operator for `len` bytes.
    pub fn new(len: usize) -> Self {
        // The operator for one zero *bit* (the register shifts right;
        // a popped 1-bit folds the polynomial back in).
        let mut span: Gf2Matrix = [0; 32];
        span[0] = POLY;
        let mut row = 1u32;
        for entry in span.iter_mut().skip(1) {
            *entry = row;
            row <<= 1;
        }
        // Identity operator (len == 0 must be a no-op).
        let mut acc: Gf2Matrix = [0; 32];
        for (i, entry) in acc.iter_mut().enumerate() {
            *entry = 1u32 << i;
        }
        // Square-and-multiply over the bit length.
        let mut bits = (len as u64) * 8;
        while bits != 0 {
            if bits & 1 != 0 {
                let mut next: Gf2Matrix = [0; 32];
                for (i, entry) in next.iter_mut().enumerate() {
                    *entry = gf2_matrix_times(&span, acc[i]);
                }
                acc = next;
            }
            bits >>= 1;
            if bits != 0 {
                let mut sq: Gf2Matrix = [0; 32];
                gf2_matrix_square(&mut sq, &span);
                span = sq;
            }
        }
        Crc32Shift { mat: acc, len }
    }

    /// The byte length this operator advances across.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when this is the zero-length (identity) operator.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `crc32(A ‖ B)` from `crc1 = crc32(A)` and `crc2 = crc32(B)`,
    /// where `B` is exactly [`Crc32Shift::len`] bytes long.
    pub fn combine(&self, crc1: u32, crc2: u32) -> u32 {
        if self.len == 0 {
            return crc1;
        }
        // Undo / redo the final complement so the pure linear shift
        // applies to the raw register value.
        gf2_matrix_times(&self.mat, crc1) ^ crc2
    }
}

/// Combines `crc1 = crc32(A)` and `crc2 = crc32(B)` into
/// `crc32(A ‖ B)`, where `len2` is the byte length of `B`.
///
/// # Example
///
/// ```
/// use wtnc_db::{crc32, crc32_combine};
///
/// let (a, b) = (b"1234".as_slice(), b"56789".as_slice());
/// assert_eq!(crc32_combine(crc32(a), crc32(b), b.len()), crc32(b"123456789"));
/// ```
pub fn crc32_combine(crc1: u32, crc2: u32, len2: usize) -> u32 {
    Crc32Shift::new(len2).combine(crc1, crc2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn bytewise_and_slice8_agree() {
        let mut data = Vec::new();
        let mut x = 0x1234_5678u32;
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 255, 256, 1024, 4093] {
            data.clear();
            for _ in 0..len {
                x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                data.push((x >> 24) as u8);
            }
            assert_eq!(crc32_slice8(&data), crc32_bytewise(&data), "len {len}");
            assert_eq!(crc32(&data), crc32_slice8(&data), "dispatch len {len}");
        }
    }

    #[test]
    fn hardware_kernel_matches_slice8_at_fold_boundaries() {
        // Exercise every alignment-sensitive length around the 64-byte
        // fold threshold and the 16-byte stride, plus large buffers.
        let mut x = 0x9E37_79B9u32;
        for len in [
            0usize, 1, 15, 16, 17, 48, 63, 64, 65, 79, 80, 81, 95, 96, 127, 128, 129, 143, 144,
            255, 256, 257, 4096, 4097, 65536, 65551,
        ] {
            let data: Vec<u8> = (0..len)
                .map(|_| {
                    x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                    (x >> 24) as u8
                })
                .collect();
            assert_eq!(
                crc32_with(CrcKernel::Hardware, &data),
                crc32_with(CrcKernel::Slice8, &data),
                "len {len}"
            );
        }
    }

    #[test]
    fn hardware_kernel_matches_on_unaligned_starts() {
        let backing: Vec<u8> =
            (0..4096u32).map(|i| (i.wrapping_mul(2654435761) >> 23) as u8).collect();
        for start in 0..16 {
            let d = &backing[start..];
            assert_eq!(
                crc32_with(CrcKernel::Hardware, d),
                crc32_with(CrcKernel::Slice8, d),
                "start {start}"
            );
        }
    }

    #[test]
    fn env_gate_selects_portable_kernel() {
        // The selection rule: WTNC_NO_HWCRC=1 wins over any hardware.
        assert_eq!(kernel_for(Some("1"), true), CrcKernel::Slice8);
        assert_eq!(kernel_for(Some("1"), false), CrcKernel::Slice8);
        assert_eq!(kernel_for(Some("0"), false), CrcKernel::Slice8);
        assert_eq!(kernel_for(None, false), CrcKernel::Slice8);
        assert_eq!(kernel_for(None, true), CrcKernel::Hardware);
        // And the live gate agrees when the process actually runs under
        // the override (the CI leg runs the suite with WTNC_NO_HWCRC=1).
        if std::env::var("WTNC_NO_HWCRC").as_deref() == Ok("1") {
            assert_eq!(crc_kernel(), CrcKernel::Slice8);
        }
    }

    #[test]
    fn kernel_override_forces_and_restores() {
        let base = crc_kernel();
        set_crc_kernel_override(Some(CrcKernel::Slice8));
        assert_eq!(crc_kernel(), CrcKernel::Slice8);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        set_crc_kernel_override(None);
        assert_eq!(crc_kernel(), base);
        assert_eq!(CrcKernel::Hardware.name(), "pclmul");
        assert_eq!(CrcKernel::Slice8.name(), "slice8");
    }

    #[test]
    fn detects_every_single_bit_flip_in_small_buffer() {
        let base = [0x5Au8; 64];
        let golden = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut corrupted = base;
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), golden, "missed flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(crc32(b"ab"), crc32(b"ba"));
    }

    #[test]
    fn combine_equals_whole_buffer_crc() {
        let data: Vec<u8> = (0..1500u32).map(|i| (i.wrapping_mul(37) >> 3) as u8).collect();
        for split in [0usize, 1, 8, 255, 256, 257, 749, 1499, 1500] {
            let (a, b) = data.split_at(split);
            assert_eq!(crc32_combine(crc32(a), crc32(b), b.len()), crc32(&data), "split {split}");
        }
    }

    #[test]
    fn shift_operator_folds_many_blocks() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i ^ (i >> 5)) as u8).collect();
        let block = 256usize;
        let shift = Crc32Shift::new(block);
        assert_eq!(shift.len(), block);
        let mut folded = 0u32;
        let mut first = true;
        for chunk in data.chunks(block) {
            let c = crc32(chunk);
            folded = if first {
                first = false;
                c
            } else {
                shift.combine(folded, c)
            };
        }
        assert_eq!(folded, crc32(&data));
    }

    #[test]
    fn combine_with_empty_suffix_is_identity() {
        let c = crc32(b"hello");
        assert_eq!(crc32_combine(c, crc32(b""), 0), c);
    }
}
