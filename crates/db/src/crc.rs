//! CRC-32 (IEEE 802.3) used by the static-data audit.
//!
//! The paper's static-data check "detects corruption in static data
//! region by computing a golden checksum of all static data at startup
//! and comparing it with a periodically computed checksum (32-bit
//! Cyclic Redundancy Code)" (§4.3.1). This is the classic reflected
//! polynomial 0xEDB88320.
//!
//! Two things make the audit's hot loop fast:
//!
//! * [`crc32`] is a **slice-by-8** kernel: eight lazily built lookup
//!   tables let the loop consume 8 bytes per step instead of one,
//!   which on typical hardware is ~4–6× faster than the classic
//!   bytewise loop (kept as [`crc32_bytewise`] for reference and for
//!   the `crc_kernel` microbench).
//! * [`crc32_combine`] (and its amortized form [`Crc32Shift`]) folds
//!   per-block CRCs into the CRC of the concatenation without touching
//!   the bytes again, so the incremental static-data audit can verify
//!   a whole-chunk golden checksum while re-reading only dirty blocks.

use std::sync::OnceLock;

/// The reflected CRC-32 (IEEE) polynomial.
const POLY: u32 = 0xEDB8_8320;

fn tables() -> &'static [[u32; 256]; 8] {
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, slot) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        for k in 1..8 {
            for i in 0..256usize {
                let prev = t[k - 1][i];
                t[k][i] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            }
        }
        t
    })
}

/// Computes the CRC-32 (IEEE) of `data` one byte at a time — the
/// reference kernel. Prefer [`crc32`]; this exists so tests can prove
/// the fast kernel equivalent and the microbench can quantify the
/// speedup.
pub fn crc32_bytewise(data: &[u8]) -> u32 {
    let t = &tables()[0];
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Computes the CRC-32 (IEEE) of `data` with a slice-by-8 kernel.
///
/// # Example
///
/// ```
/// use wtnc_db::crc32;
///
/// // Standard check value for "123456789".
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let t = tables();
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][((lo >> 24) & 0xFF) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][((hi >> 24) & 0xFF) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// CRC combination (zlib's gf2-matrix technique).
//
// A CRC is linear over GF(2): appending `len2` bytes of zeroes to a
// message transforms its CRC by a fixed 32×32 bit-matrix that depends
// only on `len2`. crc(A ‖ B) is then shift(crc(A), |B|) ^ crc(B).
// ---------------------------------------------------------------------------

/// A 32×32 GF(2) matrix: column `i` is the image of bit `i`.
type Gf2Matrix = [u32; 32];

fn gf2_matrix_times(mat: &Gf2Matrix, mut vec: u32) -> u32 {
    let mut sum = 0u32;
    let mut i = 0;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

fn gf2_matrix_square(square: &mut Gf2Matrix, mat: &Gf2Matrix) {
    for i in 0..32 {
        square[i] = gf2_matrix_times(mat, mat[i]);
    }
}

/// The linear operator advancing a CRC across `len` zero bytes.
///
/// Building one costs a handful of 32×32 matrix squarings; applying it
/// is 32 XORs. The incremental static-data audit builds the operator
/// for its block size once and reuses it for every fold step, which is
/// what makes per-block CRC folding cheaper than re-hashing the bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32Shift {
    mat: Gf2Matrix,
    len: usize,
}

impl Crc32Shift {
    /// Builds the shift operator for `len` bytes.
    pub fn new(len: usize) -> Self {
        // The operator for one zero *bit* (the register shifts right;
        // a popped 1-bit folds the polynomial back in).
        let mut span: Gf2Matrix = [0; 32];
        span[0] = POLY;
        let mut row = 1u32;
        for entry in span.iter_mut().skip(1) {
            *entry = row;
            row <<= 1;
        }
        // Identity operator (len == 0 must be a no-op).
        let mut acc: Gf2Matrix = [0; 32];
        for (i, entry) in acc.iter_mut().enumerate() {
            *entry = 1u32 << i;
        }
        // Square-and-multiply over the bit length.
        let mut bits = (len as u64) * 8;
        while bits != 0 {
            if bits & 1 != 0 {
                let mut next: Gf2Matrix = [0; 32];
                for (i, entry) in next.iter_mut().enumerate() {
                    *entry = gf2_matrix_times(&span, acc[i]);
                }
                acc = next;
            }
            bits >>= 1;
            if bits != 0 {
                let mut sq: Gf2Matrix = [0; 32];
                gf2_matrix_square(&mut sq, &span);
                span = sq;
            }
        }
        Crc32Shift { mat: acc, len }
    }

    /// The byte length this operator advances across.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when this is the zero-length (identity) operator.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `crc32(A ‖ B)` from `crc1 = crc32(A)` and `crc2 = crc32(B)`,
    /// where `B` is exactly [`Crc32Shift::len`] bytes long.
    pub fn combine(&self, crc1: u32, crc2: u32) -> u32 {
        if self.len == 0 {
            return crc1;
        }
        // Undo / redo the final complement so the pure linear shift
        // applies to the raw register value.
        gf2_matrix_times(&self.mat, crc1) ^ crc2
    }
}

/// Combines `crc1 = crc32(A)` and `crc2 = crc32(B)` into
/// `crc32(A ‖ B)`, where `len2` is the byte length of `B`.
///
/// # Example
///
/// ```
/// use wtnc_db::{crc32, crc32_combine};
///
/// let (a, b) = (b"1234".as_slice(), b"56789".as_slice());
/// assert_eq!(crc32_combine(crc32(a), crc32(b), b.len()), crc32(b"123456789"));
/// ```
pub fn crc32_combine(crc1: u32, crc2: u32, len2: usize) -> u32 {
    Crc32Shift::new(len2).combine(crc1, crc2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn bytewise_and_slice8_agree() {
        let mut data = Vec::new();
        let mut x = 0x1234_5678u32;
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 255, 256, 1024, 4093] {
            data.clear();
            for _ in 0..len {
                x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                data.push((x >> 24) as u8);
            }
            assert_eq!(crc32(&data), crc32_bytewise(&data), "len {len}");
        }
    }

    #[test]
    fn detects_every_single_bit_flip_in_small_buffer() {
        let base = [0x5Au8; 64];
        let golden = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut corrupted = base;
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), golden, "missed flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(crc32(b"ab"), crc32(b"ba"));
    }

    #[test]
    fn combine_equals_whole_buffer_crc() {
        let data: Vec<u8> = (0..1500u32).map(|i| (i.wrapping_mul(37) >> 3) as u8).collect();
        for split in [0usize, 1, 8, 255, 256, 257, 749, 1499, 1500] {
            let (a, b) = data.split_at(split);
            assert_eq!(crc32_combine(crc32(a), crc32(b), b.len()), crc32(&data), "split {split}");
        }
    }

    #[test]
    fn shift_operator_folds_many_blocks() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i ^ (i >> 5)) as u8).collect();
        let block = 256usize;
        let shift = Crc32Shift::new(block);
        assert_eq!(shift.len(), block);
        let mut folded = 0u32;
        let mut first = true;
        for chunk in data.chunks(block) {
            let c = crc32(chunk);
            folded = if first {
                first = false;
                c
            } else {
                shift.combine(folded, c)
            };
        }
        assert_eq!(folded, crc32(&data));
    }

    #[test]
    fn combine_with_empty_suffix_is_identity() {
        let c = crc32(b"hello");
        assert_eq!(crc32_combine(c, crc32(b""), 0), c);
    }
}
