//! Events the database API sends to the audit process.
//!
//! "The database API is modified to send a message to the audit process
//! whenever any API function is called. The message contains the client
//! process ID information and the database location being accessed."
//! (§4.2)

use serde::{Deserialize, Serialize};
use wtnc_sim::{Pid, SimTime};

use crate::catalog::TableId;

/// Which API primitive produced an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DbOp {
    /// `DBinit`
    Init,
    /// `DBclose`
    Close,
    /// `DBread_rec`
    ReadRec,
    /// `DBread_fld`
    ReadFld,
    /// `DBwrite_rec`
    WriteRec,
    /// `DBwrite_fld`
    WriteFld,
    /// `DBmove`
    Move,
    /// Record allocation (a write-class internal operation).
    Alloc,
    /// Record free (a write-class internal operation).
    Free,
}

impl DbOp {
    /// True for operations that mutate the database — the event class
    /// the paper uses to trigger event-driven audits ("database write
    /// in the current implementation").
    pub fn is_write(self) -> bool {
        matches!(self, DbOp::WriteRec | DbOp::WriteFld | DbOp::Move | DbOp::Alloc | DbOp::Free)
    }
}

/// A message on the IPC queue between the DB API and the audit process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DbEvent {
    /// When the API call happened.
    pub at: SimTime,
    /// The calling client.
    pub pid: Pid,
    /// Which primitive was called.
    pub op: DbOp,
    /// Table accessed, when the operation names one.
    pub table: Option<TableId>,
    /// Record index accessed, when the operation names one.
    pub record: Option<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_classification() {
        assert!(DbOp::WriteRec.is_write());
        assert!(DbOp::WriteFld.is_write());
        assert!(DbOp::Move.is_write());
        assert!(DbOp::Alloc.is_write());
        assert!(DbOp::Free.is_write());
        assert!(!DbOp::ReadRec.is_write());
        assert!(!DbOp::ReadFld.is_write());
        assert!(!DbOp::Init.is_write());
        assert!(!DbOp::Close.is_write());
    }

    #[test]
    fn event_carries_location() {
        let ev = DbEvent {
            at: SimTime::from_secs(1),
            pid: Pid(3),
            op: DbOp::WriteFld,
            table: Some(TableId(2)),
            record: Some(7),
        };
        assert_eq!(ev.table, Some(TableId(2)));
        assert_eq!(ev.record, Some(7));
    }
}
