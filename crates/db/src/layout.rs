//! Byte-level layout constants and helpers for the database region.
//!
//! The structural audit (§4.3.2 of the paper) works because "the
//! structure of the database ... is established by header fields that
//! precede the data portion in every record of each table", and because
//! "the correct record ID can be inferred from the offset within the
//! database". These constants pin down that contract.

/// Magic number at the start of the in-region system catalog.
pub const CATALOG_MAGIC: u32 = 0xC0DE_D00D;

/// Size of the catalog header, in bytes.
pub const CATALOG_HEADER_SIZE: usize = 16;

/// Size of one in-region table descriptor, in bytes.
pub const TABLE_DESC_SIZE: usize = 32;

/// Size of one in-region field descriptor, in bytes.
///
/// Range metadata (min/max/default) is stored as 32-bit values, so
/// 64-bit fields cannot carry range rules — the catalog builder
/// enforces this.
pub const FIELD_DESC_SIZE: usize = 24;

/// Size of the header that precedes the data portion of every record.
pub const RECORD_HEADER_SIZE: usize = 12;

/// Status byte marking a free (unallocated) record slot.
pub const STATUS_FREE: u8 = 0x00;

/// Status byte marking an active record.
pub const STATUS_ACTIVE: u8 = 0xA5;

/// Sentinel index meaning "no neighbour" in logical-group links.
pub const LINK_NONE: u16 = 0xFFFF;

/// Byte offset of the 32-bit record identifier within a record header.
pub const HDR_RECORD_ID: usize = 0;

/// Byte offset of the status byte within a record header.
pub const HDR_STATUS: usize = 4;

/// Byte offset of the logical-group byte within a record header.
pub const HDR_GROUP: usize = 5;

/// Byte offset of the 16-bit next-in-group link within a record header.
pub const HDR_NEXT: usize = 6;

/// Byte offset of the 16-bit previous-in-group link within a record
/// header.
pub const HDR_PREV: usize = 8;

/// Encodes the record identifier stored in (and recomputable for) every
/// record header: the table id in the top bits, the record index in the
/// low 20 bits.
///
/// # Example
///
/// ```
/// use wtnc_db::layout::{decode_record_id, encode_record_id};
///
/// let id = encode_record_id(3, 17);
/// assert_eq!(decode_record_id(id), (3, 17));
/// ```
pub const fn encode_record_id(table_id: u16, index: u32) -> u32 {
    ((table_id as u32) << 20) | (index & 0x000F_FFFF)
}

/// Decodes a record identifier into `(table_id, index)`.
pub const fn decode_record_id(id: u32) -> (u16, u32) {
    ((id >> 20) as u16, id & 0x000F_FFFF)
}

/// Reads a little-endian unsigned integer of `width` bytes (1, 2, 4 or
/// 8) from `bytes`.
///
/// # Panics
///
/// Panics if `bytes.len() < width` or `width` is not one of 1/2/4/8.
pub fn read_le(bytes: &[u8], width: usize) -> u64 {
    match width {
        1 => bytes[0] as u64,
        2 => u16::from_le_bytes([bytes[0], bytes[1]]) as u64,
        4 => u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as u64,
        8 => u64::from_le_bytes(bytes[..8].try_into().expect("width checked")),
        _ => panic!("unsupported field width {width}"),
    }
}

/// Writes the low `width` bytes of `value` little-endian into `bytes`.
///
/// # Panics
///
/// Panics if `bytes.len() < width` or `width` is not one of 1/2/4/8.
pub fn write_le(bytes: &mut [u8], width: usize, value: u64) {
    match width {
        1 => bytes[0] = value as u8,
        2 => bytes[..2].copy_from_slice(&(value as u16).to_le_bytes()),
        4 => bytes[..4].copy_from_slice(&(value as u32).to_le_bytes()),
        8 => bytes[..8].copy_from_slice(&value.to_le_bytes()),
        _ => panic!("unsupported field width {width}"),
    }
}

/// Rounds `n` up to the next multiple of `align` (a power of two).
pub const fn align_up(n: usize, align: usize) -> usize {
    (n + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_id_round_trip() {
        for table in [0u16, 1, 7, 0xFFF] {
            for index in [0u32, 1, 1_000, 0x000F_FFFF] {
                assert_eq!(decode_record_id(encode_record_id(table, index)), (table, index));
            }
        }
    }

    #[test]
    fn record_id_masks_overflowing_index() {
        let id = encode_record_id(1, 0xFFFF_FFFF);
        assert_eq!(decode_record_id(id), (1, 0x000F_FFFF));
    }

    #[test]
    fn le_round_trip_all_widths() {
        let mut buf = [0u8; 8];
        for (width, value) in
            [(1usize, 0xABu64), (2, 0xBEEF), (4, 0xDEAD_BEEF), (8, 0x0123_4567_89AB_CDEF)]
        {
            write_le(&mut buf, width, value);
            assert_eq!(read_le(&buf, width), value);
        }
    }

    #[test]
    fn le_truncates_to_width() {
        let mut buf = [0u8; 8];
        write_le(&mut buf, 1, 0x1FF);
        assert_eq!(read_le(&buf, 1), 0xFF);
    }

    #[test]
    #[should_panic(expected = "unsupported field width")]
    fn odd_width_panics() {
        read_le(&[0u8; 8], 3);
    }

    #[test]
    fn align_up_works() {
        assert_eq!(align_up(0, 8), 0);
        assert_eq!(align_up(1, 8), 8);
        assert_eq!(align_up(8, 8), 8);
        assert_eq!(align_up(9, 4), 12);
    }
}
