//! Error type for database operations.

use std::error::Error;
use std::fmt;

use crate::catalog::{FieldId, TableId};

/// Errors returned by the database and its client API.
///
/// `CatalogCorrupt` deserves a note: the API validates the in-region
/// system catalog on every operation (magic number, bounds), so a bit
/// flip landing in the catalog surfaces here — "errors in the system
/// catalog can cause all database operations to fail" (§3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// The in-region system catalog failed validation.
    CatalogCorrupt {
        /// What the validator objected to.
        reason: &'static str,
    },
    /// No table with this identifier exists.
    UnknownTable(TableId),
    /// No field with this identifier exists in the table.
    UnknownField(TableId, FieldId),
    /// Record index outside the table's pre-allocated range.
    BadRecordIndex {
        /// Table being accessed.
        table: TableId,
        /// Requested record index.
        index: u32,
        /// Number of records the table holds.
        capacity: u32,
    },
    /// The operation needs an active record but the slot is free.
    RecordFree(TableId, u32),
    /// Allocation failed: every slot in the table is active.
    TableFull(TableId),
    /// The record is locked by another client.
    LockHeld {
        /// Table of the contested record.
        table: TableId,
        /// Index of the contested record.
        index: u32,
        /// Client holding the lock.
        holder: wtnc_sim::Pid,
    },
    /// The client never called `DBinit` (or already called `DBclose`).
    NotConnected(wtnc_sim::Pid),
    /// A byte-level access fell outside the database region.
    OutOfBounds {
        /// Offending offset.
        offset: usize,
        /// Length of the attempted access.
        len: usize,
        /// Size of the region.
        region: usize,
    },
    /// A schema under construction was rejected.
    BadSchema(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::CatalogCorrupt { reason } => {
                write!(f, "system catalog failed validation: {reason}")
            }
            DbError::UnknownTable(t) => write!(f, "unknown table {}", t.0),
            DbError::UnknownField(t, fid) => {
                write!(f, "unknown field {} in table {}", fid.0, t.0)
            }
            DbError::BadRecordIndex { table, index, capacity } => write!(
                f,
                "record index {index} out of range for table {} (capacity {capacity})",
                table.0
            ),
            DbError::RecordFree(t, i) => {
                write!(f, "record {i} in table {} is not active", t.0)
            }
            DbError::TableFull(t) => write!(f, "table {} has no free records", t.0),
            DbError::LockHeld { table, index, holder } => {
                write!(f, "record {index} in table {} is locked by {holder}", table.0)
            }
            DbError::NotConnected(pid) => {
                write!(f, "client {pid} has no open database connection")
            }
            DbError::OutOfBounds { offset, len, region } => write!(
                f,
                "access of {len} bytes at offset {offset} exceeds region of {region} bytes"
            ),
            DbError::BadSchema(msg) => write!(f, "invalid schema: {msg}"),
        }
    }
}

impl Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;
    use wtnc_sim::Pid;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let samples: Vec<DbError> = vec![
            DbError::CatalogCorrupt { reason: "bad magic" },
            DbError::UnknownTable(TableId(3)),
            DbError::UnknownField(TableId(3), FieldId(9)),
            DbError::BadRecordIndex { table: TableId(1), index: 99, capacity: 8 },
            DbError::RecordFree(TableId(1), 2),
            DbError::TableFull(TableId(4)),
            DbError::LockHeld { table: TableId(1), index: 0, holder: Pid(5) },
            DbError::NotConnected(Pid(5)),
            DbError::OutOfBounds { offset: 10, len: 4, region: 8 },
            DbError::BadSchema("empty".into()),
        ];
        for err in samples {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'), "no trailing punctuation: {msg}");
            let first = msg.chars().next().unwrap();
            assert!(first.is_lowercase() || first.is_numeric(), "lowercase start: {msg}");
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error<E: Error + Send + Sync + 'static>(_e: E) {}
        takes_error(DbError::TableFull(TableId(0)));
    }
}
