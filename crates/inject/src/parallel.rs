//! Deterministic parallel execution of independent campaign runs.
//!
//! Every run is seeded up front, so distributing runs across worker
//! threads changes wall-clock time but not a single result: the output
//! vector is indexed by run, not by completion order.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Executes `f(index, seed)` for every seed, spread over up to
/// `max_workers` OS threads (clamped to the number of seeds), and
/// returns the results in seed order.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn run_seeded<R, F>(seeds: &[u64], max_workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, u64) -> R + Sync,
{
    let n = seeds.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = max_workers.clamp(1, n);
    if workers == 1 {
        return seeds.iter().enumerate().map(|(i, &s)| f(i, s)).collect();
    }

    // Workers pull the next run off a shared counter and tag each
    // result with its run index; one sort by index afterwards restores
    // seed order regardless of completion order.
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut acc = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        acc.push((i, f(i, seeds[i])));
                    }
                    acc
                })
            })
            .collect();
        for h in handles {
            indexed.extend(h.join().expect("campaign worker panicked"));
        }
    });

    indexed.sort_unstable_by_key(|&(i, _)| i);
    debug_assert!(indexed.iter().enumerate().all(|(k, &(i, _))| k == i), "every run ran once");
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// A reasonable worker count for campaign runs: the `WTNC_WORKERS`
/// environment variable when set to a positive integer, otherwise the
/// machine's available parallelism.
pub fn default_workers() -> usize {
    if let Some(n) = std::env::var("WTNC_WORKERS").ok().and_then(|s| s.parse::<usize>().ok()) {
        if n >= 1 {
            return n;
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_seed_order() {
        let seeds: Vec<u64> = (0..57).collect();
        let out = run_seeded(&seeds, 8, |i, s| {
            // Uneven work so completion order scrambles.
            std::thread::sleep(std::time::Duration::from_micros((s % 7) * 50));
            (i, s * 2)
        });
        for (i, (idx, doubled)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*doubled, seeds[i] * 2);
        }
    }

    #[test]
    fn seed_order_survives_reversed_completion_order() {
        // Early runs sleep longest, so with many workers the *last*
        // seeds complete first — the strongest scramble of completion
        // order the merge must undo.
        let seeds: Vec<u64> = (0..24).map(|i| i * 3 + 1).collect();
        let n = seeds.len();
        let out = run_seeded(&seeds, 8, |i, s| {
            std::thread::sleep(std::time::Duration::from_micros(((n - i) as u64) * 120));
            (i as u64) << 32 | s
        });
        let expected: Vec<u64> =
            seeds.iter().enumerate().map(|(i, &s)| (i as u64) << 32 | s).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn parallel_equals_serial() {
        let seeds: Vec<u64> = (100..160).collect();
        let serial = run_seeded(&seeds, 1, |i, s| s.wrapping_mul(31).wrapping_add(i as u64));
        let parallel = run_seeded(&seeds, 6, |i, s| s.wrapping_mul(31).wrapping_add(i as u64));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single() {
        let out: Vec<u64> = run_seeded(&[], 4, |_, s| s);
        assert!(out.is_empty());
        let out = run_seeded(&[9], 4, |_, s| s + 1);
        assert_eq!(out, vec![10]);
        assert!(default_workers() >= 1);
    }
}
