//! Power-fail injection campaign against the durable store.
//!
//! The other campaigns corrupt memory or processes; this one attacks
//! the *durable* state `wtnc-store` maintains on disk. Each run drives
//! a seeded mutation workload through a journaled + checkpointed
//! database, then simulates a power failure or tampering event against
//! the store directory, reopens it cold, and performs warm recovery.
//! The recovered image is compared against the harness's mutation
//! timeline — a hash of the database after *every individual journal
//! record* (not every operation: one operation can emit several
//! records, and a torn write can land between them) — and classified
//! onto the extended Table 7 taxonomy:
//!
//! * [`RunOutcome::AuditDetection`] — the damage was detected (store
//!   findings reported) and recovery still reproduced the **exact**
//!   pre-failure image (a stale or broken checkpoint the full journal
//!   carried forward);
//! * [`RunOutcome::DetectedRepaired`] — the damage was detected and
//!   recovery restored a consistent **prefix** of the timeline (the
//!   fsynced history up to the torn or corrupt journal record);
//! * [`RunOutcome::NotManifested`] — the recovered image is exact and
//!   nothing was (or needed to be) reported;
//! * [`RunOutcome::FailSilenceViolation`] — the store recovered an
//!   image that is *not* on the timeline, or silently lost history
//!   without reporting a finding. The acceptance bar is **zero** such
//!   runs.

use serde::{Deserialize, Serialize};
use wtnc_db::{schema, Database, DbError, RecordRef};
use wtnc_sim::SimRng;
use wtnc_store::{ScratchDir, SipHasher24, Store, StoreConfig, JOURNAL_FILE};

use crate::outcome::{OutcomeCounts, RunOutcome};

/// The power-fail / tampering models (rows of the campaign table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerFailModel {
    /// Power fails while the newest checkpoint is being written: the
    /// file is truncated at a random byte.
    TornCheckpoint,
    /// Power fails during a journal append: the journal is truncated
    /// mid-record at a random cut.
    JournalTruncation,
    /// Bit rot or tampering inside the journal: one random bit flips.
    JournalCorruption,
    /// The newest checkpoint's content is tampered with while the full
    /// journal survives — recovery must fall back to an older golden
    /// image and carry it forward.
    StaleCheckpoint,
    /// A historical checkpoint is deleted, breaking the golden-image
    /// hash chain.
    ChainBreak,
    /// Power fails while a *delta* checkpoint is being written: the
    /// workload runs with `full_every = 3` and the newest `.delta`
    /// file is truncated at a random byte. Recovery must fall back to
    /// an earlier candidate and let the journal carry it forward.
    TornDeltaCheckpoint,
    /// Power fails in the middle of a journal compaction: the store is
    /// compacted mid-run, then the crash leaves a half-written
    /// rotation tmp file next to a journal torn inside a record.
    CompactionCrash,
}

impl PowerFailModel {
    /// Every model, in campaign-table order.
    pub const ALL: [PowerFailModel; 7] = [
        PowerFailModel::TornCheckpoint,
        PowerFailModel::JournalTruncation,
        PowerFailModel::JournalCorruption,
        PowerFailModel::StaleCheckpoint,
        PowerFailModel::ChainBreak,
        PowerFailModel::TornDeltaCheckpoint,
        PowerFailModel::CompactionCrash,
    ];

    /// Stable snake_case name (JSON column key).
    pub fn name(self) -> &'static str {
        match self {
            PowerFailModel::TornCheckpoint => "torn_checkpoint",
            PowerFailModel::JournalTruncation => "journal_truncation",
            PowerFailModel::JournalCorruption => "journal_corruption",
            PowerFailModel::StaleCheckpoint => "stale_checkpoint",
            PowerFailModel::ChainBreak => "chain_break",
            PowerFailModel::TornDeltaCheckpoint => "torn_delta_checkpoint",
            PowerFailModel::CompactionCrash => "compaction_crash",
        }
    }

    /// Store configuration the model's workload runs under: the delta
    /// and compaction models exercise the incremental checkpoint path
    /// (`full_every = 3`), the original five keep the always-full
    /// default.
    fn store_config(self) -> StoreConfig {
        match self {
            PowerFailModel::TornDeltaCheckpoint | PowerFailModel::CompactionCrash => {
                StoreConfig { full_every: 3, ..StoreConfig::default() }
            }
            _ => StoreConfig::default(),
        }
    }
}

/// Configuration of one power-fail run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PowerFailConfig {
    /// Workload length in mutation steps.
    pub mutations: usize,
    /// Journal sync (fsync) interval, in steps.
    pub sync_every: usize,
    /// Checkpoint interval, in steps.
    pub checkpoint_every: usize,
    /// The fault model.
    pub model: PowerFailModel,
    /// Campaign seed (each run forks its own).
    pub seed: u64,
}

impl Default for PowerFailConfig {
    fn default() -> Self {
        PowerFailConfig {
            // Deliberately not a multiple of `checkpoint_every`: the
            // journal tail past the last checkpoint is what a torn or
            // corrupt journal can actually cost.
            mutations: 130,
            sync_every: 4,
            checkpoint_every: 40,
            model: PowerFailModel::JournalTruncation,
            seed: 0xD15C_0BEE,
        }
    }
}

/// Result of one power-fail run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerFailRunResult {
    /// Faults injected (always 1: one failure event per run).
    pub injected: u64,
    /// Outcome tally for this run.
    pub outcomes: OutcomeCounts,
    /// Store findings reported across open + recovery.
    pub findings: u64,
    /// Checkpoint generation recovery restarted from.
    pub base_gen: u64,
    /// Journal records replayed on top of the base image.
    pub replayed: u64,
    /// Journal records the workload wrote before the failure.
    pub journal_records: u64,
    /// Whether recovery reproduced the exact pre-failure image.
    pub recovered_exact: bool,
}

/// Aggregated campaign result.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PowerFailCampaignResult {
    /// Total failure events injected.
    pub injected: u64,
    /// Outcome tally across all runs.
    pub outcomes: OutcomeCounts,
    /// Total findings reported.
    pub findings: u64,
    /// Total records replayed.
    pub replayed: u64,
    /// Runs whose recovery reproduced the exact pre-failure image.
    pub exact_recoveries: u64,
}

fn image_hash(region: &[u8], golden: &[u8]) -> u64 {
    let mut h = SipHasher24::new(b"wtnc-powerfail-k");
    h.write(region);
    h.write(golden);
    h.finish()
}

/// One random workload step against the raw record API. Steps that hit
/// a full or empty table fall through to a plain field write so every
/// step mutates something.
fn workload_step(db: &mut Database, rng: &mut SimRng, live: &mut Vec<u32>) -> Result<(), DbError> {
    let table = schema::CONNECTION_TABLE;
    match rng.index(4) {
        0 => match db.alloc_record_raw(table) {
            Ok(idx) => {
                live.push(idx);
                db.write_field_raw(
                    RecordRef::new(table, idx),
                    schema::connection::CALLER_ID,
                    rng.range_u64(0, 99_999),
                )?;
                Ok(())
            }
            Err(DbError::TableFull(_)) if !live.is_empty() => {
                let idx = live.swap_remove(rng.index(live.len()));
                db.free_record_raw(RecordRef::new(table, idx))
            }
            Err(e) => Err(e),
        },
        1 if !live.is_empty() => {
            let idx = live.swap_remove(rng.index(live.len()));
            db.free_record_raw(RecordRef::new(table, idx))
        }
        _ if !live.is_empty() => {
            let idx = live[rng.index(live.len())];
            db.write_field_raw(
                RecordRef::new(table, idx),
                schema::connection::STATE,
                rng.range_u64(0, 4),
            )
        }
        _ => {
            // Empty table: mutate a channel-config field instead.
            db.write_field_raw(
                RecordRef::new(schema::CHANNEL_CONFIG_TABLE, 0),
                schema::channel_config::FREQ_KHZ,
                rng.range_u64(800_000, 900_000),
            )
        }
    }
}

/// Journal record boundaries (byte offset of each frame start plus the
/// final end offset), for picking a deliberately mid-record cut.
fn record_boundaries(journal: &[u8]) -> Vec<usize> {
    let mut bounds = vec![0usize];
    let mut at = 0usize;
    while at + 8 <= journal.len() {
        let len = u32::from_le_bytes(journal[at..at + 4].try_into().expect("4 bytes")) as usize;
        if at + 8 + len > journal.len() {
            break;
        }
        at += 8 + len;
        bounds.push(at);
    }
    bounds
}

fn mutilate(dir: &std::path::Path, model: PowerFailModel, rng: &mut SimRng) {
    let mut ckpts: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .expect("store dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .and_then(wtnc_store::parse_checkpoint_file_name)
                .is_some()
        })
        .collect();
    ckpts.sort();
    let journal_path = dir.join(JOURNAL_FILE);
    match model {
        PowerFailModel::TornCheckpoint => {
            let path = ckpts.last().expect("at least one checkpoint");
            let bytes = std::fs::read(path).expect("read checkpoint");
            let cut = rng.index(bytes.len().max(1));
            std::fs::write(path, &bytes[..cut]).expect("truncate checkpoint");
        }
        PowerFailModel::JournalTruncation => {
            let bytes = std::fs::read(&journal_path).expect("read journal");
            let bounds = record_boundaries(&bytes);
            // Cut strictly inside a record so fsynced history is lost,
            // not merely trimmed at a clean boundary.
            let rec = rng.index(bounds.len() - 1);
            let (start, end) = (bounds[rec], bounds[rec + 1]);
            let cut = start + 1 + rng.index(end - start - 1);
            std::fs::write(&journal_path, &bytes[..cut]).expect("truncate journal");
        }
        PowerFailModel::JournalCorruption => {
            let mut bytes = std::fs::read(&journal_path).expect("read journal");
            let at = rng.index(bytes.len());
            bytes[at] ^= 1 << rng.index(8);
            std::fs::write(&journal_path, &bytes).expect("corrupt journal");
        }
        PowerFailModel::StaleCheckpoint => {
            let path = ckpts.last().expect("at least one checkpoint");
            let mut bytes = std::fs::read(path).expect("read checkpoint");
            // Flip a bit inside the image content (between the header
            // and the MAC table): bytes [52, 52 + region + golden).
            let word = |at: usize| {
                u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes")) as usize
            };
            let content_len = word(12 + 16) + word(12 + 24);
            let at = 52 + rng.index(content_len);
            bytes[at] ^= 1 << rng.index(8);
            std::fs::write(path, &bytes).expect("tamper checkpoint");
        }
        PowerFailModel::ChainBreak => {
            // Delete a historical (non-newest when possible) link.
            let victim =
                if ckpts.len() > 1 { &ckpts[rng.index(ckpts.len() - 1)] } else { &ckpts[0] };
            std::fs::remove_file(victim).expect("delete checkpoint");
        }
        PowerFailModel::TornDeltaCheckpoint => {
            let mut deltas: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
                .expect("store dir")
                .map(|e| e.expect("dir entry").path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .and_then(wtnc_store::parse_delta_file_name)
                        .is_some()
                })
                .collect();
            deltas.sort();
            let path = deltas.last().expect("at least one delta checkpoint");
            let bytes = std::fs::read(path).expect("read delta");
            let cut = rng.index(bytes.len().max(1));
            std::fs::write(path, &bytes[..cut]).expect("truncate delta");
        }
        PowerFailModel::CompactionCrash => {
            // Crash mid-rotation: a half-written tmp journal stranded
            // next to the live one, whose own tail is torn inside a
            // record (the append that raced the rotation).
            std::fs::write(dir.join(wtnc_store::JOURNAL_TMP_FILE), b"half-written rotation")
                .expect("strand tmp journal");
            let bytes = std::fs::read(&journal_path).expect("read journal");
            let bounds = record_boundaries(&bytes);
            if bounds.len() > 1 {
                let rec = rng.index(bounds.len() - 1);
                let (start, end) = (bounds[rec], bounds[rec + 1]);
                let cut = start + 1 + rng.index(end - start - 1);
                std::fs::write(&journal_path, &bytes[..cut]).expect("truncate journal");
            } else {
                std::fs::write(&journal_path, &bytes[..bytes.len() / 2]).expect("truncate journal");
            }
        }
    }
}

/// One run: seeded workload → power failure → cold reopen → warm
/// recovery → classification against the mutation timeline.
pub fn run_once(config: &PowerFailConfig, seed: u64) -> PowerFailRunResult {
    let mut rng = SimRng::seed_from(seed);
    let scratch = ScratchDir::new(&format!("powerfail-{seed:016x}"));
    let store_config = config.model.store_config();

    // Phase 1: the journaled workload, with the harness shadow-applying
    // every captured record to build the timeline of consistent states.
    let mut db = Database::build(schema::standard_schema()).expect("standard schema");
    let mut shadow_region = db.region().to_vec();
    let mut shadow_golden = db.golden().to_vec();
    let mut timeline = vec![image_hash(&shadow_region, &shadow_golden)];
    let mut journal_records = 0u64;
    {
        let mut store = Store::open(scratch.path(), store_config).expect("open store");
        store.attach(&mut db);
        let mut live = Vec::new();
        let mut drain = |db: &mut Database, store: &mut Store, journal_records: &mut u64| {
            let records = db.take_captured();
            for m in &records {
                let target = if m.golden { &mut shadow_golden } else { &mut shadow_region };
                let end = (m.offset + m.bytes.len()).min(target.len());
                target[m.offset..end].copy_from_slice(&m.bytes[..end - m.offset]);
                timeline.push(image_hash(&shadow_region, &shadow_golden));
            }
            *journal_records += records.len() as u64;
            store.append_records(&records).expect("journal append");
        };
        for step in 1..=config.mutations {
            workload_step(&mut db, &mut rng, &mut live).expect("workload step");
            if step % config.sync_every.max(1) == 0 {
                drain(&mut db, &mut store, &mut journal_records);
            }
            if step % config.checkpoint_every.max(1) == 0 {
                drain(&mut db, &mut store, &mut journal_records);
                store.checkpoint(&mut db).expect("checkpoint");
                // The compaction-crash model compacts mid-run (at the
                // second checkpoint) so the later crash tears a journal
                // that has already been rotated once.
                if config.model == PowerFailModel::CompactionCrash
                    && step == config.checkpoint_every.max(1) * 2
                {
                    store.compact().expect("compact");
                }
            }
        }
        drain(&mut db, &mut store, &mut journal_records);
    }

    // Phase 2: the power failure / tampering event.
    mutilate(scratch.path(), config.model, &mut rng);

    // Phase 3: cold reopen and warm recovery.
    let mut recovered = Database::build(schema::standard_schema()).expect("standard schema");
    let mut store = Store::open(scratch.path(), store_config).expect("reopen store");
    let info = store.recover_into(&mut recovered).expect("recovery never errors");

    // Phase 4: classification.
    let hash = image_hash(recovered.region(), recovered.golden());
    let exact = hash == *timeline.last().expect("timeline nonempty");
    let on_timeline = timeline.contains(&hash);
    let detected = !info.findings.is_empty();
    let outcome = match (exact, on_timeline, detected) {
        (true, _, true) => RunOutcome::AuditDetection,
        (false, true, true) => RunOutcome::DetectedRepaired,
        (true, _, false) => RunOutcome::NotManifested,
        _ => RunOutcome::FailSilenceViolation,
    };
    let mut outcomes = OutcomeCounts::new();
    outcomes.record(outcome);
    PowerFailRunResult {
        injected: 1,
        outcomes,
        findings: info.findings.len() as u64,
        base_gen: info.base_gen,
        replayed: info.replayed as u64,
        journal_records,
        recovered_exact: exact,
    }
}

/// Runs `runs` independent seeded runs in parallel and sums the
/// results (deterministic: identical to a serial execution).
pub fn run_campaign(config: &PowerFailConfig, runs: usize) -> PowerFailCampaignResult {
    let mut rng = SimRng::seed_from(config.seed);
    let seeds: Vec<u64> = (0..runs).map(|_| rng.bits()).collect();
    let results =
        crate::parallel::run_seeded(&seeds, crate::parallel::default_workers(), |_, seed| {
            run_once(config, seed)
        });
    let mut total = PowerFailCampaignResult::default();
    for r in results {
        total.injected += r.injected;
        total.outcomes.merge(&r.outcomes);
        total.findings += r.findings;
        total.replayed += r.replayed;
        total.exact_recoveries += u64::from(r.recovered_exact);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(model: PowerFailModel) -> PowerFailConfig {
        PowerFailConfig { model, ..PowerFailConfig::default() }
    }

    #[test]
    fn accounting_is_complete_for_every_model() {
        for model in PowerFailModel::ALL {
            let r = run_campaign(&config(model), 4);
            assert_eq!(r.injected, 4, "{model:?}");
            assert_eq!(r.outcomes.total(), r.injected, "{model:?}: total == injected");
        }
    }

    #[test]
    fn campaigns_are_deterministic() {
        let a = run_campaign(&config(PowerFailModel::JournalCorruption), 6);
        let b = run_campaign(&config(PowerFailModel::JournalCorruption), 6);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.findings, b.findings);
        assert_eq!(a.replayed, b.replayed);
    }

    #[test]
    fn no_model_produces_a_silent_corruption_across_100_runs() {
        let mut total = PowerFailCampaignResult::default();
        for model in PowerFailModel::ALL {
            let r = run_campaign(&config(model), 15);
            assert_eq!(
                r.outcomes.count(RunOutcome::FailSilenceViolation),
                0,
                "{model:?} must never corrupt silently"
            );
            total.injected += r.injected;
            total.outcomes.merge(&r.outcomes);
        }
        assert_eq!(total.injected, 105);
        assert_eq!(total.outcomes.total(), 105);
        assert_eq!(total.outcomes.count(RunOutcome::FailSilenceViolation), 0);
    }

    #[test]
    fn stale_checkpoints_recover_exactly_via_the_journal() {
        let r = run_campaign(&config(PowerFailModel::StaleCheckpoint), 8);
        assert_eq!(r.exact_recoveries, 8, "the full journal carries an old golden forward");
        assert_eq!(r.outcomes.count(RunOutcome::AuditDetection), 8);
        assert!(r.findings >= 16, "MAC mismatch + stale fallback per run: {}", r.findings);
    }

    #[test]
    fn torn_delta_checkpoints_fall_back_and_recover_exactly() {
        let r = run_campaign(&config(PowerFailModel::TornDeltaCheckpoint), 8);
        assert_eq!(r.outcomes.count(RunOutcome::FailSilenceViolation), 0);
        assert_eq!(
            r.exact_recoveries, 8,
            "the intact journal carries the fallback base forward: {:?}",
            r.outcomes
        );
        assert_eq!(r.outcomes.count(RunOutcome::AuditDetection), 8, "every torn delta reported");
    }

    #[test]
    fn compaction_crashes_recover_a_reported_prefix() {
        let r = run_campaign(&config(PowerFailModel::CompactionCrash), 8);
        assert_eq!(r.outcomes.count(RunOutcome::FailSilenceViolation), 0);
        assert_eq!(
            r.outcomes.count(RunOutcome::DetectedRepaired)
                + r.outcomes.count(RunOutcome::AuditDetection),
            8,
            "every mid-compaction crash is reported: {:?}",
            r.outcomes
        );
        assert!(r.findings >= 8);
    }

    #[test]
    fn journal_truncation_recovers_a_reported_prefix() {
        let r = run_campaign(&config(PowerFailModel::JournalTruncation), 8);
        assert_eq!(
            r.outcomes.count(RunOutcome::DetectedRepaired)
                + r.outcomes.count(RunOutcome::AuditDetection),
            8,
            "every torn tail is reported: {:?}",
            r.outcomes
        );
        assert!(r.findings >= 8);
    }
}
