//! Database injection campaigns (§5.1, Tables 2–4 and Figure 3).
//!
//! Random bit errors are inserted into the database image at a
//! configurable inter-arrival time while the discrete-event
//! call-processing client runs; the audit subsystem (when enabled)
//! sweeps the database periodically. Each injected error's fate is
//! classified from the ground-truth taint ledger: **escaped** (the
//! client consumed it first), **caught** (an audit element repaired
//! it), or **no effect** (overwritten by a legitimate write, or latent
//! at the end of the run).

use serde::{Deserialize, Serialize};
use wtnc_audit::{AuditConfig, AuditElementKind, AuditProcess};
use wtnc_callproc::{CallHandle, DesClient, WorkloadConfig};
use wtnc_db::{schema, Database, DbApi, TaintEntry, TaintFate, TaintKind};
use wtnc_sim::stats::Accumulator;
use wtnc_sim::{EventQueue, ProcessRegistry, SimDuration, SimRng, SimTime};

/// Configuration of one database-injection run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DbCampaignConfig {
    /// Whether the audit subsystem runs.
    pub audits: bool,
    /// Run length (paper: 2000 s).
    pub duration: SimDuration,
    /// Mean error inter-arrival time (exponential; paper: 2–20 s).
    pub error_iat: SimDuration,
    /// Periodic audit interval (paper: 10 s).
    pub audit_period: SimDuration,
    /// Client workload parameters (paper Table 2).
    pub workload: WorkloadConfig,
    /// Record slots per dynamic table. Sized so the workload keeps the
    /// tables densely used, as in the production controller.
    pub slots: u32,
    /// Registers the §4.4.2 selective-monitoring element (with
    /// derived-invariant repair) over the schema's unruled attributes —
    /// the extension experiment closing part of the "lack of rule"
    /// escape category.
    pub selective_monitoring: bool,
    /// Change-aware auditing: elements consult the dirty-block bitmap
    /// and mutation generations to skip provably unchanged state. The
    /// parity property guarantees identical findings either way.
    pub incremental: bool,
    /// Worker threads for the parallel audit executor (1 = serial).
    /// The sharded screens are deterministic, so campaign results are
    /// identical for any value; only wall-clock time changes.
    pub audit_workers: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for DbCampaignConfig {
    fn default() -> Self {
        // Table 2 lists a 10 s average inter-arrival time per
        // call-processing thread; with 16 threads the paper's run
        // processes "approximately 1000 calls" in 2000 s, i.e. one
        // arrival every ~2 s globally — which is what we schedule.
        let workload = WorkloadConfig {
            interarrival_mean: SimDuration::from_secs(2),
            ..WorkloadConfig::default()
        };
        DbCampaignConfig {
            audits: true,
            duration: SimDuration::from_secs(2_000),
            error_iat: SimDuration::from_secs(20),
            audit_period: SimDuration::from_secs(10),
            workload,
            slots: 14,
            selective_monitoring: false,
            incremental: true,
            audit_workers: wtnc_audit::ParallelConfig::from_env().workers,
            seed: 0xDB01,
        }
    }
}

/// The paper's Table 4 row structure: per-error-type detection and
/// escape counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table4Breakdown {
    /// Structural errors detected (paper: 100%).
    pub structural_detected: u64,
    /// Structural errors that escaped.
    pub structural_escaped: u64,
    /// Static-data errors detected (paper: 100%).
    pub static_detected: u64,
    /// Static-data errors that escaped (catalog consumed by a failing
    /// API call).
    pub static_escaped: u64,
    /// Dynamic-data errors caught by the range check (paper: 45%).
    pub dynamic_range_detected: u64,
    /// Dynamic-data errors caught by the semantic check (paper: 34%).
    pub dynamic_semantic_detected: u64,
    /// Dynamic-data errors caught by the selective-monitoring element
    /// (extension; zero unless enabled).
    pub dynamic_selective_detected: u64,
    /// Dynamic-data errors caught by other elements (structural reload
    /// sweeps, etc.).
    pub dynamic_other_detected: u64,
    /// Dynamic-data escapes with a rule available — the audit lost the
    /// race (paper: 14%, "due to timing").
    pub dynamic_escaped_timing: u64,
    /// Dynamic-data escapes with no enforceable rule (paper: 4%).
    pub dynamic_escaped_no_rule: u64,
    /// Errors with no effect: overwritten or latent (paper: 3%).
    pub no_effect: u64,
}

/// Aggregated result of a database-injection campaign.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DbCampaignResult {
    /// Total errors injected.
    pub injected: u64,
    /// Errors that escaped to the application.
    pub escaped: u64,
    /// Errors caught (and repaired) by the audits.
    pub caught: u64,
    /// Errors overwritten by legitimate client writes.
    pub overwritten: u64,
    /// Errors still latent at the end of the run.
    pub latent: u64,
    /// Per-type breakdown (Table 4).
    pub breakdown: Table4Breakdown,
    /// Mean call setup time in milliseconds.
    pub avg_setup_ms: f64,
    /// Mean detection latency in seconds (caught errors only).
    pub detection_latency_s: f64,
    /// Calls whose setup completed across the campaign.
    pub calls: u64,
    /// Cold restarts escalated by the manager after fatal catalog
    /// corruption (full reload from disk).
    pub cold_restarts: u64,
}

impl DbCampaignResult {
    /// Escaped errors as a percentage of injections.
    pub fn escaped_pct(&self) -> f64 {
        if self.injected == 0 {
            0.0
        } else {
            100.0 * self.escaped as f64 / self.injected as f64
        }
    }

    /// Caught errors as a percentage of injections.
    pub fn caught_pct(&self) -> f64 {
        if self.injected == 0 {
            0.0
        } else {
            100.0 * self.caught as f64 / self.injected as f64
        }
    }

    /// "Other" (no-effect) errors as a percentage of injections.
    pub fn no_effect_pct(&self) -> f64 {
        if self.injected == 0 {
            0.0
        } else {
            100.0 * (self.overwritten + self.latent) as f64 / self.injected as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Arrival,
    Poll(CallHandle),
    End(CallHandle),
    AuditTick,
    Inject,
}

/// True when any in-region catalog descriptor fails validation — the
/// manager's controller-down check.
fn catalog_broken(db: &Database) -> bool {
    for tm in db.catalog().tables() {
        let entry = match wtnc_db::Catalog::read_region_entry(db.region(), tm.id) {
            Ok(e) => e,
            Err(_) => return true,
        };
        for fi in 0..tm.def.fields.len() {
            if wtnc_db::Catalog::read_region_field(
                db.region(),
                tm.id,
                &entry,
                wtnc_db::FieldId(fi as u16),
            )
            .is_err()
            {
                return true;
            }
        }
    }
    false
}

/// Runs one §5.1 experiment run and returns its result.
pub fn run_once(config: &DbCampaignConfig, seed: u64) -> DbCampaignResult {
    let mut rng = SimRng::seed_from(seed);
    let mut db =
        Database::build(schema::standard_schema_with_slots(config.slots)).expect("schema builds");
    let mut api = if config.audits { DbApi::new() } else { DbApi::without_instrumentation() };
    let mut registry = ProcessRegistry::new();
    let mut audit = config.audits.then(|| {
        let mut audit = AuditProcess::new(
            AuditConfig {
                periodic_interval: config.audit_period,
                incremental: config.incremental,
                parallel: wtnc_audit::ParallelConfig::with_workers(config.audit_workers),
                ..AuditConfig::default()
            },
            &db,
        );
        if config.selective_monitoring {
            audit.register_element(Box::new(wtnc_audit::SelectiveMonitor::new(
                wtnc_audit::SelectiveConfig {
                    suspect_fraction: 0.25,
                    min_observations: 40,
                    repair_unseen: true,
                },
                vec![
                    (schema::PROCESS_TABLE, schema::process::NAME_ID),
                    (schema::CONNECTION_TABLE, schema::connection::BILLING_UNITS),
                    (schema::RESOURCE_TABLE, schema::resource::POWER_MW),
                ],
            )));
        }
        audit
    });
    let mut client = DesClient::new(config.workload, rng.bits(), config.audits);

    let mut queue: EventQueue<Ev> = EventQueue::new();
    queue.schedule(SimTime::ZERO + client.next_arrival_gap(), Ev::Arrival);
    queue.schedule(SimTime::ZERO + rng.exponential(config.error_iat), Ev::Inject);
    if config.audits {
        queue.schedule(SimTime::ZERO + config.audit_period, Ev::AuditTick);
    }

    let mut injected: u64 = 0;
    let mut next_taint_id: u64 = 1;
    let mut cold_restarts: u64 = 0;
    let end_of_run = SimTime::ZERO + config.duration;

    while let Some(at) = queue.peek_time() {
        if at > end_of_run {
            break;
        }
        let (now, ev) = queue.pop().expect("peeked");
        match ev {
            Ev::Arrival => {
                match client.start_call(&mut db, &mut api, &mut registry, now) {
                    Some((handle, setup)) => {
                        let call_duration = client.next_call_duration();
                        queue.schedule(now + setup + call_duration, Ev::End(handle));
                        queue.schedule(now + setup + client.config().poll_period, Ev::Poll(handle));
                    }
                    None => {
                        // Fatal catalog corruption takes the whole
                        // controller down; the manager escalates to a
                        // cold restart (full reload from disk). Errors
                        // swept away by the reload never reached the
                        // application: no effect.
                        if catalog_broken(&db) {
                            // Reload the descriptor area from disk;
                            // call state survives the warm restart.
                            let len = db.catalog().catalog_len();
                            db.reload_range(0, len).expect("catalog within region");
                            db.taint_mut().resolve_range(
                                0,
                                len,
                                TaintFate::Overwritten { at: now },
                            );
                            cold_restarts += 1;
                        }
                    }
                }
                queue.schedule(now + client.next_arrival_gap(), Ev::Arrival);
            }
            Ev::Poll(handle) => {
                if client.poll_call(&mut db, &mut api, &registry, handle, now) {
                    queue.schedule(now + client.config().poll_period, Ev::Poll(handle));
                }
            }
            Ev::End(handle) => {
                client.end_call(&mut db, &mut api, &mut registry, handle, now);
            }
            Ev::AuditTick => {
                if let Some(audit) = audit.as_mut() {
                    audit.run_cycle(&mut db, &mut api, &mut registry, now);
                }
                queue.schedule(now + config.audit_period, Ev::AuditTick);
            }
            Ev::Inject => {
                let offset = rng.index(db.region_len());
                let bit = (rng.bits() % 8) as u8;
                let kind = db.classify_injection(offset, bit);
                db.flip_bit(offset, bit).expect("offset within region");
                db.taint_mut().insert(offset, TaintEntry { id: next_taint_id, at: now, kind });
                next_taint_id += 1;
                injected += 1;
                queue.schedule(now + rng.exponential(config.error_iat), Ev::Inject);
            }
        }
    }

    let mut result = classify(&db, audit.as_ref(), &client, injected);
    result.cold_restarts = cold_restarts;
    result
}

/// Classifies the run's taints into the campaign result.
fn classify(
    db: &Database,
    audit: Option<&AuditProcess>,
    client: &DesClient,
    injected: u64,
) -> DbCampaignResult {
    let mut result = DbCampaignResult {
        injected,
        avg_setup_ms: client.stats().setup_time.mean(),
        calls: client.stats().calls_completed_setup,
        ..DbCampaignResult::default()
    };
    let mut latency = Accumulator::new();

    // Element attribution by taint id.
    let caught_by: std::collections::HashMap<u64, AuditElementKind> = audit
        .map(|a| a.catch_log().iter().map(|&(entry, kind, _)| (entry.id, kind)).collect())
        .unwrap_or_default();
    let caught_at: std::collections::HashMap<u64, SimTime> = audit
        .map(|a| a.catch_log().iter().map(|&(entry, _, at)| (entry.id, at)).collect())
        .unwrap_or_default();

    for &(_offset, entry, fate) in db.taint().resolved() {
        match fate {
            TaintFate::Caught { at } => {
                result.caught += 1;
                let when = caught_at.get(&entry.id).copied().unwrap_or(at);
                latency.push(when.saturating_since(entry.at).as_secs_f64());
                match (entry.kind, caught_by.get(&entry.id)) {
                    (TaintKind::Structural, _) => result.breakdown.structural_detected += 1,
                    (TaintKind::StaticData, _) => result.breakdown.static_detected += 1,
                    (_, Some(AuditElementKind::Range)) => {
                        result.breakdown.dynamic_range_detected += 1
                    }
                    (_, Some(AuditElementKind::Semantic)) => {
                        result.breakdown.dynamic_semantic_detected += 1
                    }
                    (_, Some(AuditElementKind::Selective)) => {
                        result.breakdown.dynamic_selective_detected += 1
                    }
                    _ => result.breakdown.dynamic_other_detected += 1,
                }
            }
            TaintFate::Escaped { .. } => {
                result.escaped += 1;
                match entry.kind {
                    TaintKind::Structural => result.breakdown.structural_escaped += 1,
                    TaintKind::StaticData => result.breakdown.static_escaped += 1,
                    TaintKind::DynamicRuled | TaintKind::Slack => {
                        result.breakdown.dynamic_escaped_timing += 1
                    }
                    TaintKind::DynamicUnruled => result.breakdown.dynamic_escaped_no_rule += 1,
                }
            }
            TaintFate::Overwritten { .. } => {
                result.overwritten += 1;
                result.breakdown.no_effect += 1;
            }
        }
    }
    result.latent = db.taint().latent_count() as u64;
    result.breakdown.no_effect += result.latent;
    result.detection_latency_s = latency.mean();
    result
}

/// Runs `runs` independent runs and sums the results (the paper uses
/// 30 runs per configuration). Runs execute in parallel across cores;
/// results are identical to a serial execution.
pub fn run_campaign(config: &DbCampaignConfig, runs: usize) -> DbCampaignResult {
    let mut rng = SimRng::seed_from(config.seed);
    let seeds: Vec<u64> = (0..runs).map(|_| rng.bits()).collect();
    let results =
        crate::parallel::run_seeded(&seeds, crate::parallel::default_workers(), |_, seed| {
            run_once(config, seed)
        });
    let mut total = DbCampaignResult::default();
    let mut setup = Accumulator::new();
    let mut latency = Accumulator::new();
    for r in results {
        total.injected += r.injected;
        total.escaped += r.escaped;
        total.caught += r.caught;
        total.overwritten += r.overwritten;
        total.latent += r.latent;
        total.calls += r.calls;
        total.cold_restarts += r.cold_restarts;
        let b = &mut total.breakdown;
        let o = &r.breakdown;
        b.structural_detected += o.structural_detected;
        b.structural_escaped += o.structural_escaped;
        b.static_detected += o.static_detected;
        b.static_escaped += o.static_escaped;
        b.dynamic_range_detected += o.dynamic_range_detected;
        b.dynamic_semantic_detected += o.dynamic_semantic_detected;
        b.dynamic_selective_detected += o.dynamic_selective_detected;
        b.dynamic_other_detected += o.dynamic_other_detected;
        b.dynamic_escaped_timing += o.dynamic_escaped_timing;
        b.dynamic_escaped_no_rule += o.dynamic_escaped_no_rule;
        b.no_effect += o.no_effect;
        if r.calls > 0 {
            setup.push(r.avg_setup_ms);
        }
        if r.caught > 0 {
            latency.push(r.detection_latency_s);
        }
    }
    total.avg_setup_ms = setup.mean();
    total.detection_latency_s = latency.mean();
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short(audits: bool, error_iat_secs: u64) -> DbCampaignConfig {
        DbCampaignConfig {
            audits,
            duration: SimDuration::from_secs(300),
            error_iat: SimDuration::from_secs(error_iat_secs),
            ..DbCampaignConfig::default()
        }
    }

    #[test]
    fn audits_reduce_escapes_substantially() {
        let with = run_campaign(&short(true, 10), 4);
        let without = run_campaign(&short(false, 10), 4);
        assert!(with.injected > 50, "enough errors injected: {}", with.injected);
        assert!(with.caught > 0, "audits catch something");
        assert!(
            with.escaped_pct() < without.escaped_pct(),
            "with audits {}% !< without {}%",
            with.escaped_pct(),
            without.escaped_pct()
        );
        // Paper shape: roughly 5x reduction (63% -> 13%); allow slack.
        assert!(
            with.escaped_pct() < 0.6 * without.escaped_pct(),
            "with {}%, without {}%",
            with.escaped_pct(),
            without.escaped_pct()
        );
        // Latent errors shrink too (37% -> 2% in the paper).
        let latent_with = with.latent as f64 / with.injected as f64;
        let latent_without = without.latent as f64 / without.injected as f64;
        assert!(latent_with < latent_without);
    }

    #[test]
    fn without_audits_nothing_is_caught() {
        let r = run_campaign(&short(false, 10), 2);
        assert_eq!(r.caught, 0);
        assert_eq!(r.injected, r.escaped + r.overwritten + r.latent);
    }

    #[test]
    fn accounting_is_complete() {
        let r = run_campaign(&short(true, 10), 2);
        assert_eq!(r.injected, r.escaped + r.caught + r.overwritten + r.latent);
        let b = &r.breakdown;
        assert_eq!(
            r.caught,
            b.structural_detected
                + b.static_detected
                + b.dynamic_range_detected
                + b.dynamic_semantic_detected
                + b.dynamic_selective_detected
                + b.dynamic_other_detected
        );
        assert_eq!(
            r.escaped,
            b.structural_escaped
                + b.static_escaped
                + b.dynamic_escaped_timing
                + b.dynamic_escaped_no_rule
        );
        assert_eq!(r.overwritten + r.latent, b.no_effect);
    }

    #[test]
    fn setup_time_rises_with_audits() {
        let with = run_campaign(&short(true, 20), 2);
        let without = run_campaign(&short(false, 20), 2);
        assert!(with.calls > 0 && without.calls > 0);
        assert!(
            with.avg_setup_ms > without.avg_setup_ms,
            "with {} !> without {}",
            with.avg_setup_ms,
            without.avg_setup_ms
        );
    }

    #[test]
    fn higher_error_rate_more_escapes() {
        let slow = run_campaign(&short(true, 20), 3);
        let fast = run_campaign(&short(true, 2), 3);
        assert!(fast.injected > 3 * slow.injected);
        assert!(fast.escaped > slow.escaped, "fast {} !> slow {}", fast.escaped, slow.escaped);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_once(&short(true, 10), 77);
        let b = run_once(&short(true, 10), 77);
        assert_eq!(a.injected, b.injected);
        assert_eq!(a.escaped, b.escaped);
        assert_eq!(a.caught, b.caught);
    }
}
