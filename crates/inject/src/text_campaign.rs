//! Text-segment injection campaigns (§6.1.2–6.1.4, Tables 8 and 9).
//!
//! Methodology, after NFTAPE: a breakpoint is armed on one text
//! address; when a thread is about to execute it, the word is
//! corrupted per the error model, the thread executes the erroneous
//! instruction, and the word is then restored. Runs whose breakpoint
//! is never reached are classified *not activated*. The four
//! campaigns — {without, with} PECOS × {without, with} audit — run the
//! same multi-threaded ISA call-processing client against the real
//! controller database.

use serde::{Deserialize, Serialize};
use wtnc_callproc::{AsmClientConfig, BridgeStats, DbSyscallBridge};
use wtnc_db::{Database, DbApi};
use wtnc_isa::{decode, Engine, Machine, MachineConfig, StepOutcome, ThreadState};
use wtnc_pecos::{handle_exception, instrument, PecosMeta, PecosVerdict};
use wtnc_sim::{Pid, ProcessRegistry, SimRng, SimTime};

use crate::models::ErrorModel;
use crate::outcome::{OutcomeCounts, RunOutcome};

/// Where injections land.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectionTarget {
    /// Only control-flow instructions (the paper's "directed injection
    /// to control flow instructions").
    DirectedCfi,
    /// Any word of the text segment ("random injection to the
    /// instruction stream").
    RandomText,
}

/// Configuration of one campaign cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TextCampaignConfig {
    /// PECOS instrumentation on the client.
    pub pecos: bool,
    /// Audit subsystem running against the database.
    pub audits: bool,
    /// The error model.
    pub model: ErrorModel,
    /// Target selection.
    pub target: InjectionTarget,
    /// Runs in this cell.
    pub runs: usize,
    /// Client threads.
    pub threads: usize,
    /// Client loop iterations per thread.
    pub iterations: u16,
    /// Machine steps between audit cycles (1 step = 1 µs of simulated
    /// time).
    pub audit_every_steps: u64,
    /// Step budget before a run is declared hung.
    pub step_budget: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Run the client on the machine's predecoded fast path. Outcomes
    /// are identical either way (the engines are semantics-preserving);
    /// `false` exists for parity testing and overhead benchmarks.
    #[serde(default = "default_fast_path")]
    pub fast_path: bool,
    /// Explicit engine selection, overriding `fast_path` when set
    /// (same precedence as [`MachineConfig::effective_engine`]). Lets
    /// parity campaigns pin all three engines individually.
    #[serde(default)]
    pub engine: Option<Engine>,
}

fn default_fast_path() -> bool {
    true
}

impl Default for TextCampaignConfig {
    fn default() -> Self {
        TextCampaignConfig {
            pecos: true,
            audits: true,
            model: ErrorModel::Datainf,
            target: InjectionTarget::RandomText,
            runs: 200,
            threads: 4,
            iterations: 24,
            audit_every_steps: 4_000,
            step_budget: 400_000,
            seed: 0xD5A1,
            fast_path: default_fast_path(),
            engine: None,
        }
    }
}

/// Result of one campaign cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TextCampaignResult {
    /// The configuration that produced it.
    pub config: TextCampaignConfig,
    /// The outcome tally.
    pub counts: OutcomeCounts,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FirstEvent {
    Pecos,
    Audit,
    System,
    Fsv,
}

/// Runs one injection run and classifies it.
pub fn run_one(config: &TextCampaignConfig, seed: u64) -> RunOutcome {
    let mut rng = SimRng::seed_from(seed);
    let client_cfg =
        AsmClientConfig { iterations: config.iterations, ..AsmClientConfig::default() };
    let source = client_cfg.program_source();
    let (program, meta): (_, Option<PecosMeta>) = if config.pecos {
        let asm = wtnc_isa::asm::Assembly::parse(&source).expect("client parses");
        let inst = instrument(&asm).expect("client instruments");
        (inst.program, Some(inst.meta))
    } else {
        (wtnc_isa::asm::assemble_source(&source).expect("client assembles"), None)
    };

    let mut db = Database::build(wtnc_db::schema::standard_schema()).expect("schema builds");
    let mut api = if config.audits { DbApi::new() } else { DbApi::without_instrumentation() };
    let mut registry = ProcessRegistry::new();
    let mut audit = config.audits.then(|| {
        wtnc_audit::AuditProcess::new(
            wtnc_audit::AuditConfig {
                periodic_interval: wtnc_sim::SimDuration::from_micros(config.audit_every_steps),
                ..wtnc_audit::AuditConfig::default()
            },
            &db,
        )
    });

    let machine_cfg = MachineConfig {
        fast_path: config.fast_path,
        engine: config.engine,
        ..MachineConfig::default()
    };
    let mut machine = Machine::load(&program, machine_cfg);
    if machine.engine() != Engine::Slow {
        if let Some(m) = &meta {
            m.install_fast_path(&mut machine);
        }
    }
    let mut pids: Vec<Pid> = Vec::with_capacity(config.threads);
    for _ in 0..config.threads {
        let pid = registry.spawn("asm-client", SimTime::ZERO);
        api.init(pid);
        pids.push(pid);
        machine.spawn_thread(program.entry);
    }

    // Choose the breakpoint target.
    let candidates: Vec<usize> = match config.target {
        InjectionTarget::DirectedCfi => (0..program.text.len())
            .filter(|&a| decode(program.text[a]).map(|i| i.is_cfi()).unwrap_or(false))
            .collect(),
        InjectionTarget::RandomText => (0..program.text.len()).collect(),
    };
    let target = candidates[rng.index(candidates.len())];
    let corrupted_word = config.model.corrupt(&program.text, target, &mut rng);
    let original_word = program.text[target];
    // Breakpoint placement: for a PECOS-protected CFI the corruption
    // must be in place when its assertion block reads the instruction
    // bits, so the breakpoint sits at the entry of the protection
    // region (assertion start); otherwise at the target itself.
    let trigger = match &meta {
        Some(m) => m
            .assertion_block_for_cfi(target as u16)
            .map(|(start, _)| start as usize)
            .unwrap_or(target),
        None => target,
    };
    if corrupted_word == original_word {
        // The model happened to be identity (e.g. ADDIF landing on an
        // identical word): nothing to observe.
        return RunOutcome::NotManifested;
    }

    let mut stats = BridgeStats::default();
    let mut injected = false; // breakpoint fired, word corrupted
    let mut restored = false;
    let mut injecting_thread: Option<usize> = None;
    let mut activated = false;
    let mut first_event: Option<FirstEvent> = None;
    let mut last_fsv: u64 = 0;
    let mut crashed = false;

    let mut steps: u64 = 0;
    'run: while steps < config.step_budget {
        if !machine.has_runnable() {
            break;
        }
        // One batch between audit cycles.
        let batch_end = steps + config.audit_every_steps;
        {
            let mut bridge = DbSyscallBridge::new(&mut db, &mut api, &pids, &mut stats);
            while steps < batch_end && steps < config.step_budget {
                bridge.set_now(SimTime::from_micros(steps));
                // Breakpoint: corrupt just before first execution.
                if !injected {
                    if let Some((tid, pc)) = machine.peek_next() {
                        if pc as usize == trigger {
                            machine.store_text(target, corrupted_word);
                            injected = true;
                            injecting_thread = Some(tid);
                        }
                    }
                }
                let out = machine.step(&mut bridge);
                steps += 1;
                match out {
                    StepOutcome::Executed { thread, pc } => {
                        if injected && !restored && pc as usize == target {
                            activated = true;
                            if Some(thread) == injecting_thread {
                                machine.store_text(target, original_word);
                                restored = true;
                            }
                        }
                    }
                    StepOutcome::Exception(info) => {
                        // (The verdict handling below marks the error
                        // activated for every exception path.)
                        if injected
                            && !restored
                            && info.pc as usize == target
                            && Some(info.thread) == injecting_thread
                        {
                            machine.store_text(target, original_word);
                            restored = true;
                        }
                        let verdict = match &meta {
                            Some(m) => handle_exception(&mut machine, m, info),
                            None => PecosVerdict::SystemFault,
                        };
                        match verdict {
                            PecosVerdict::PecosDetected => {
                                activated = true;
                                first_event.get_or_insert(FirstEvent::Pecos);
                                // The erroneous word may still be armed;
                                // restore so other threads proceed
                                // cleanly once the detection is counted.
                                if injected && !restored {
                                    machine.store_text(target, original_word);
                                    restored = true;
                                }
                            }
                            PecosVerdict::SystemFault => {
                                activated = true;
                                first_event.get_or_insert(FirstEvent::System);
                                crashed = true;
                                break 'run;
                            }
                        }
                    }
                    StepOutcome::Idle => break,
                }
                // Fail-silence flags are timestamped by polling the
                // bridge counter.
                let fsv_now = bridge.stats().total_fsv();
                if fsv_now > last_fsv {
                    last_fsv = fsv_now;
                    if injected {
                        activated = true;
                    }
                    first_event.get_or_insert(FirstEvent::Fsv);
                }
            }
        }
        // Audit cycle between batches.
        if let Some(audit) = audit.as_mut() {
            let now = SimTime::from_micros(steps);
            let report = audit.run_cycle(&mut db, &mut api, &mut registry, now);
            if !report.findings.is_empty() {
                if injected {
                    activated = true;
                }
                first_event.get_or_insert(FirstEvent::Audit);
                // Apply thread terminations to the machine: a client
                // thread whose pid the audit killed stops running.
                for (tid, pid) in pids.iter().enumerate() {
                    if !registry.is_alive(*pid)
                        && machine.thread_state(tid) == ThreadState::Runnable
                    {
                        machine.kill_thread(tid);
                    }
                }
            }
        }
    }

    if !injected {
        return RunOutcome::NotActivated;
    }
    if let Some(event) = first_event {
        return match event {
            FirstEvent::Pecos => RunOutcome::PecosDetection,
            FirstEvent::Audit => RunOutcome::AuditDetection,
            FirstEvent::System => RunOutcome::SystemDetection,
            FirstEvent::Fsv => RunOutcome::FailSilenceViolation,
        };
    }
    if !activated {
        return RunOutcome::NotActivated;
    }
    if steps >= config.step_budget && machine.has_runnable() && !crashed {
        return RunOutcome::ClientHang;
    }
    // The run ended quietly: the paper requires the success message for
    // "not manifested"; silent early termination counts as a hang.
    if stats.all_completed(config.threads) {
        RunOutcome::NotManifested
    } else {
        RunOutcome::ClientHang
    }
}

/// Runs a whole campaign cell, distributing the (independently
/// seeded) runs over the machine's cores. Results are identical to a
/// serial execution.
pub fn run_campaign(config: &TextCampaignConfig) -> TextCampaignResult {
    let mut rng = SimRng::seed_from(config.seed);
    let seeds: Vec<u64> = (0..config.runs).map(|_| rng.bits()).collect();
    let outcomes =
        crate::parallel::run_seeded(&seeds, crate::parallel::default_workers(), |_, seed| {
            run_one(config, seed)
        });
    let mut counts = OutcomeCounts::new();
    for outcome in outcomes {
        counts.record(outcome);
    }
    TextCampaignResult { config: *config, counts }
}

/// The paper's four campaign columns over all four error models:
/// (campaign name, merged tally). `target` picks Table 8 (directed)
/// or Table 9 (random).
pub fn four_column_table(
    target: InjectionTarget,
    runs_per_cell: usize,
    threads: usize,
    iterations: u16,
    seed: u64,
) -> Vec<(String, OutcomeCounts)> {
    let columns = [
        ("Without PECOS / Without Audit", false, false),
        ("Without PECOS / With Audit", false, true),
        ("With PECOS / Without Audit", true, false),
        ("With PECOS / With Audit", true, true),
    ];
    columns
        .iter()
        .map(|&(name, pecos, audits)| {
            let mut merged = OutcomeCounts::new();
            for (mi, &model) in ErrorModel::ALL.iter().enumerate() {
                let config = TextCampaignConfig {
                    pecos,
                    audits,
                    model,
                    target,
                    runs: runs_per_cell,
                    threads,
                    iterations,
                    // The seed depends only on the error model, so the
                    // four configuration columns face *paired*
                    // injections (same targets, same corruptions) —
                    // the comparison isolates the protection, not the
                    // draw.
                    seed: seed.wrapping_add(mi as u64 * 7919),
                    ..TextCampaignConfig::default()
                };
                merged.merge(&run_campaign(&config).counts);
            }
            (name.to_owned(), merged)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(
        pecos: bool,
        audits: bool,
        target: InjectionTarget,
        model: ErrorModel,
    ) -> TextCampaignConfig {
        TextCampaignConfig {
            pecos,
            audits,
            model,
            target,
            runs: 40,
            threads: 2,
            iterations: 8,
            audit_every_steps: 2_000,
            step_budget: 200_000,
            seed: 0xBEEF,
            fast_path: true,
            engine: None,
        }
    }

    #[test]
    fn clean_run_without_injection_effect_is_not_manifested_or_not_activated() {
        // A run whose corruption equals the original cannot happen via
        // Datainf (always flips a bit); instead verify a full campaign
        // is classifiable.
        let config = small(false, false, InjectionTarget::RandomText, ErrorModel::Datainf);
        let result = run_campaign(&config);
        assert_eq!(result.counts.total(), 40);
    }

    #[test]
    fn pecos_detects_directed_cfi_errors() {
        let config = small(true, false, InjectionTarget::DirectedCfi, ErrorModel::Dataof);
        let result = run_campaign(&config);
        let pecos = result.counts.count(RunOutcome::PecosDetection);
        let system = result.counts.count(RunOutcome::SystemDetection);
        let activated = result.counts.activated();
        assert!(activated > 10, "directed CFIs should be reached: {result:?}");
        assert!(
            pecos > system,
            "PECOS should dominate crash detection for directed operand errors \
             (pecos {pecos}, system {system})"
        );
    }

    #[test]
    fn without_pecos_directed_errors_mostly_crash_or_pass() {
        let config = small(false, false, InjectionTarget::DirectedCfi, ErrorModel::Dataof);
        let result = run_campaign(&config);
        assert_eq!(result.counts.count(RunOutcome::PecosDetection), 0);
        assert!(result.counts.activated() > 10);
    }

    #[test]
    fn pecos_reduces_system_detection() {
        let without =
            run_campaign(&small(false, false, InjectionTarget::DirectedCfi, ErrorModel::Datainf));
        let with =
            run_campaign(&small(true, false, InjectionTarget::DirectedCfi, ErrorModel::Datainf));
        let crash_rate = |r: &TextCampaignResult| {
            r.counts.proportion_of_activated(RunOutcome::SystemDetection).estimate()
        };
        assert!(
            crash_rate(&with) < crash_rate(&without),
            "with {} !< without {}",
            crash_rate(&with),
            crash_rate(&without)
        );
    }

    #[test]
    fn audit_detection_appears_only_with_audits() {
        let config = small(false, false, InjectionTarget::RandomText, ErrorModel::Dataof);
        let result = run_campaign(&config);
        assert_eq!(result.counts.count(RunOutcome::AuditDetection), 0);
    }

    #[test]
    fn run_one_is_deterministic_for_a_seed() {
        let config = small(true, true, InjectionTarget::RandomText, ErrorModel::Datainf);
        let a = run_one(&config, 1234);
        let b = run_one(&config, 1234);
        assert_eq!(a, b);
    }
}
