//! Injection campaign driving the staged recovery engine.
//!
//! The database campaign (§5.1) lets each audit element repair inline.
//! This harness runs the same workload and error process with the
//! audit subsystem in *detect-only* mode and the
//! [`RecoveryEngine`](wtnc_recovery::RecoveryEngine) consuming the
//! flagged findings: repairs execute under a per-cycle token budget,
//! escalate along the ladder when verification fails, and every
//! successful repair is verified by re-running the originating audit
//! element. Each injected error is classified into the extended
//! outcome table ([`RunOutcome::DetectedRepaired`],
//! [`RunOutcome::RepairFailed`]), and the engine's busy time stalls
//! call arrivals — which is how the per-cycle budget translates into
//! graceful (rather than total) throughput degradation under a
//! corruption storm.

use serde::{Deserialize, Serialize};
use wtnc_audit::{AuditConfig, AuditProcess};
use wtnc_callproc::{CallHandle, DesClient, WorkloadConfig};
use wtnc_db::{schema, DbApi, TaintEntry, TaintFate};
use wtnc_recovery::{RecoveryConfig, RecoveryEngine, RepairLogEntry, RepairOutcome};
use wtnc_sim::stats::Accumulator;
use wtnc_sim::{EventQueue, ProcessRegistry, SimDuration, SimRng, SimTime};

use crate::outcome::{OutcomeCounts, RunOutcome};

/// Configuration of one recovery-campaign run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryCampaignConfig {
    /// Run length.
    pub duration: SimDuration,
    /// Mean error inter-arrival time (exponential).
    pub error_iat: SimDuration,
    /// Periodic audit interval.
    pub audit_period: SimDuration,
    /// Client workload parameters.
    pub workload: WorkloadConfig,
    /// Record slots per dynamic table.
    pub slots: u32,
    /// Engine configuration (budget, ladder costs, verification).
    pub recovery: RecoveryConfig,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for RecoveryCampaignConfig {
    fn default() -> Self {
        let workload = WorkloadConfig {
            interarrival_mean: SimDuration::from_secs(2),
            ..WorkloadConfig::default()
        };
        RecoveryCampaignConfig {
            duration: SimDuration::from_secs(2_000),
            error_iat: SimDuration::from_secs(20),
            audit_period: SimDuration::from_secs(10),
            workload,
            slots: 14,
            recovery: RecoveryConfig::default(),
            seed: 0x4EC0,
        }
    }
}

/// Result of one recovery-campaign run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RecoveryRunResult {
    /// Errors injected.
    pub injected: u64,
    /// Per-error outcome tally (extended Table 7).
    pub outcomes: OutcomeCounts,
    /// Repair attempts executed by the engine.
    pub attempted: u64,
    /// Repairs closed with a clean verification re-run.
    pub verified: u64,
    /// Repairs closed as failures at the top of the ladder.
    pub failed: u64,
    /// Ladder escalations.
    pub escalations: u64,
    /// Budget tokens spent.
    pub tokens_spent: u64,
    /// Controller restarts executed by the top rung.
    pub controller_restarts: u64,
    /// Mean repair latency (detection to closed finding), virtual
    /// seconds.
    pub repair_latency_s: f64,
    /// Controller busy time consumed by repairs, virtual seconds.
    pub repair_busy_s: f64,
    /// Calls whose setup completed.
    pub calls: u64,
    /// Mean call setup time in milliseconds.
    pub avg_setup_ms: f64,
    /// The engine's deterministic repair log (same seed → identical
    /// log).
    pub log: Vec<RepairLogEntry>,
}

/// Aggregated result of many runs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RecoveryCampaignResult {
    /// Errors injected across all runs.
    pub injected: u64,
    /// Merged outcome tally.
    pub outcomes: OutcomeCounts,
    /// Repair attempts across all runs.
    pub attempted: u64,
    /// Verified repairs across all runs.
    pub verified: u64,
    /// Failed repairs across all runs.
    pub failed: u64,
    /// Escalations across all runs.
    pub escalations: u64,
    /// Tokens spent across all runs.
    pub tokens_spent: u64,
    /// Controller restarts across all runs.
    pub controller_restarts: u64,
    /// Mean of per-run mean repair latencies, virtual seconds.
    pub repair_latency_s: f64,
    /// Calls completed across all runs.
    pub calls: u64,
    /// Mean of per-run mean setup times, milliseconds.
    pub avg_setup_ms: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Arrival,
    Poll(CallHandle),
    End(CallHandle),
    AuditTick,
    Inject,
}

/// Runs one recovery-campaign run and returns its result.
pub fn run_once(config: &RecoveryCampaignConfig, seed: u64) -> RecoveryRunResult {
    let mut rng = SimRng::seed_from(seed);
    let mut db = wtnc_db::Database::build(schema::standard_schema_with_slots(config.slots))
        .expect("schema builds");
    let mut api = DbApi::new();
    let mut registry = ProcessRegistry::new();
    let mut audit = AuditProcess::new(
        AuditConfig { periodic_interval: config.audit_period, ..AuditConfig::default() },
        &db,
    );
    audit.set_deferred_repair(true);
    let mut engine = RecoveryEngine::new(config.recovery);
    let mut client = DesClient::new(config.workload, rng.bits(), true);

    let mut queue: EventQueue<Ev> = EventQueue::new();
    queue.schedule(SimTime::ZERO + client.next_arrival_gap(), Ev::Arrival);
    queue.schedule(SimTime::ZERO + rng.exponential(config.error_iat), Ev::Inject);
    queue.schedule(SimTime::ZERO + config.audit_period, Ev::AuditTick);

    let mut injected: u64 = 0;
    let mut next_taint_id: u64 = 1;
    // Repairs consume controller time; arrivals stall (not drop) until
    // the engine's busy window has passed.
    let mut busy_until = SimTime::ZERO;
    let end_of_run = SimTime::ZERO + config.duration;

    while let Some(at) = queue.peek_time() {
        if at > end_of_run {
            break;
        }
        let (now, ev) = queue.pop().expect("peeked");
        match ev {
            Ev::Arrival => {
                if now < busy_until {
                    queue.schedule(busy_until, Ev::Arrival);
                    continue;
                }
                if let Some((handle, setup)) =
                    client.start_call(&mut db, &mut api, &mut registry, now)
                {
                    let call_duration = client.next_call_duration();
                    queue.schedule(now + setup + call_duration, Ev::End(handle));
                    queue.schedule(now + setup + client.config().poll_period, Ev::Poll(handle));
                }
                queue.schedule(now + client.next_arrival_gap(), Ev::Arrival);
            }
            Ev::Poll(handle) => {
                if client.poll_call(&mut db, &mut api, &registry, handle, now) {
                    queue.schedule(now + client.config().poll_period, Ev::Poll(handle));
                }
            }
            Ev::End(handle) => {
                client.end_call(&mut db, &mut api, &mut registry, handle, now);
            }
            Ev::AuditTick => {
                let report = audit.run_cycle(&mut db, &mut api, &mut registry, now);
                engine.ingest(&report.findings, now);
                let outcome = engine.run_cycle(&mut db, &mut api, &mut registry, &mut audit, now);
                let stalled = now + outcome.busy;
                if stalled > busy_until {
                    busy_until = stalled;
                }
                queue.schedule(now + config.audit_period, Ev::AuditTick);
            }
            Ev::Inject => {
                let offset = rng.index(db.region_len());
                let bit = (rng.bits() % 8) as u8;
                let kind = db.classify_injection(offset, bit);
                db.flip_bit(offset, bit).expect("offset within region");
                db.taint_mut().insert(offset, TaintEntry { id: next_taint_id, at: now, kind });
                next_taint_id += 1;
                injected += 1;
                queue.schedule(now + rng.exponential(config.error_iat), Ev::Inject);
            }
        }
    }

    classify(&db, &engine, &client, injected)
}

/// Maps every injected error's fate to an extended-table outcome.
fn classify(
    db: &wtnc_db::Database,
    engine: &RecoveryEngine,
    client: &DesClient,
    injected: u64,
) -> RecoveryRunResult {
    // Final repair disposition per ground-truth taint id: the last log
    // entry whose repair removed that taint. `Failed` means even the
    // top rung never passed verification.
    let mut disposition: std::collections::HashMap<u64, RepairOutcome> =
        std::collections::HashMap::new();
    for entry in engine.log() {
        for &id in &entry.caught {
            disposition.insert(id, entry.outcome);
        }
    }

    let mut outcomes = OutcomeCounts::new();
    for &(_offset, entry, fate) in db.taint().resolved() {
        let outcome = match fate {
            TaintFate::Caught { .. } => match disposition.get(&entry.id) {
                Some(RepairOutcome::Failed) => RunOutcome::RepairFailed,
                // Verified, unverified, or removed by a repair that
                // later escalated for other damage: the corruption is
                // gone either way.
                Some(_) => RunOutcome::DetectedRepaired,
                // Caught outside the engine (e.g. a restart sweep).
                None => RunOutcome::AuditDetection,
            },
            TaintFate::Escaped { .. } => RunOutcome::FailSilenceViolation,
            TaintFate::Overwritten { .. } => RunOutcome::NotManifested,
        };
        outcomes.record(outcome);
    }
    // Latent at end of run: never touched detection or the client.
    for _ in 0..db.taint().latent_count() {
        outcomes.record(RunOutcome::NotActivated);
    }

    let stats = engine.stats();
    RecoveryRunResult {
        injected,
        outcomes,
        attempted: stats.attempted,
        verified: stats.verified,
        failed: stats.failed,
        escalations: stats.escalations,
        tokens_spent: stats.tokens_spent,
        controller_restarts: stats.controller_restarts,
        repair_latency_s: stats.mean_latency_s(),
        repair_busy_s: engine.config().token_time.as_secs_f64() * stats.tokens_spent as f64,
        calls: client.stats().calls_completed_setup,
        avg_setup_ms: client.stats().setup_time.mean(),
        log: engine.log().to_vec(),
    }
}

/// Runs `runs` independent runs in parallel and sums the results
/// (deterministic: identical to a serial execution).
pub fn run_campaign(config: &RecoveryCampaignConfig, runs: usize) -> RecoveryCampaignResult {
    let mut rng = SimRng::seed_from(config.seed);
    let seeds: Vec<u64> = (0..runs).map(|_| rng.bits()).collect();
    let results =
        crate::parallel::run_seeded(&seeds, crate::parallel::default_workers(), |_, seed| {
            run_once(config, seed)
        });
    let mut total = RecoveryCampaignResult::default();
    let mut setup = Accumulator::new();
    let mut latency = Accumulator::new();
    for r in results {
        total.injected += r.injected;
        total.outcomes.merge(&r.outcomes);
        total.attempted += r.attempted;
        total.verified += r.verified;
        total.failed += r.failed;
        total.escalations += r.escalations;
        total.tokens_spent += r.tokens_spent;
        total.controller_restarts += r.controller_restarts;
        total.calls += r.calls;
        if r.calls > 0 {
            setup.push(r.avg_setup_ms);
        }
        if r.verified > 0 {
            latency.push(r.repair_latency_s);
        }
    }
    total.avg_setup_ms = setup.mean();
    total.repair_latency_s = latency.mean();
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short(error_iat_secs: u64) -> RecoveryCampaignConfig {
        RecoveryCampaignConfig {
            duration: SimDuration::from_secs(300),
            error_iat: SimDuration::from_secs(error_iat_secs),
            ..RecoveryCampaignConfig::default()
        }
    }

    #[test]
    fn campaign_repairs_and_verifies() {
        let r = run_campaign(&short(10), 3);
        assert!(r.injected > 30, "enough errors injected: {}", r.injected);
        assert!(r.outcomes.count(RunOutcome::DetectedRepaired) > 0, "repairs verified: {r:?}");
        assert!(r.verified > 0);
        assert!(r.tokens_spent > 0);
        assert!(r.repair_latency_s >= 0.0);
    }

    #[test]
    fn accounting_is_complete() {
        let r = run_once(&short(10), 42);
        assert_eq!(r.outcomes.total(), r.injected);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_once(&short(5), 77);
        let b = run_once(&short(5), 77);
        assert_eq!(a.log, b.log, "repair logs differ under the same seed");
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.calls, b.calls);
    }

    #[test]
    fn tight_budget_defers_but_still_repairs() {
        let tight = RecoveryCampaignConfig {
            recovery: RecoveryConfig { cycle_budget: 4, ..RecoveryConfig::default() },
            ..short(5)
        };
        let r = run_campaign(&tight, 2);
        assert!(r.outcomes.count(RunOutcome::DetectedRepaired) > 0);
        assert!(r.calls > 0, "call processing survives the storm");
    }
}
