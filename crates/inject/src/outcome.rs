//! Outcome classification (paper Table 7).

use std::fmt;

use serde::{Deserialize, Serialize};
use wtnc_sim::stats::Proportion;

/// The possible results of one error-injection run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RunOutcome {
    /// The erroneous instruction was never reached; the run is
    /// discarded from further analysis.
    NotActivated,
    /// The erroneous instruction executed but the application behaved
    /// correctly.
    NotManifested,
    /// A PECOS assertion block caught the error before any other
    /// detection or result.
    PecosDetection,
    /// An audit element caught an error in the database first.
    AuditDetection,
    /// The "operating system" caught the error (illegal instruction,
    /// memory fault, unhandled exception) and the client crashed.
    SystemDetection,
    /// The client stopped making progress (dead- or livelock).
    ClientHang,
    /// The client wrote incorrect data to the shared database — the
    /// major error-propagation channel.
    FailSilenceViolation,
    /// The recovery engine repaired the detected error and the
    /// originating audit element verified the repair (the audit loop
    /// closed end to end).
    DetectedRepaired,
    /// The recovery engine attempted a repair but it never passed
    /// verification, even at the top of the escalation ladder.
    RepairFailed,
}

impl RunOutcome {
    /// The categories in the paper's table order, extended with the
    /// recovery-engine classes.
    pub const ALL: [RunOutcome; 9] = [
        RunOutcome::NotActivated,
        RunOutcome::NotManifested,
        RunOutcome::PecosDetection,
        RunOutcome::AuditDetection,
        RunOutcome::SystemDetection,
        RunOutcome::ClientHang,
        RunOutcome::FailSilenceViolation,
        RunOutcome::DetectedRepaired,
        RunOutcome::RepairFailed,
    ];

    /// Whether this outcome implies the affected process (and the calls
    /// it was serving) was unavailable for some interval of the run.
    ///
    /// The process-fault campaigns use this to cross-check the
    /// [`OutcomeCounts::availability`] formula against their measured
    /// per-run unavailability intervals: an outcome in this set must be
    /// accompanied by a nonzero downtime measurement, and vice versa.
    ///
    /// * `SystemDetection` — the process crashed; it is down from the
    ///   crash until the supervisor warm-restarts it.
    /// * `ClientHang` — the process stopped serving but was never
    ///   recovered within the run; the whole remainder is downtime.
    /// * `RepairFailed` — recovery was attempted but never held, so the
    ///   lineage stayed effectively out of service.
    ///
    /// `DetectedRepaired` deliberately is *not* in this set even though
    /// a warm restart has nonzero latency: the paper's availability
    /// bookkeeping (§2, the 5ESS lineage) charges an outage only when
    /// service was lost, and a detected-and-repaired process fault is
    /// scored by its (separately reported) detection latency instead.
    pub fn implies_downtime(self) -> bool {
        matches!(
            self,
            RunOutcome::SystemDetection | RunOutcome::ClientHang | RunOutcome::RepairFailed
        )
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RunOutcome::NotActivated => "Errors Not Activated",
            RunOutcome::NotManifested => "Errors Activated but Not Manifested",
            RunOutcome::PecosDetection => "PECOS Detection",
            RunOutcome::AuditDetection => "Audit Detection",
            RunOutcome::SystemDetection => "System Detection",
            RunOutcome::ClientHang => "Client Hang",
            RunOutcome::FailSilenceViolation => "Fail-silence Violation",
            RunOutcome::DetectedRepaired => "Detected and Repaired",
            RunOutcome::RepairFailed => "Repair Failed",
        };
        f.write_str(s)
    }
}

/// Aggregated outcome counts for one campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCounts {
    counts: [u64; 9],
}

impl OutcomeCounts {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(outcome: RunOutcome) -> usize {
        RunOutcome::ALL.iter().position(|&o| o == outcome).expect("outcome is in ALL")
    }

    /// Records one run.
    pub fn record(&mut self, outcome: RunOutcome) {
        self.counts[Self::slot(outcome)] += 1;
    }

    /// Count of one category.
    pub fn count(&self, outcome: RunOutcome) -> u64 {
        self.counts[Self::slot(outcome)]
    }

    /// Total runs recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Runs in which the injected error was activated (the paper's
    /// denominator for the percentage rows).
    pub fn activated(&self) -> u64 {
        self.total() - self.count(RunOutcome::NotActivated)
    }

    /// The proportion of activated runs in one category, with its
    /// binomial confidence interval.
    pub fn proportion_of_activated(&self, outcome: RunOutcome) -> Proportion {
        Proportion::new(self.count(outcome), self.activated().max(1))
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &OutcomeCounts) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// The paper's system-wide coverage formula:
    /// `100% − (SystemDetection + FailSilence + Hang + RepairFailed)%`
    /// of activated errors. `DetectedRepaired` counts as covered;
    /// a failed repair left the error in place and does not.
    pub fn coverage(&self) -> f64 {
        let activated = self.activated();
        if activated == 0 {
            return 0.0;
        }
        let uncovered = self.count(RunOutcome::SystemDetection)
            + self.count(RunOutcome::FailSilenceViolation)
            + self.count(RunOutcome::ClientHang)
            + self.count(RunOutcome::RepairFailed);
        100.0 * (1.0 - uncovered as f64 / activated as f64)
    }

    /// Run-level availability: the percentage of activated runs that
    /// ended with the faulted process back in (or never out of)
    /// service,
    ///
    /// `100% − (SystemDetection + ClientHang + RepairFailed)% of activated`
    ///
    /// i.e. `100%` minus the share of outcomes for which
    /// [`RunOutcome::implies_downtime`] holds. This differs from
    /// [`coverage`](Self::coverage) in exactly one term:
    /// `FailSilenceViolation` is a *data-integrity* failure — the
    /// client kept running and serving calls while writing bad data —
    /// so it breaks coverage but not availability. Conversely every
    /// downtime outcome also breaks coverage, so
    /// `availability() >= coverage()` always holds.
    pub fn availability(&self) -> f64 {
        let activated = self.activated();
        if activated == 0 {
            return 0.0;
        }
        let down: u64 =
            RunOutcome::ALL.iter().filter(|o| o.implies_downtime()).map(|&o| self.count(o)).sum();
        100.0 * (1.0 - down as f64 / activated as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_and_percentages() {
        let mut c = OutcomeCounts::new();
        for _ in 0..50 {
            c.record(RunOutcome::NotActivated);
        }
        for _ in 0..30 {
            c.record(RunOutcome::PecosDetection);
        }
        for _ in 0..15 {
            c.record(RunOutcome::SystemDetection);
        }
        for _ in 0..5 {
            c.record(RunOutcome::NotManifested);
        }
        assert_eq!(c.total(), 100);
        assert_eq!(c.activated(), 50);
        let p = c.proportion_of_activated(RunOutcome::PecosDetection);
        assert_eq!(p.percent(), 60.0);
        // Coverage: 100 - 15/50 = 70%.
        assert!((c.coverage() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = OutcomeCounts::new();
        a.record(RunOutcome::ClientHang);
        let mut b = OutcomeCounts::new();
        b.record(RunOutcome::ClientHang);
        b.record(RunOutcome::FailSilenceViolation);
        a.merge(&b);
        assert_eq!(a.count(RunOutcome::ClientHang), 2);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn empty_tally_is_safe() {
        let c = OutcomeCounts::new();
        assert_eq!(c.activated(), 0);
        assert_eq!(c.coverage(), 0.0);
        assert_eq!(c.proportion_of_activated(RunOutcome::ClientHang).percent(), 0.0);
    }

    #[test]
    fn downtime_set_is_exactly_the_availability_complement() {
        // Exact-set check: adding a RunOutcome variant must force a
        // decision about whether it implies downtime.
        let down: Vec<RunOutcome> =
            RunOutcome::ALL.iter().copied().filter(|o| o.implies_downtime()).collect();
        assert_eq!(
            down,
            vec![RunOutcome::SystemDetection, RunOutcome::ClientHang, RunOutcome::RepairFailed]
        );
    }

    #[test]
    fn availability_formula_matches_hand_computation() {
        let mut c = OutcomeCounts::new();
        for _ in 0..20 {
            c.record(RunOutcome::NotActivated);
        }
        for _ in 0..40 {
            c.record(RunOutcome::DetectedRepaired);
        }
        for _ in 0..10 {
            c.record(RunOutcome::SystemDetection);
        }
        for _ in 0..6 {
            c.record(RunOutcome::ClientHang);
        }
        for _ in 0..4 {
            c.record(RunOutcome::RepairFailed);
        }
        for _ in 0..20 {
            c.record(RunOutcome::FailSilenceViolation);
        }
        // activated = 80; down = 10 + 6 + 4 = 20 -> 75% availability.
        assert_eq!(c.activated(), 80);
        assert!((c.availability() - 75.0).abs() < 1e-9);
        // Coverage additionally loses the 20 fail-silence violations:
        // 100 - 40/80 = 50%.
        assert!((c.coverage() - 50.0).abs() < 1e-9);
        assert!(c.availability() >= c.coverage());
    }

    #[test]
    fn availability_of_empty_tally_is_zero() {
        assert_eq!(OutcomeCounts::new().availability(), 0.0);
    }

    #[test]
    fn display_matches_paper_wording() {
        assert_eq!(RunOutcome::PecosDetection.to_string(), "PECOS Detection");
        assert_eq!(RunOutcome::FailSilenceViolation.to_string(), "Fail-silence Violation");
    }
}
