//! System-wide coverage estimation (§6.1.4, Table 10).
//!
//! The paper combines the client-side campaign (random text injection,
//! Table 9) with the database campaign (Table 3) under an assumed
//! error mix — 25% of errors hit the client, 75% hit the database,
//! from the relative sizes of the client text segment and the database
//! memory image. Coverage is `100% − (system detection + fail-silence
//! violation + hang)%` for the client and `(caught + no effect)%` for
//! the database.

use serde::{Deserialize, Serialize};

use crate::db_campaign::DbCampaignResult;
use crate::outcome::OutcomeCounts;

/// One column of Table 10.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageColumn {
    /// Column label (e.g. "With PECOS / With Audit").
    pub name: String,
    /// Client-only coverage (percent of activated client errors).
    pub client: f64,
    /// Database-only coverage (percent of injected database errors).
    pub database: f64,
    /// Mixed coverage under the configured client fraction.
    pub combined: f64,
}

/// The full Table 10.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table10 {
    /// Fraction of errors assumed to hit the client (paper: 0.25).
    pub client_fraction: f64,
    /// The four configuration columns.
    pub columns: Vec<CoverageColumn>,
}

/// Builds Table 10 from the four client campaign columns (Table 9
/// order: −/−, −/A, P/−, P/A) and the two database campaigns.
///
/// # Panics
///
/// Panics if `client_columns` does not have exactly four entries or
/// `client_fraction` is outside `[0, 1]`.
pub fn table10(
    client_columns: &[(String, OutcomeCounts)],
    db_without_audit: &DbCampaignResult,
    db_with_audit: &DbCampaignResult,
    client_fraction: f64,
) -> Table10 {
    assert_eq!(client_columns.len(), 4, "four campaign columns expected");
    assert!((0.0..=1.0).contains(&client_fraction), "client fraction must be a probability");
    let db_cov = |r: &DbCampaignResult| r.caught_pct() + r.no_effect_pct();
    let db_coverage = [
        db_cov(db_without_audit), // without audit
        db_cov(db_with_audit),    // with audit
        db_cov(db_without_audit),
        db_cov(db_with_audit),
    ];
    let columns = client_columns
        .iter()
        .zip(db_coverage.iter())
        .map(|((name, counts), &database)| {
            let client = counts.coverage();
            CoverageColumn {
                name: name.clone(),
                client,
                database,
                combined: client_fraction * client + (1.0 - client_fraction) * database,
            }
        })
        .collect();
    Table10 { client_fraction, columns }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::RunOutcome;

    fn counts(notman: u64, pecos: u64, audit: u64, system: u64, fsv: u64) -> OutcomeCounts {
        let mut c = OutcomeCounts::new();
        for _ in 0..notman {
            c.record(RunOutcome::NotManifested);
        }
        for _ in 0..pecos {
            c.record(RunOutcome::PecosDetection);
        }
        for _ in 0..audit {
            c.record(RunOutcome::AuditDetection);
        }
        for _ in 0..system {
            c.record(RunOutcome::SystemDetection);
        }
        for _ in 0..fsv {
            c.record(RunOutcome::FailSilenceViolation);
        }
        c
    }

    fn db(caught_pct: f64, no_effect_pct: f64) -> DbCampaignResult {
        DbCampaignResult {
            injected: 1000,
            caught: (caught_pct * 10.0) as u64,
            overwritten: (no_effect_pct * 10.0) as u64,
            escaped: 1000 - (caught_pct * 10.0) as u64 - (no_effect_pct * 10.0) as u64,
            ..DbCampaignResult::default()
        }
    }

    #[test]
    fn reproduces_the_papers_arithmetic() {
        // Paper Table 10: client coverages 28 / 33 / 57 / 58,
        // database coverages 37 / 87 / 37 / 87, mix 25/75 →
        // 35 / 73 / 42 / 80 (rounded).
        let columns = vec![
            ("--".to_owned(), counts(28, 0, 0, 66, 6)),
            ("-A".to_owned(), counts(26, 0, 7, 61, 6)),
            ("P-".to_owned(), counts(12, 45, 0, 41, 2)),
            ("PA".to_owned(), counts(7, 49, 2, 39, 3)),
        ];
        let t = table10(&columns, &db(0.0, 37.0), &db(85.0, 2.0), 0.25);
        let combined: Vec<f64> = t.columns.iter().map(|c| c.combined).collect();
        assert!((combined[0] - 35.0).abs() < 2.0, "{combined:?}");
        assert!((combined[1] - 73.0).abs() < 2.0, "{combined:?}");
        assert!((combined[2] - 42.0).abs() < 2.0, "{combined:?}");
        assert!((combined[3] - 80.0).abs() < 2.0, "{combined:?}");
        // Both-techniques column dominates.
        assert!(combined[3] > combined[1] && combined[3] > combined[2]);
    }

    #[test]
    #[should_panic(expected = "four campaign columns")]
    fn wrong_column_count_panics() {
        let _ = table10(&[], &db(0.0, 37.0), &db(85.0, 2.0), 0.25);
    }
}
