//! Software-implemented fault injection and the paper's experiment
//! campaigns (NFTAPE-equivalent).
//!
//! Two injection families, matching §5 and §6 of the paper:
//!
//! * **Database injection** ([`db_campaign`]): random single-bit flips
//!   in the controller database image while the discrete-event
//!   call-processing client runs, with or without audits. Regenerates
//!   Tables 2–4 and Figure 3, plus the prioritized-audit study of
//!   Table 5 / Figures 5–6 ([`priority_campaign`]).
//! * **Text-segment injection** ([`text_campaign`]): breakpoint-
//!   triggered corruption of the ISA client's instruction stream using
//!   the paper's four error models ([`ErrorModel`]: ADDIF, DATAIF,
//!   DATAOF, DATAInF), directed at control-flow instructions or spread
//!   over the whole text segment, across the four PECOS × audit
//!   configurations. Regenerates Tables 8 and 9.
//!
//! Outcomes are classified per the paper's Table 7 ([`RunOutcome`]),
//! chronologically: the first detection (PECOS, audit, or a crash
//! signal) claims the run. [`coverage`] combines both families into
//! the system-wide coverage estimate of Table 10.
//!
//! A third family ([`recovery_campaign`]) drives the staged
//! detect→repair→verify engine of `wtnc-recovery`: the audit subsystem
//! runs detect-only, the engine repairs under a per-cycle token budget,
//! and the table grows the [`RunOutcome::DetectedRepaired`] and
//! [`RunOutcome::RepairFailed`] classes plus repair-latency statistics.
//!
//! A fourth family ([`process_campaign`]) faults the *processes*
//! instead of the data: clients and the audit process are crashed,
//! hung (alive-but-silent, optionally wedged on a record lock) and
//! livelocked under the supervision loop of `wtnc-audit`, which must
//! detect every fault, steal the stolen locks, warm-restart the
//! lineage or escalate a restart storm to a controller restart, and
//! account every downtime interval. The campaign reports per-model
//! detection latency, unavailability and the run-level
//! [`OutcomeCounts::availability`] figure.
//!
//! A sixth family ([`storm_campaign`]) injects *overload* rather than
//! corruption: super-producer, IPC-flood and diurnal-burst traffic
//! storms push offered load past the auditor's saturation point while
//! a single mid-storm corruption waits to be found. The campaign
//! measures detection latency, audit-cycle stretch, shed/backpressure
//! accounting and watermark-driven false restarts with and without the
//! resource-isolation layer (bounded fair IPC, the audit CPU token
//! bucket, starvation-aware supervision).
//!
//! A fifth family ([`powerfail_campaign`]) attacks the *durable* state
//! kept by `wtnc-store`: after a seeded journaled workload, the store
//! directory suffers a simulated power failure or tampering event
//! (torn checkpoint write, journal-tail truncation or corruption,
//! stale-checkpoint-with-valid-journal, golden-history chain break)
//! and is reopened cold. Warm recovery must either reproduce the exact
//! pre-failure image or a *reported* consistent prefix of the mutation
//! timeline — any off-timeline image or silent history loss counts as
//! [`RunOutcome::FailSilenceViolation`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coverage;
pub mod db_campaign;
mod models;
mod outcome;
pub mod parallel;
pub mod powerfail_campaign;
pub mod priority_campaign;
pub mod process_campaign;
pub mod recovery_campaign;
pub mod storm_campaign;
pub mod text_campaign;

pub use models::ErrorModel;
pub use outcome::{OutcomeCounts, RunOutcome};
