//! Prioritized-audit assessment (§5.3, Table 5, Figures 5 and 6).
//!
//! Six tables with the paper's size ratio (7 : 18 : 1 : 125 : 8 : 4)
//! and access-frequency ratio (6 : 5 : 4 : 3 : 2 : 1) are exercised by
//! a synthetic 16-thread application at 20 operations per second per
//! thread. The audit checks **one table per period**, either in fixed
//! order (unprioritized) or by the weighted importance score
//! (prioritized). Errors arrive exponentially with a configurable mean
//! and land either uniformly over the database image or proportionally
//! to table access frequency.

use serde::{Deserialize, Serialize};
use wtnc_audit::{AuditConfig, AuditProcess, AuditScope, PriorityScheduler, PriorityWeights};
use wtnc_db::{schema, Database, DbApi, TaintEntry, TaintFate};
use wtnc_sim::stats::Accumulator;
use wtnc_sim::{EventQueue, Pid, ProcessRegistry, SimDuration, SimRng, SimTime};

/// The paper's access-frequency ratio across the six tables.
pub const ACCESS_RATIO: [f64; 6] = [6.0, 5.0, 4.0, 3.0, 2.0, 1.0];

/// Configuration of one prioritized-audit run (paper Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriorityCampaignConfig {
    /// Prioritized (weighted) vs unprioritized (round-robin) audit.
    pub prioritized: bool,
    /// Proportional (access-frequency-weighted) vs uniform error
    /// placement.
    pub proportional_errors: bool,
    /// Mean time between errors (paper: 1, 2, 4 s).
    pub mtbf: SimDuration,
    /// Run length.
    pub duration: SimDuration,
    /// Application threads (paper: 16).
    pub threads: usize,
    /// Database operations per second per thread (paper: 20).
    pub ops_per_sec_per_thread: f64,
    /// Audit period — one table checked per tick (paper: 5 s).
    pub audit_period: SimDuration,
    /// Schema scale factor (multiplies the size ratio).
    pub scale: u32,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for PriorityCampaignConfig {
    fn default() -> Self {
        PriorityCampaignConfig {
            prioritized: true,
            proportional_errors: false,
            mtbf: SimDuration::from_secs(2),
            duration: SimDuration::from_secs(300),
            threads: 16,
            ops_per_sec_per_thread: 20.0,
            audit_period: SimDuration::from_secs(5),
            // Sized from the paper's "actual controller database
            // measurements": large enough that per-record touch
            // intervals in the hot tables straddle the audit period,
            // which is the regime where prioritization matters.
            scale: 400,
            seed: 0x5EED,
        }
    }
}

/// Aggregated result.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PriorityResult {
    /// Errors injected.
    pub injected: u64,
    /// Errors the application consumed before detection.
    pub escaped: u64,
    /// Errors detected and repaired by the audit.
    pub caught: u64,
    /// Mean detection latency over caught errors, in seconds.
    pub detection_latency_s: f64,
}

impl PriorityResult {
    /// Escapes as a percentage of injections ("% of faults seen by
    /// application").
    pub fn escaped_pct(&self) -> f64 {
        if self.injected == 0 {
            0.0
        } else {
            100.0 * self.escaped as f64 / self.injected as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Op(usize),
    AuditTick,
    Inject,
}

/// Runs one experiment run, using the config's `prioritized` flag
/// with default weights.
pub fn run_once(config: &PriorityCampaignConfig, seed: u64) -> PriorityResult {
    let weights = config.prioritized.then(PriorityWeights::default);
    run_once_with_weights(config, weights, seed)
}

/// Runs one experiment run with explicit scheduler weights (`None` =
/// round-robin). This is the ablation entry point: each §4.4.1
/// importance term can be zeroed independently.
pub fn run_once_with_weights(
    config: &PriorityCampaignConfig,
    weights: Option<PriorityWeights>,
    seed: u64,
) -> PriorityResult {
    let mut rng = SimRng::seed_from(seed);
    let mut db = Database::build(schema::six_table_schema(config.scale)).expect("schema builds");
    let mut api = DbApi::new();
    let mut registry = ProcessRegistry::new();
    let mut audit = AuditProcess::new(
        AuditConfig {
            periodic_interval: config.audit_period,
            scope: AuditScope::OneTable,
            ..AuditConfig::default()
        },
        &db,
    );
    if let Some(weights) = weights {
        audit.set_scheduler(Box::new(PriorityScheduler::new(weights)));
    }

    let n_tables = db.catalog().table_count();
    // Pre-populate each table with an occupancy correlated to its
    // access frequency — hot tables run full, cold bulk tables hold
    // mostly stale capacity, as in the production controller.
    for t in 0..n_tables {
        let table = wtnc_db::TableId(t as u16);
        let cap = db.catalog().table(table).unwrap().def.record_count;
        let occupancy = 0.15 + 0.7 * ACCESS_RATIO[t.min(5)] / ACCESS_RATIO[0];
        let fill = (cap as f64 * occupancy) as u32;
        for _ in 0..fill {
            let idx = db.alloc_record_raw(table).expect("capacity available");
            let rec = wtnc_db::RecordRef::new(table, idx);
            db.write_field_raw(rec, wtnc_db::FieldId(0), rng.range_u64(0, 1_000))
                .expect("field exists");
        }
    }

    let mut pids: Vec<Pid> = Vec::new();
    for _ in 0..config.threads {
        let pid = registry.spawn("app-thread", SimTime::ZERO);
        api.init(pid);
        pids.push(pid);
    }

    let op_gap = SimDuration::from_secs_f64(1.0 / config.ops_per_sec_per_thread);
    let mut queue: EventQueue<Ev> = EventQueue::new();
    for (i, _) in pids.iter().enumerate() {
        queue.schedule(SimTime::ZERO + rng.exponential(op_gap), Ev::Op(i));
    }
    queue.schedule(SimTime::ZERO + config.audit_period, Ev::AuditTick);
    queue.schedule(SimTime::ZERO + rng.exponential(config.mtbf), Ev::Inject);

    // Pre-compute table extents for proportional placement.
    let extents: Vec<(usize, usize)> =
        db.catalog().tables().map(|tm| (tm.offset, tm.data_len())).collect();

    let mut injected = 0u64;
    let mut next_id = 1u64;
    let end = SimTime::ZERO + config.duration;

    while let Some(at) = queue.peek_time() {
        if at > end {
            break;
        }
        let (now, ev) = queue.pop().expect("peeked");
        match ev {
            Ev::Op(thread) => {
                let pid = pids[thread];
                let table_idx = rng.weighted_index(&ACCESS_RATIO);
                let table = wtnc_db::TableId(table_idx as u16);
                let cap = db.catalog().table(table).unwrap().def.record_count;
                let index = rng.range_u64(0, cap as u64) as u32;
                let choice = rng.unit();
                if choice < 0.45 {
                    // Read the whole record (inactive ones are simply
                    // skipped by the API error).
                    let _ = api.read_rec(&mut db, pid, table, index, now);
                } else if choice < 0.85 {
                    let _ = api.write_fld(
                        &mut db,
                        pid,
                        table,
                        index,
                        wtnc_db::FieldId(0),
                        rng.range_u64(0, 1_000),
                        now,
                    );
                } else if choice < 0.93 {
                    let _ = api.alloc_record(&mut db, pid, table, now);
                } else {
                    let _ = api.free_record(&mut db, pid, table, index, now);
                }
                queue.schedule(now + rng.exponential(op_gap), Ev::Op(thread));
            }
            Ev::AuditTick => {
                audit.run_cycle(&mut db, &mut api, &mut registry, now);
                queue.schedule(now + config.audit_period, Ev::AuditTick);
            }
            Ev::Inject => {
                let offset = if config.proportional_errors {
                    let t = rng.weighted_index(&ACCESS_RATIO);
                    let (off, len) = extents[t];
                    off + rng.index(len)
                } else {
                    rng.index(db.region_len())
                };
                let bit = (rng.bits() % 8) as u8;
                let kind = db.classify_injection(offset, bit);
                db.flip_bit(offset, bit).expect("offset within region");
                db.taint_mut().insert(offset, TaintEntry { id: next_id, at: now, kind });
                next_id += 1;
                injected += 1;
                queue.schedule(now + rng.exponential(config.mtbf), Ev::Inject);
            }
        }
    }

    // Classify.
    let mut result = PriorityResult { injected, ..PriorityResult::default() };
    let caught_at: std::collections::HashMap<u64, SimTime> =
        audit.catch_log().iter().map(|&(entry, _, at)| (entry.id, at)).collect();
    let mut latency = Accumulator::new();
    for &(_offset, entry, fate) in db.taint().resolved() {
        match fate {
            TaintFate::Caught { at } => {
                result.caught += 1;
                let when = caught_at.get(&entry.id).copied().unwrap_or(at);
                latency.push(when.saturating_since(entry.at).as_secs_f64());
            }
            TaintFate::Escaped { .. } => result.escaped += 1,
            TaintFate::Overwritten { .. } => {}
        }
    }
    result.detection_latency_s = latency.mean();
    result
}

/// Runs `runs` independent runs and aggregates. Runs execute in
/// parallel across cores; results are identical to a serial execution.
pub fn run_campaign(config: &PriorityCampaignConfig, runs: usize) -> PriorityResult {
    let mut rng = SimRng::seed_from(config.seed);
    let seeds: Vec<u64> = (0..runs).map(|_| rng.bits()).collect();
    let results =
        crate::parallel::run_seeded(&seeds, crate::parallel::default_workers(), |_, seed| {
            run_once(config, seed)
        });
    let mut total = PriorityResult::default();
    let mut latency = Accumulator::new();
    for r in results {
        total.injected += r.injected;
        total.escaped += r.escaped;
        total.caught += r.caught;
        if r.caught > 0 {
            latency.push(r.detection_latency_s);
        }
    }
    total.detection_latency_s = latency.mean();
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(prioritized: bool, proportional: bool) -> PriorityCampaignConfig {
        PriorityCampaignConfig {
            prioritized,
            proportional_errors: proportional,
            duration: SimDuration::from_secs(120),
            mtbf: SimDuration::from_secs(2),
            ..PriorityCampaignConfig::default()
        }
    }

    #[test]
    fn campaign_injects_and_catches() {
        let r = run_campaign(&cfg(true, false), 2);
        assert!(r.injected > 50);
        assert!(r.caught > 0);
        assert!(r.detection_latency_s > 0.0);
        assert!(r.escaped_pct() < 50.0);
    }

    #[test]
    fn prioritized_audit_reduces_escapes_under_uniform_errors() {
        let pri = run_campaign(&cfg(true, false), 4);
        let rr = run_campaign(&cfg(false, false), 4);
        assert!(
            pri.escaped_pct() <= rr.escaped_pct() * 1.05,
            "prioritized {}% vs round-robin {}%",
            pri.escaped_pct(),
            rr.escaped_pct()
        );
    }

    #[test]
    fn proportional_errors_raise_escape_rate() {
        let uniform = run_campaign(&cfg(true, false), 3);
        let proportional = run_campaign(&cfg(true, true), 3);
        // Errors concentrated in hot (and often small) tables are seen
        // by the application more often.
        assert!(
            proportional.escaped_pct() > uniform.escaped_pct() * 0.8,
            "proportional {}% vs uniform {}%",
            proportional.escaped_pct(),
            uniform.escaped_pct()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_once(&cfg(true, true), 5);
        let b = run_once(&cfg(true, true), 5);
        assert_eq!(a.injected, b.injected);
        assert_eq!(a.escaped, b.escaped);
        assert_eq!(a.caught, b.caught);
    }
}
