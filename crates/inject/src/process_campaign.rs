//! Process-fault injection campaign driving the supervision loop.
//!
//! The database and text campaigns corrupt *data*; this harness faults
//! the *processes* themselves, exercising the supervision tier end to
//! end ([`Supervisor`]): clients and the audit process register as
//! supervised, faults are injected as crashes, hangs (alive but
//! silent, optionally holding a record lock) and livelocks (replying
//! but making no database progress), and every fault must be detected,
//! its stolen locks released, and its lineage warm-restarted — or, on
//! a restart storm, escalated through backoff to a controller restart.
//!
//! Each injected fault is classified into the extended Table 7
//! taxonomy:
//!
//! * [`RunOutcome::DetectedRepaired`] — condemned and warm-restarted
//!   (or swept healthy by a controller restart another lineage
//!   triggered);
//! * [`RunOutcome::RepairFailed`] — the lineage exhausted its backoff
//!   ladder; only the global controller restart recovered it;
//! * [`RunOutcome::AuditDetection`] — condemned by the supervision
//!   tier but the run ended mid-backoff, before the restart completed;
//! * [`RunOutcome::ClientHang`] — the fault was never detected within
//!   the run (the process stayed silently out of service);
//! * [`RunOutcome::NotActivated`] — no healthy target existed at
//!   injection time.
//!
//! Alongside the outcome tally the campaign reports the supervision
//! tier's quality-of-service numbers: per-fault detection latency and
//! unavailability, total downtime, dropped calls and stolen locks —
//! the availability accounting the paper's 5ESS lineage (§2) demands
//! of a telephone controller.

use serde::{Deserialize, Serialize};
use wtnc_audit::{
    AuditConfig, AuditProcess, HeartbeatElement, RecoveryAction, RestartRecord, SupervisedRole,
    Supervisor, SupervisorConfig,
};
use wtnc_db::{schema, Database, DbApi, RecordRef, TaintFate};
use wtnc_sim::stats::Accumulator;
use wtnc_sim::{EventQueue, Pid, ProcessRegistry, Responsiveness, SimDuration, SimRng, SimTime};

use crate::outcome::{OutcomeCounts, RunOutcome};

/// The process-fault models (the rows of the campaign table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessFaultModel {
    /// A call-processing client dies outright; its connection vanishes
    /// but any locks it held stay behind.
    ClientCrash,
    /// A client hangs — alive but silent — while holding a record
    /// lock, the paper's motivating deadlock scenario ("terminates the
    /// client process holding the lock …, thereby releasing the
    /// lock").
    ClientHangWithLock,
    /// A client livelocks: it keeps answering heartbeat probes but
    /// stops making database progress. Only per-process progress
    /// accounting can see this.
    ClientLivelock,
    /// The audit process itself crashes (the auditor is a fault domain
    /// of its own).
    AuditCrash,
    /// The audit process hangs alive-but-silent; its heartbeat element
    /// is reachable but must not count as replying.
    AuditHang,
}

impl ProcessFaultModel {
    /// Every model, in campaign-table order.
    pub const ALL: [ProcessFaultModel; 5] = [
        ProcessFaultModel::ClientCrash,
        ProcessFaultModel::ClientHangWithLock,
        ProcessFaultModel::ClientLivelock,
        ProcessFaultModel::AuditCrash,
        ProcessFaultModel::AuditHang,
    ];

    /// Stable snake_case name (JSON column key).
    pub fn name(self) -> &'static str {
        match self {
            ProcessFaultModel::ClientCrash => "client_crash",
            ProcessFaultModel::ClientHangWithLock => "client_hang_with_lock",
            ProcessFaultModel::ClientLivelock => "client_livelock",
            ProcessFaultModel::AuditCrash => "audit_crash",
            ProcessFaultModel::AuditHang => "audit_hang",
        }
    }

    fn targets_audit(self) -> bool {
        matches!(self, ProcessFaultModel::AuditCrash | ProcessFaultModel::AuditHang)
    }
}

/// Configuration of one process-campaign run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessCampaignConfig {
    /// Run length.
    pub duration: SimDuration,
    /// Mean fault inter-arrival time (exponential).
    pub fault_iat: SimDuration,
    /// Client work-transaction period: every period each healthy
    /// client advances its current call by one step.
    pub work_period: SimDuration,
    /// Periodic audit-cycle interval.
    pub audit_period: SimDuration,
    /// Call-processing clients.
    pub clients: u32,
    /// Record slots per dynamic table.
    pub slots: u32,
    /// Supervision thresholds. The supervision tick runs at
    /// `supervisor.heartbeat.interval`.
    pub supervisor: SupervisorConfig,
    /// The fault model injected this run.
    pub model: ProcessFaultModel,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for ProcessCampaignConfig {
    fn default() -> Self {
        ProcessCampaignConfig {
            duration: SimDuration::from_secs(600),
            fault_iat: SimDuration::from_secs(60),
            work_period: SimDuration::from_secs(2),
            audit_period: SimDuration::from_secs(10),
            clients: 4,
            slots: 64,
            supervisor: SupervisorConfig::default(),
            model: ProcessFaultModel::ClientCrash,
            seed: 0x5EC5,
        }
    }
}

/// Result of one process-campaign run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProcessRunResult {
    /// Faults injected (including `NotActivated` attempts).
    pub injected: u64,
    /// Per-fault outcome tally.
    pub outcomes: OutcomeCounts,
    /// Faults the supervision tier condemned within the run.
    pub detected: u64,
    /// Mean detection latency (fault injection to condemnation),
    /// virtual seconds, over detected faults.
    pub detection_latency_s: f64,
    /// Mean unavailability interval (fault injection to completed
    /// restart), virtual seconds, over restarted faults.
    pub unavailable_s: f64,
    /// Total supervised downtime at end of run (closed + open
    /// intervals), virtual seconds.
    pub downtime_s: f64,
    /// Warm restarts performed.
    pub restarts: u64,
    /// Storm escalations (controller restarts requested).
    pub escalations: u64,
    /// Controller restarts executed.
    pub controller_restarts: u64,
    /// Calls dropped because their owning client went down.
    pub dropped_calls: u64,
    /// Locks stolen from condemned processes.
    pub locks_stolen: u64,
    /// Call transactions completed by the workload.
    pub calls_completed: u64,
    /// The supervision trace: every restart record in occurrence
    /// order. Deterministic (same seed ⇒ identical trace).
    pub trace: Vec<RestartRecord>,
}

/// Aggregated result of many runs of one fault model.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProcessCampaignResult {
    /// Faults injected across all runs.
    pub injected: u64,
    /// Merged outcome tally.
    pub outcomes: OutcomeCounts,
    /// Detected faults across all runs.
    pub detected: u64,
    /// Mean of per-run mean detection latencies, virtual seconds.
    pub detection_latency_s: f64,
    /// Mean of per-run mean unavailability intervals, virtual seconds.
    pub unavailable_s: f64,
    /// Total downtime across all runs, virtual seconds.
    pub downtime_s: f64,
    /// Warm restarts across all runs.
    pub restarts: u64,
    /// Storm escalations across all runs.
    pub escalations: u64,
    /// Controller restarts executed across all runs.
    pub controller_restarts: u64,
    /// Dropped calls across all runs.
    pub dropped_calls: u64,
    /// Stolen locks across all runs.
    pub locks_stolen: u64,
    /// Completed call transactions across all runs.
    pub calls_completed: u64,
}

/// A call-processing worker: one supervised client advancing a
/// two-step call transaction (allocate + write, then read + free) on
/// the connection table, holding the record lock while the call is in
/// flight.
#[derive(Debug)]
struct Worker {
    pid: Pid,
    /// The in-flight call's connection-record index.
    call: Option<u32>,
    completed: u64,
}

/// One injected fault awaiting resolution.
#[derive(Debug)]
struct PendingFault {
    /// The pid the fault was injected into (restart records name it as
    /// their `old` pid).
    pid: Pid,
    injected_at: SimTime,
    /// This lineage exhausted its backoff ladder: a
    /// `RequestedControllerRestart` finding named it, so its eventual
    /// storm-sweep restart is a local-repair failure.
    escalated: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    WorkTick,
    Supervise,
    AuditTick,
    Inject,
}

/// Runs one process-campaign run and returns its result.
pub fn run_once(config: &ProcessCampaignConfig, seed: u64) -> ProcessRunResult {
    let mut rng = SimRng::seed_from(seed);
    let mut db =
        Database::build(schema::standard_schema_with_slots(config.slots)).expect("schema builds");
    let mut api = DbApi::new();
    let mut registry = ProcessRegistry::new();
    let mut sup = Supervisor::new(config.supervisor);
    let mut audit = AuditProcess::new(
        AuditConfig { periodic_interval: config.audit_period, ..AuditConfig::default() },
        &db,
    );

    let mut audit_pid = registry.spawn("audit", SimTime::ZERO);
    sup.register(audit_pid, SupervisedRole::Audit, false, SimTime::ZERO);

    let mut workers: Vec<Worker> = (0..config.clients)
        .map(|i| {
            let pid = registry.spawn(&format!("client-{i}"), SimTime::ZERO);
            api.init_at(pid, SimTime::ZERO);
            sup.register(pid, SupervisedRole::Client, true, SimTime::ZERO);
            Worker { pid, call: None, completed: 0 }
        })
        .collect();

    let mut queue: EventQueue<Ev> = EventQueue::new();
    queue.schedule(SimTime::ZERO + config.work_period, Ev::WorkTick);
    queue.schedule(SimTime::ZERO + config.supervisor.heartbeat.interval, Ev::Supervise);
    queue.schedule(SimTime::ZERO + config.audit_period, Ev::AuditTick);
    queue.schedule(SimTime::ZERO + rng.exponential(config.fault_iat), Ev::Inject);

    let mut injected: u64 = 0;
    let mut outcomes = OutcomeCounts::new();
    let mut pending: Vec<PendingFault> = Vec::new();
    let mut detection = Accumulator::new();
    let mut unavailability = Accumulator::new();
    let mut controller_restarts: u64 = 0;
    let end_of_run = SimTime::ZERO + config.duration;
    let mut final_now = SimTime::ZERO;

    while let Some(at) = queue.peek_time() {
        if at > end_of_run {
            break;
        }
        let (now, ev) = queue.pop().expect("peeked");
        final_now = now;
        match ev {
            Ev::WorkTick => {
                for w in workers.iter_mut() {
                    if registry.responsiveness(w.pid) != Some(Responsiveness::Responsive) {
                        continue;
                    }
                    step_call(w, &mut db, &mut api, now);
                    sup.note_progress(w.pid, now);
                }
                queue.schedule(now + config.work_period, Ev::WorkTick);
            }
            Ev::Supervise => {
                let ledger_before = sup.ledger().restarts.len();
                let report = sup.tick(&mut api, &mut registry, Some(audit.heartbeat_mut()), now);
                // An escalation finding marks its lineage's pending
                // fault as beyond local repair.
                for f in &report.findings {
                    if matches!(f.action, RecoveryAction::RequestedControllerRestart) {
                        if let Some(wtnc_audit::FindingTarget::Client { pid }) = f.target {
                            for p in pending.iter_mut().filter(|p| p.pid == pid) {
                                p.escalated = true;
                            }
                        }
                    }
                }
                apply_restarts(
                    &report.restarts,
                    &mut workers,
                    &mut audit_pid,
                    &mut audit,
                    &mut api,
                    &mut sup,
                    now,
                );
                if report.controller_restart_requested {
                    // The global action: reload the database from the
                    // golden disk image (in-flight dynamic state is
                    // sacrificed) and restart every supervised process.
                    db.reload_all();
                    let len = db.region_len();
                    db.taint_mut().resolve_range(0, len, TaintFate::Overwritten { at: now });
                    let mapping = sup.execute_controller_restart(&mut registry, &mut api, now);
                    controller_restarts += 1;
                    apply_restarts(
                        &mapping,
                        &mut workers,
                        &mut audit_pid,
                        &mut audit,
                        &mut api,
                        &mut sup,
                        now,
                    );
                }
                // Resolve pending faults against the new trace tail.
                for rec in &sup.ledger().restarts[ledger_before..] {
                    let Some(i) = pending.iter().position(|p| p.pid == rec.old) else {
                        continue;
                    };
                    let fault = pending.swap_remove(i);
                    let outcome = if fault.escalated {
                        RunOutcome::RepairFailed
                    } else {
                        RunOutcome::DetectedRepaired
                    };
                    outcomes.record(outcome);
                    detection
                        .push(rec.condemned_at.saturating_since(fault.injected_at).as_secs_f64());
                    unavailability
                        .push(rec.restarted_at.saturating_since(fault.injected_at).as_secs_f64());
                }
                queue.schedule(now + config.supervisor.heartbeat.interval, Ev::Supervise);
            }
            Ev::AuditTick => {
                if registry.responsiveness(audit_pid) == Some(Responsiveness::Responsive) {
                    audit.run_cycle(&mut db, &mut api, &mut registry, now);
                    sup.note_progress(audit_pid, now);
                }
                queue.schedule(now + config.audit_period, Ev::AuditTick);
            }
            Ev::Inject => {
                injected += 1;
                match inject_fault(
                    config.model,
                    &mut rng,
                    &workers,
                    audit_pid,
                    &pending,
                    &mut registry,
                    &mut api,
                    &sup,
                    now,
                ) {
                    Some(fault) => pending.push(fault),
                    None => outcomes.record(RunOutcome::NotActivated),
                }
                queue.schedule(now + rng.exponential(config.fault_iat), Ev::Inject);
            }
        }
    }

    // Faults still pending at end of run.
    for fault in &pending {
        if sup.is_down(fault.pid) {
            // Condemned but the run ended mid-backoff, before the warm
            // restart completed: the supervision tier *did* detect it,
            // so it scores as a detection without a closed repair.
            outcomes.record(RunOutcome::AuditDetection);
            detection.push(final_now.saturating_since(fault.injected_at).as_secs_f64());
        } else {
            // Never condemned: the process sat silently out of service
            // for the rest of the run.
            outcomes.record(RunOutcome::ClientHang);
        }
    }

    let ledger = sup.ledger();
    ProcessRunResult {
        injected,
        detected: detection.count(),
        detection_latency_s: detection.mean(),
        unavailable_s: unavailability.mean(),
        downtime_s: sup.total_downtime(final_now).as_secs_f64(),
        restarts: ledger.restarts.len() as u64,
        escalations: ledger.controller_restarts_requested,
        controller_restarts,
        dropped_calls: ledger.dropped_calls,
        locks_stolen: ledger.restarts.iter().map(|r| r.locks_stolen as u64).sum(),
        calls_completed: workers.iter().map(|w| w.completed).sum(),
        trace: ledger.restarts.clone(),
        outcomes,
    }
}

/// Advances one worker's call transaction by one step.
fn step_call(w: &mut Worker, db: &mut Database, api: &mut DbApi, now: SimTime) {
    let table = schema::CONNECTION_TABLE;
    match w.call {
        None => {
            let Ok(index) = api.alloc_record(db, w.pid, table, now) else {
                return;
            };
            let rec = RecordRef::new(table, index);
            if api.lock(rec, w.pid, now).is_err() {
                let _ = api.free_record(db, w.pid, table, index, now);
                return;
            }
            let _ = api.write_fld(
                db,
                w.pid,
                table,
                index,
                schema::connection::CALLER_ID,
                u64::from(w.pid.0),
                now,
            );
            w.call = Some(index);
        }
        Some(index) => {
            let rec = RecordRef::new(table, index);
            let _ = api.read_fld(db, w.pid, table, index, schema::connection::CALLER_ID, now);
            api.unlock(rec, w.pid);
            let _ = api.free_record(db, w.pid, table, index, now);
            w.call = None;
            w.completed += 1;
        }
    }
}

/// Re-binds workers and the audit process to their restarted pids. A
/// restarted client's in-flight call is dropped (its lock was already
/// stolen at condemnation); a restarted audit process gets a fresh
/// heartbeat element, mirroring its re-initialized state.
#[allow(clippy::too_many_arguments)]
fn apply_restarts(
    mapping: &[(Pid, Pid)],
    workers: &mut [Worker],
    audit_pid: &mut Pid,
    audit: &mut AuditProcess,
    api: &mut DbApi,
    sup: &mut Supervisor,
    now: SimTime,
) {
    for &(old, new) in mapping {
        if old == *audit_pid {
            *audit_pid = new;
            *audit.heartbeat_mut() = HeartbeatElement::new();
            continue;
        }
        if let Some(w) = workers.iter_mut().find(|w| w.pid == old) {
            w.pid = new;
            if w.call.take().is_some() {
                sup.note_dropped_calls(1);
            }
            api.init_at(new, now);
        }
    }
}

/// Injects one fault per the model. Returns `None` when no healthy
/// target existed (the attempt is `NotActivated`).
#[allow(clippy::too_many_arguments)]
fn inject_fault(
    model: ProcessFaultModel,
    rng: &mut SimRng,
    workers: &[Worker],
    audit_pid: Pid,
    pending: &[PendingFault],
    registry: &mut ProcessRegistry,
    api: &mut DbApi,
    sup: &Supervisor,
    now: SimTime,
) -> Option<PendingFault> {
    let healthy = |pid: Pid| {
        registry.responsiveness(pid) == Some(Responsiveness::Responsive)
            && !sup.is_down(pid)
            && !pending.iter().any(|p| p.pid == pid)
    };
    let target = if model.targets_audit() {
        if healthy(audit_pid) {
            Some((audit_pid, None))
        } else {
            None
        }
    } else {
        let candidates: Vec<&Worker> = workers.iter().filter(|w| healthy(w.pid)).collect();
        if candidates.is_empty() {
            None
        } else {
            let w = candidates[rng.index(candidates.len())];
            Some((w.pid, w.call))
        }
    };
    let (pid, call) = target?;
    match model {
        ProcessFaultModel::ClientCrash | ProcessFaultModel::AuditCrash => {
            registry.crash(pid, now);
            if model == ProcessFaultModel::ClientCrash {
                // The connection vanishes; locks stay behind (the
                // supervisor must steal them).
                api.crash_client(pid);
            }
        }
        ProcessFaultModel::ClientHangWithLock => {
            // Make sure the victim holds a lock when it freezes: its
            // in-flight call record, or a fresh lock it wedges on.
            if call.is_none() {
                let index = rng.index(8) as u32;
                let _ = api.lock(RecordRef::new(schema::CONNECTION_TABLE, index), pid, now);
            }
            registry.set_responsiveness(pid, Responsiveness::Hung);
        }
        ProcessFaultModel::ClientLivelock => {
            registry.set_responsiveness(pid, Responsiveness::Livelocked);
        }
        ProcessFaultModel::AuditHang => {
            registry.set_responsiveness(pid, Responsiveness::Hung);
        }
    }
    Some(PendingFault { pid, injected_at: now, escalated: false })
}

/// Runs `runs` independent runs in parallel and sums the results
/// (deterministic: identical to a serial execution).
pub fn run_campaign(config: &ProcessCampaignConfig, runs: usize) -> ProcessCampaignResult {
    let mut rng = SimRng::seed_from(config.seed);
    let seeds: Vec<u64> = (0..runs).map(|_| rng.bits()).collect();
    let results =
        crate::parallel::run_seeded(&seeds, crate::parallel::default_workers(), |_, seed| {
            run_once(config, seed)
        });
    let mut total = ProcessCampaignResult::default();
    let mut latency = Accumulator::new();
    let mut unavail = Accumulator::new();
    for r in results {
        total.injected += r.injected;
        total.outcomes.merge(&r.outcomes);
        total.detected += r.detected;
        total.downtime_s += r.downtime_s;
        total.restarts += r.restarts;
        total.escalations += r.escalations;
        total.controller_restarts += r.controller_restarts;
        total.dropped_calls += r.dropped_calls;
        total.locks_stolen += r.locks_stolen;
        total.calls_completed += r.calls_completed;
        if r.detected > 0 {
            latency.push(r.detection_latency_s);
        }
        if r.restarts > 0 {
            unavail.push(r.unavailable_s);
        }
    }
    total.detection_latency_s = latency.mean();
    total.unavailable_s = unavail.mean();
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtnc_audit::RestartCause;

    fn short(model: ProcessFaultModel) -> ProcessCampaignConfig {
        ProcessCampaignConfig {
            duration: SimDuration::from_secs(300),
            fault_iat: SimDuration::from_secs(30),
            model,
            ..ProcessCampaignConfig::default()
        }
    }

    #[test]
    fn every_client_crash_is_detected_and_restarted() {
        let r = run_once(&short(ProcessFaultModel::ClientCrash), 7);
        assert!(r.injected >= 5, "enough faults injected: {}", r.injected);
        assert_eq!(r.outcomes.total(), r.injected, "accounting is complete");
        assert!(r.outcomes.count(RunOutcome::DetectedRepaired) > 0, "{r:?}");
        assert_eq!(r.outcomes.count(RunOutcome::ClientHang), 0, "no crash goes unnoticed: {r:?}");
        assert!(r.detection_latency_s > 0.0);
        assert!(r.unavailable_s >= r.detection_latency_s);
        assert!(r.trace.iter().all(|t| t.cause == RestartCause::Crash));
    }

    #[test]
    fn hung_clients_lose_their_locks() {
        let r = run_once(&short(ProcessFaultModel::ClientHangWithLock), 11);
        assert!(r.injected >= 5);
        assert_eq!(r.outcomes.total(), r.injected);
        assert!(r.locks_stolen > 0, "stolen locks reported: {r:?}");
        assert!(r.outcomes.count(RunOutcome::DetectedRepaired) > 0);
        // A hang can be condemned by the heartbeat or by the stale-lock
        // backstop; either way nothing stays wedged.
        assert!(
            r.trace.iter().all(|t| matches!(t.cause, RestartCause::Hang | RestartCause::StaleLock)),
            "{:#?}",
            r.trace
        );
    }

    #[test]
    fn livelocked_clients_are_caught_by_progress_accounting() {
        let r = run_once(&short(ProcessFaultModel::ClientLivelock), 13);
        assert!(r.injected >= 5);
        assert_eq!(r.outcomes.total(), r.injected);
        assert!(r.outcomes.count(RunOutcome::DetectedRepaired) > 0, "{r:?}");
        assert!(r.trace.iter().any(|t| t.cause == RestartCause::Livelock));
    }

    #[test]
    fn audit_process_faults_are_recovered_too() {
        for model in [ProcessFaultModel::AuditCrash, ProcessFaultModel::AuditHang] {
            let r = run_once(&short(model), 17);
            assert!(r.injected >= 3, "{model:?}: {}", r.injected);
            assert_eq!(r.outcomes.total(), r.injected, "{model:?}");
            assert!(
                r.outcomes.count(RunOutcome::DetectedRepaired) > 0,
                "{model:?} recovered: {r:?}"
            );
            // Clustered audit faults may storm and escalate, sweeping
            // the (healthy) clients with Storm-cause records; every
            // *directly condemned* lineage must be the audit.
            assert!(
                r.trace
                    .iter()
                    .filter(|t| t.cause != RestartCause::Storm)
                    .all(|t| t.role == SupervisedRole::Audit),
                "{model:?}: non-storm restarts must be audit-role"
            );
        }
    }

    #[test]
    fn restart_storms_escalate_to_a_controller_restart() {
        // One client, rapid-fire crashes, small storm thresholds: the
        // lineage must storm, back off, and escalate.
        let config = ProcessCampaignConfig {
            duration: SimDuration::from_secs(600),
            fault_iat: SimDuration::from_secs(5),
            clients: 1,
            supervisor: SupervisorConfig {
                storm_threshold: 2,
                backoff_base: SimDuration::from_secs(4),
                escalate_after_backoffs: 1,
                ..SupervisorConfig::default()
            },
            model: ProcessFaultModel::ClientCrash,
            ..ProcessCampaignConfig::default()
        };
        let r = run_once(&config, 23);
        assert!(r.escalations > 0, "storm escalated: {r:?}");
        assert!(r.controller_restarts > 0, "controller restart executed: {r:?}");
        assert!(r.outcomes.count(RunOutcome::RepairFailed) > 0, "{r:?}");
        assert_eq!(r.outcomes.total(), r.injected);
    }

    #[test]
    fn campaign_aggregates_across_runs() {
        let r = run_campaign(&short(ProcessFaultModel::ClientCrash), 3);
        assert_eq!(r.outcomes.total(), r.injected);
        assert!(r.restarts > 0);
        assert!(r.outcomes.availability() > 0.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_once(&short(ProcessFaultModel::ClientHangWithLock), 77);
        let b = run_once(&short(ProcessFaultModel::ClientHangWithLock), 77);
        assert_eq!(a.trace, b.trace, "supervision traces differ under the same seed");
        assert_eq!(a, b);
    }

    #[test]
    fn downtime_outcomes_match_measured_unavailability() {
        // Cross-check the RunOutcome::implies_downtime contract: a run
        // whose faults all closed as DetectedRepaired reports its
        // service loss via unavailability intervals, while downtime
        // outcomes only appear when recovery failed or never happened.
        let r = run_once(&short(ProcessFaultModel::ClientCrash), 7);
        let down_outcomes: u64 = RunOutcome::ALL
            .iter()
            .filter(|o| o.implies_downtime())
            .map(|&o| r.outcomes.count(o))
            .sum();
        if down_outcomes == 0 {
            assert!(r.outcomes.availability() >= r.outcomes.coverage());
            assert!((r.outcomes.availability() - 100.0).abs() < 1e-9);
        }
        if r.restarts > 0 {
            assert!(r.downtime_s > 0.0, "restarts imply measured downtime: {r:?}");
        }
    }
}
