//! The error models of Table 6 (after Kanawati/Abraham's FERRARI
//! models, plus random memory errors).

use serde::{Deserialize, Serialize};
use wtnc_isa::OPCODE_SHIFT;
use wtnc_sim::SimRng;

/// How an injected error corrupts the instruction word about to be
/// fetched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorModel {
    /// Address line error: a *different* instruction from the
    /// instruction stream executes (the word at an address with one
    /// flipped address bit).
    Addif,
    /// Data line error while the opcode is fetched: one bit flips in
    /// the opcode byte.
    Dataif,
    /// Data line error while an operand is fetched: one bit flips in
    /// the operand field.
    Dataof,
    /// Data line error on any bit of the fetched instruction (random
    /// memory error, RAND).
    Datainf,
}

impl ErrorModel {
    /// All four models, in the paper's order.
    pub const ALL: [ErrorModel; 4] =
        [ErrorModel::Addif, ErrorModel::Dataif, ErrorModel::Dataof, ErrorModel::Datainf];

    /// Computes the corrupted word for the instruction at `addr`.
    /// `text` is the (uncorrupted) text segment.
    pub fn corrupt(self, text: &[u32], addr: usize, rng: &mut SimRng) -> u32 {
        let word = text[addr];
        match self {
            ErrorModel::Addif => {
                // Flip one address bit; wrap into the text segment so
                // the fetched word always comes from the instruction
                // stream.
                let bit = (rng.bits() % 16) as u32;
                let neighbour = (addr ^ (1usize << bit)) % text.len();
                if neighbour == addr {
                    // Degenerate (single-word text): fall back to a data
                    // bit flip so an error is still injected.
                    word ^ 1
                } else {
                    text[neighbour]
                }
            }
            ErrorModel::Dataif => {
                let bit = OPCODE_SHIFT + (rng.bits() % 8) as u32;
                word ^ (1 << bit)
            }
            ErrorModel::Dataof => {
                let bit = (rng.bits() % OPCODE_SHIFT as u64) as u32;
                word ^ (1 << bit)
            }
            ErrorModel::Datainf => {
                let bit = (rng.bits() % 32) as u32;
                word ^ (1 << bit)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_text() -> Vec<u32> {
        (0..64).map(|i| 0x0200_0000 | i as u32).collect()
    }

    #[test]
    fn dataif_flips_only_opcode_bits() {
        let text = sample_text();
        let mut rng = SimRng::seed_from(1);
        for _ in 0..200 {
            let corrupted = ErrorModel::Dataif.corrupt(&text, 5, &mut rng);
            let diff = corrupted ^ text[5];
            assert_eq!(diff.count_ones(), 1);
            assert!(diff >= 1 << OPCODE_SHIFT, "flip must land in the opcode byte");
        }
    }

    #[test]
    fn dataof_flips_only_operand_bits() {
        let text = sample_text();
        let mut rng = SimRng::seed_from(2);
        for _ in 0..200 {
            let corrupted = ErrorModel::Dataof.corrupt(&text, 5, &mut rng);
            let diff = corrupted ^ text[5];
            assert_eq!(diff.count_ones(), 1);
            assert!(diff < 1 << OPCODE_SHIFT, "flip must stay out of the opcode byte");
        }
    }

    #[test]
    fn datainf_flips_exactly_one_bit_anywhere() {
        let text = sample_text();
        let mut rng = SimRng::seed_from(3);
        let mut high = false;
        let mut low = false;
        for _ in 0..500 {
            let corrupted = ErrorModel::Datainf.corrupt(&text, 9, &mut rng);
            let diff = corrupted ^ text[9];
            assert_eq!(diff.count_ones(), 1);
            if diff >= 1 << OPCODE_SHIFT {
                high = true;
            } else {
                low = true;
            }
        }
        assert!(high && low, "random model must cover both regions");
    }

    #[test]
    fn addif_executes_a_different_stream_instruction() {
        let text = sample_text();
        let mut rng = SimRng::seed_from(4);
        for _ in 0..200 {
            let corrupted = ErrorModel::Addif.corrupt(&text, 7, &mut rng);
            assert!(text.contains(&corrupted), "ADDIF must fetch a word that exists in the stream");
        }
    }

    #[test]
    fn addif_single_word_text_still_injects() {
        let text = vec![0xABCD_EF01];
        let mut rng = SimRng::seed_from(5);
        let corrupted = ErrorModel::Addif.corrupt(&text, 0, &mut rng);
        assert_ne!(corrupted, text[0]);
    }

    #[test]
    fn all_lists_four_models() {
        assert_eq!(ErrorModel::ALL.len(), 4);
    }
}
