//! Traffic-storm injection campaign: audit under overload.
//!
//! The 2001 paper assumes the audit subsystem always gets to run. This
//! harness attacks that assumption: clients push offered IPC load past
//! the auditor's saturation point (super-producer, raw IPC flood and
//! diurnal-burst models), a single data corruption is planted mid-storm,
//! and the campaign measures what the storm does to the *detector* —
//! audit-cycle stretch, detection latency, supervisor watermark-driven
//! false restarts — with and without the resource-isolation layer
//! (bounded fair IPC via [`wtnc_db::IpcConfig`], the audit CPU token
//! bucket via [`wtnc_audit::BudgetConfig`], and starved-vs-silent
//! supervision via [`Supervisor::note_starved`]).
//!
//! The audit's CPU consumption is modeled in virtual time: a cycle that
//! drains `n` queued events and screens `r` records occupies the audit
//! process for `n × EVENT_COST + r × RECORD_COST`, and its results are
//! published only when that work completes. Without isolation the queue
//! is effectively unbounded, the drain cost grows with the backlog, and
//! past saturation each cycle takes longer than the interval that feeds
//! it — the classic receive-livelock spiral. The supervisor, watching
//! the audit's progress watermark, then condemns the busy-but-healthy
//! auditor as livelocked and restarts it, aborting the drain and making
//! things worse. With isolation the queue bound caps the drain, the
//! token bucket sheds screens honestly (degraded cycles with explicit
//! findings), and starvation notices keep the escalation ladder quiet.

use serde::{Deserialize, Serialize};
use wtnc_audit::{
    AuditConfig, AuditProcess, BudgetConfig, SupervisedRole, Supervisor, SupervisorConfig,
};
use wtnc_db::{schema, Database, DbApi, DbOp, IpcConfig, RecordRef};
use wtnc_sim::stats::Accumulator;
use wtnc_sim::{
    Enqueue, EventQueue, Pid, ProcessRegistry, Responsiveness, SimDuration, SimRng, SimTime,
};

use crate::outcome::{OutcomeCounts, RunOutcome};

/// Virtual CPU time the audit main thread spends routing one drained
/// IPC event. The reciprocal is the auditor's saturation rate: offered
/// load is expressed as a multiple of `1 / EVENT_COST` events per
/// second.
pub const EVENT_COST: SimDuration = SimDuration::from_micros(500);

/// Virtual CPU time to screen one record.
pub const RECORD_COST: SimDuration = SimDuration::from_micros(50);

/// Offered-load saturation rate: events per simulated second at which
/// draining alone consumes the whole audit interval.
pub const SATURATION_EVENTS_PER_SEC: f64 = 2_000.0;

/// The storm traffic models (the rows of the campaign table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StormModel {
    /// One client goes rogue and emits the entire offered load while
    /// the others keep their normal call-processing pace — the
    /// fairness-policy stress case (only the spammer's lane may shed).
    SuperProducer,
    /// Every client floods raw read-class notifications — pure IPC
    /// noise spread evenly across lanes.
    IpcFlood,
    /// The offered load alternates between a busy-hour burst at the
    /// full rate and a quarter-rate lull every 20 simulated seconds.
    DiurnalBurst,
}

impl StormModel {
    /// Every model, in campaign-table order.
    pub const ALL: [StormModel; 3] =
        [StormModel::SuperProducer, StormModel::IpcFlood, StormModel::DiurnalBurst];

    /// Stable snake_case name (JSON column key).
    pub fn name(self) -> &'static str {
        match self {
            StormModel::SuperProducer => "super_producer",
            StormModel::IpcFlood => "ipc_flood",
            StormModel::DiurnalBurst => "diurnal_burst",
        }
    }
}

/// Configuration of one storm-campaign run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StormCampaignConfig {
    /// Run length.
    pub duration: SimDuration,
    /// Offered IPC load as a multiple of the auditor's saturation rate
    /// ([`SATURATION_EVENTS_PER_SEC`]).
    pub load: f64,
    /// Call-processing clients (client 0 is the super-producer).
    pub clients: u32,
    /// Record slots per dynamic table.
    pub slots: u32,
    /// Periodic audit-cycle interval.
    pub audit_period: SimDuration,
    /// Supervision thresholds. The supervision tick runs at
    /// `supervisor.heartbeat.interval`.
    pub supervisor: SupervisorConfig,
    /// The storm traffic model.
    pub model: StormModel,
    /// When the single data corruption is planted. Deliberately *off*
    /// the audit-period grid: latency then measures a realistic wait
    /// from mid-cycle, not the degenerate corrupt-then-immediately-
    /// audit alignment.
    pub corrupt_at: SimDuration,
    /// Resource isolation on/off: bounded fair IPC, audit CPU budget,
    /// starvation-aware supervision.
    pub isolation: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for StormCampaignConfig {
    fn default() -> Self {
        StormCampaignConfig {
            duration: SimDuration::from_secs(120),
            load: 2.0,
            clients: 4,
            slots: 64,
            audit_period: SimDuration::from_secs(5),
            supervisor: SupervisorConfig::default(),
            model: StormModel::SuperProducer,
            corrupt_at: SimDuration::from_secs(32),
            isolation: true,
            seed: 0x5708_4ABC,
        }
    }
}

/// Result of one storm-campaign run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StormRunResult {
    /// Corruptions planted (always 1 per run).
    pub injected: u64,
    /// Outcome tally: [`RunOutcome::AuditDetection`] when the planted
    /// corruption was detected within the run,
    /// [`RunOutcome::ClientHang`] when it sat undetected to the end.
    pub outcomes: OutcomeCounts,
    /// The planted corruption was detected within the run.
    pub detected: bool,
    /// Detection latency (corruption to published audit finding),
    /// virtual seconds. When undetected this is the honest *floor*
    /// `duration - corrupt_at` (the true latency is at least this).
    pub detection_latency_s: f64,
    /// Audit cycles that ran to completion.
    pub cycles_completed: u64,
    /// In-flight cycles aborted by a (false) audit restart.
    pub cycles_aborted: u64,
    /// Mean completed-cycle duration, virtual seconds.
    pub mean_cycle_s: f64,
    /// Cycles that shed table screens (budget exhausted) — each one
    /// carries an explicit `DegradedCycle` finding.
    pub degraded_cycles: u64,
    /// `DegradedCycle` findings observed across completed cycles (the
    /// zero-fail-silence cross-check for `degraded_cycles`).
    pub degraded_findings: u64,
    /// Table screens shed across all completed cycles.
    pub tables_shed: u64,
    /// Starvation notices recorded with the supervisor.
    pub starved_notes: u64,
    /// Storm events the producers attempted to post.
    pub offered_events: u64,
    /// ... of which the queue accepted.
    pub accepted_events: u64,
    /// ... of which were shed at a producer's own lane bound.
    pub shed_events: u64,
    /// ... of which were refused with a retry hint (producer backed
    /// off until its next tick).
    pub backpressured_events: u64,
    /// Supervisor restarts of the (healthy) audit process — every one
    /// is a watermark-driven false positive, since no process fault is
    /// ever injected.
    pub false_restarts: u64,
    /// Controller-restart escalations requested.
    pub escalations: u64,
    /// Call transactions completed by the background workload.
    pub calls_completed: u64,
}

/// Aggregated result of many runs at one (model, load, isolation)
/// point.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StormCampaignResult {
    /// Runs executed.
    pub runs: u64,
    /// Corruptions planted across all runs.
    pub injected: u64,
    /// Merged outcome tally.
    pub outcomes: OutcomeCounts,
    /// Runs whose corruption was detected in time.
    pub detected_runs: u64,
    /// Mean per-run detection latency (floors included for undetected
    /// runs — an underestimate exactly when detection failed).
    pub detection_latency_s: f64,
    /// Worst per-run detection latency (or floor).
    pub max_detection_latency_s: f64,
    /// Mean completed-cycle duration across runs.
    pub mean_cycle_s: f64,
    /// Summed counters across runs.
    pub cycles_completed: u64,
    /// Aborted in-flight cycles across runs.
    pub cycles_aborted: u64,
    /// Degraded cycles across runs.
    pub degraded_cycles: u64,
    /// Shed table screens across runs.
    pub tables_shed: u64,
    /// Starvation notices across runs.
    pub starved_notes: u64,
    /// Offered storm events across runs.
    pub offered_events: u64,
    /// Accepted storm events across runs.
    pub accepted_events: u64,
    /// Lane-shed storm events across runs.
    pub shed_events: u64,
    /// Backpressured storm events across runs.
    pub backpressured_events: u64,
    /// False audit restarts across runs.
    pub false_restarts: u64,
    /// Escalations across runs.
    pub escalations: u64,
    /// Completed calls across runs.
    pub calls_completed: u64,
}

/// A background call-processing worker (same two-step transaction as
/// the process campaign, at a gentle fixed pace).
#[derive(Debug)]
struct Worker {
    pid: Pid,
    call: Option<u32>,
    completed: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    ClientTick,
    Supervise,
    AuditStart,
    AuditDone { gen: u64 },
    Corrupt,
}

/// Producer ticks: how often storm posts are batched.
const CLIENT_TICK: SimDuration = SimDuration::from_millis(100);

/// The isolation arm's IPC sizing: the queue bound caps one cycle's
/// drain cost at `2048 × EVENT_COST ≈ 1 s`.
fn isolated_ipc() -> IpcConfig {
    IpcConfig { capacity: 2_048, lane_capacity: 512, retry_after: SimDuration::from_millis(10) }
}

/// The no-isolation arm: one giant shared queue (the historical
/// behavior, scaled up so nothing is ever refused within a run).
fn unisolated_ipc() -> IpcConfig {
    IpcConfig {
        capacity: 1 << 22,
        lane_capacity: 1 << 22,
        retry_after: SimDuration::from_millis(10),
    }
}

/// The isolation arm's audit CPU budget: 85 record-screens per second
/// guaranteed. Calibrated against [`isolated_ipc`]: a calm or
/// single-spammer cycle (lane-capped drain plus the 212-record standard
/// schema) fits in one period's refill, while a full aggregate flood
/// (queue-bound drain of 2 048 events = 256 tokens) overruns it, so
/// only *collective* overload degrades cycles — never one rogue client.
fn isolated_budget() -> BudgetConfig {
    BudgetConfig { refill_per_sec: 85, burst: 600 }
}

/// Runs one storm run and returns its result.
pub fn run_once(config: &StormCampaignConfig, seed: u64) -> StormRunResult {
    let mut rng = SimRng::seed_from(seed);
    let mut db =
        Database::build(schema::standard_schema_with_slots(config.slots)).expect("schema builds");
    let mut api = DbApi::with_ipc(if config.isolation { isolated_ipc() } else { unisolated_ipc() });
    let mut registry = ProcessRegistry::new();
    let mut sup = Supervisor::new(config.supervisor);
    let audit_config = AuditConfig {
        periodic_interval: config.audit_period,
        // Hardware-style corruption does not mark the dirty bitmap:
        // scan everything every cycle so detection is decided by the
        // overload dynamics, not the incremental-tracking window.
        incremental: false,
        full_rescan_period: 0,
        // The long-lived victim record must not be swept as an orphan.
        orphan_grace: SimDuration::from_secs(1_000_000),
        budget: config.isolation.then(isolated_budget),
        ..AuditConfig::default()
    };
    let mut audit = AuditProcess::new(audit_config, &db);

    let mut audit_pid = registry.spawn("audit", SimTime::ZERO);
    // Watch the audit's progress watermark: this is the supervision
    // behavior the storm subverts (a busy auditor looks livelocked).
    sup.register(audit_pid, SupervisedRole::Audit, true, SimTime::ZERO);

    let mut workers: Vec<Worker> = (0..config.clients.max(1))
        .map(|i| {
            let pid = registry.spawn(&format!("client-{i}"), SimTime::ZERO);
            api.init_at(pid, SimTime::ZERO);
            sup.register(pid, SupervisedRole::Client, true, SimTime::ZERO);
            Worker { pid, call: None, completed: 0 }
        })
        .collect();

    // The victim: a long-lived valid connection record whose ruled
    // caller_id field the storm-time corruption will flip out of range.
    let victim_pid = workers[0].pid;
    let victim = api
        .alloc_record(&mut db, victim_pid, schema::CONNECTION_TABLE, SimTime::ZERO)
        .expect("victim slot");
    api.write_fld(
        &mut db,
        victim_pid,
        schema::CONNECTION_TABLE,
        victim,
        schema::connection::CALLER_ID,
        1_234,
        SimTime::ZERO,
    )
    .expect("victim field");

    let mut queue: EventQueue<Ev> = EventQueue::new();
    queue.schedule(SimTime::ZERO + CLIENT_TICK, Ev::ClientTick);
    queue.schedule(SimTime::ZERO + config.supervisor.heartbeat.interval, Ev::Supervise);
    queue.schedule(SimTime::ZERO + config.audit_period, Ev::AuditStart);
    queue.schedule(SimTime::ZERO + config.corrupt_at, Ev::Corrupt);

    let end_of_run = SimTime::ZERO + config.duration;
    let mut r = StormRunResult::default();
    let mut cycle_time = Accumulator::new();
    let mut corrupted_at: Option<SimTime> = None;
    let mut detected_at: Option<SimTime> = None;
    // Generation guard: an audit restart aborts the in-flight cycle.
    let mut cycle_gen: u64 = 0;
    let mut inflight: Option<SimTime> = None; // start time of the in-flight cycle

    while let Some(at) = queue.peek_time() {
        if at > end_of_run {
            break;
        }
        let (now, ev) = queue.pop().expect("peeked");
        match ev {
            Ev::ClientTick => {
                for (i, w) in workers.iter_mut().enumerate() {
                    if registry.responsiveness(w.pid) != Some(Responsiveness::Responsive) {
                        continue;
                    }
                    step_call(w, &mut db, &mut api, now);
                    sup.note_progress(w.pid, now);
                    let n = storm_posts(config, i, now, &mut rng);
                    for k in 0..n {
                        r.offered_events += 1;
                        let verdict = api.post_event(
                            w.pid,
                            DbOp::ReadFld,
                            Some(schema::CONNECTION_TABLE),
                            Some((k % u64::from(config.slots)) as u32),
                            now,
                        );
                        match verdict {
                            Enqueue::Accepted => r.accepted_events += 1,
                            Enqueue::Shed => r.shed_events += 1,
                            Enqueue::Backpressure { .. } => {
                                // Honor the hint: drop the rest of this
                                // tick's batch and retry next tick.
                                r.backpressured_events += 1;
                                break;
                            }
                        }
                    }
                }
                queue.schedule(now + CLIENT_TICK, Ev::ClientTick);
            }
            Ev::Supervise => {
                let before = sup.ledger().restarts.len();
                let report = sup.tick(&mut api, &mut registry, Some(audit.heartbeat_mut()), now);
                let mut audit_restarted = false;
                for &(old, new) in &report.restarts {
                    if old == audit_pid {
                        audit_pid = new;
                        audit_restarted = true;
                    } else if let Some(w) = workers.iter_mut().find(|w| w.pid == old) {
                        w.pid = new;
                        if w.call.take().is_some() {
                            sup.note_dropped_calls(1);
                        }
                        api.init_at(new, now);
                    }
                }
                // No process fault is ever injected: every restart the
                // supervisor performs is a false positive.
                r.false_restarts += (sup.ledger().restarts.len() - before) as u64;
                if audit_restarted {
                    // The in-flight cycle dies with the old incarnation;
                    // its drained-but-unprocessed work is lost.
                    if inflight.take().is_some() {
                        r.cycles_aborted += 1;
                    }
                    cycle_gen += 1;
                    audit = AuditProcess::new(audit_config, &db);
                    queue.schedule(now + config.audit_period, Ev::AuditStart);
                }
                queue.schedule(now + config.supervisor.heartbeat.interval, Ev::Supervise);
            }
            Ev::AuditStart => {
                // Cost model: the cycle occupies the auditor for the
                // drain of the current backlog plus the screen work;
                // results publish at completion.
                let backlog = api.events().len() as u64;
                let screens: u64 =
                    db.catalog().tables().map(|tm| u64::from(tm.def.record_count)).sum();
                let cost = EVENT_COST * backlog + RECORD_COST * screens;
                inflight = Some(now);
                queue.schedule(now + cost, Ev::AuditDone { gen: cycle_gen });
            }
            Ev::AuditDone { gen } => {
                if gen != cycle_gen {
                    continue; // aborted incarnation
                }
                let started = inflight.take().expect("cycle in flight");
                let report = audit.run_cycle(&mut db, &mut api, &mut registry, now);
                r.cycles_completed += 1;
                cycle_time.push(now.saturating_since(started).as_secs_f64());
                sup.note_progress(audit_pid, now);
                if report.degraded {
                    sup.note_starved(audit_pid, now);
                }
                r.tables_shed += report.tables_shed.len() as u64;
                r.degraded_findings +=
                    report.by_element(wtnc_audit::AuditElementKind::DegradedCycle).count() as u64;
                if corrupted_at.is_some() && detected_at.is_none() {
                    let caught = report.findings.iter().any(|f| {
                        f.element == wtnc_audit::AuditElementKind::Range
                            && f.table == Some(schema::CONNECTION_TABLE)
                    });
                    if caught {
                        detected_at = Some(now);
                    }
                }
                queue.schedule((started + config.audit_period).max(now), Ev::AuditStart);
            }
            Ev::Corrupt => {
                let rec = RecordRef::new(schema::CONNECTION_TABLE, victim);
                let (off, len) = db.field_extent(rec, schema::connection::CALLER_ID).expect("ext");
                // Flip the MSB of the little-endian u32: far outside the
                // 0..=9_999 range rule.
                db.flip_bit(off + len - 1, 7).expect("in region");
                corrupted_at = Some(now);
                r.injected += 1;
            }
        }
    }

    r.detected = detected_at.is_some();
    if let Some(t0) = corrupted_at {
        let latency = match detected_at {
            Some(t) => t.saturating_since(t0),
            None => end_of_run.saturating_since(t0),
        };
        r.detection_latency_s = latency.as_secs_f64();
        r.outcomes.record(if r.detected {
            RunOutcome::AuditDetection
        } else {
            RunOutcome::ClientHang
        });
    }
    r.degraded_cycles = audit.degraded_cycles();
    r.starved_notes = sup.ledger().starved_notes;
    r.escalations = sup.ledger().controller_restarts_requested;
    r.mean_cycle_s = cycle_time.mean();
    r.calls_completed = workers.iter().map(|w| w.completed).sum();
    r
}

/// How many storm events client `i` posts this tick under the model.
fn storm_posts(config: &StormCampaignConfig, i: usize, now: SimTime, rng: &mut SimRng) -> u64 {
    let per_tick = config.load * SATURATION_EVENTS_PER_SEC * CLIENT_TICK.as_secs_f64();
    let share = match config.model {
        StormModel::SuperProducer => {
            if i == 0 {
                per_tick
            } else {
                0.0
            }
        }
        StormModel::IpcFlood => per_tick / f64::from(config.clients.max(1)),
        StormModel::DiurnalBurst => {
            // 20 s busy-hour bursts alternating with quarter-rate lulls.
            let phase = (now.as_secs_f64() / 20.0) as u64 % 2;
            let factor = if phase == 0 { 1.0 } else { 0.25 };
            factor * per_tick / f64::from(config.clients.max(1))
        }
    };
    // Dither the fractional part deterministically so low rates still
    // average out correctly.
    let whole = share as u64;
    whole + u64::from(rng.unit() < share.fract())
}

/// Advances one worker's two-step call transaction (same shape as the
/// process campaign's workload).
fn step_call(w: &mut Worker, db: &mut Database, api: &mut DbApi, now: SimTime) {
    let table = schema::CONNECTION_TABLE;
    match w.call {
        None => {
            let Ok(index) = api.alloc_record(db, w.pid, table, now) else {
                return;
            };
            let rec = RecordRef::new(table, index);
            if api.lock(rec, w.pid, now).is_err() {
                let _ = api.free_record(db, w.pid, table, index, now);
                return;
            }
            let _ = api.write_fld(
                db,
                w.pid,
                table,
                index,
                schema::connection::CALLER_ID,
                u64::from(w.pid.0) % 9_999,
                now,
            );
            w.call = Some(index);
        }
        Some(index) => {
            let rec = RecordRef::new(table, index);
            let _ = api.read_fld(db, w.pid, table, index, schema::connection::CALLER_ID, now);
            api.unlock(rec, w.pid);
            let _ = api.free_record(db, w.pid, table, index, now);
            w.call = None;
            w.completed += 1;
        }
    }
}

/// Runs `runs` independent runs in parallel and aggregates the results
/// (deterministic: identical to a serial execution).
pub fn run_campaign(config: &StormCampaignConfig, runs: usize) -> StormCampaignResult {
    let mut rng = SimRng::seed_from(config.seed);
    let seeds: Vec<u64> = (0..runs).map(|_| rng.bits()).collect();
    let results =
        crate::parallel::run_seeded(&seeds, crate::parallel::default_workers(), |_, seed| {
            run_once(config, seed)
        });
    let mut total = StormCampaignResult { runs: runs as u64, ..StormCampaignResult::default() };
    let mut latency = Accumulator::new();
    let mut cycle = Accumulator::new();
    for r in results {
        total.injected += r.injected;
        total.outcomes.merge(&r.outcomes);
        total.detected_runs += u64::from(r.detected);
        latency.push(r.detection_latency_s);
        if r.cycles_completed > 0 {
            cycle.push(r.mean_cycle_s);
        }
        total.cycles_completed += r.cycles_completed;
        total.cycles_aborted += r.cycles_aborted;
        total.degraded_cycles += r.degraded_cycles;
        total.tables_shed += r.tables_shed;
        total.starved_notes += r.starved_notes;
        total.offered_events += r.offered_events;
        total.accepted_events += r.accepted_events;
        total.shed_events += r.shed_events;
        total.backpressured_events += r.backpressured_events;
        total.false_restarts += r.false_restarts;
        total.escalations += r.escalations;
        total.calls_completed += r.calls_completed;
    }
    total.detection_latency_s = latency.mean();
    total.max_detection_latency_s = latency.max().unwrap_or(0.0);
    total.mean_cycle_s = cycle.mean();
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storm(model: StormModel, load: f64, isolation: bool) -> StormCampaignConfig {
        StormCampaignConfig { model, load, isolation, ..StormCampaignConfig::default() }
    }

    #[test]
    fn every_offered_event_is_accounted() {
        for model in StormModel::ALL {
            let r = run_once(&storm(model, 4.0, true), 3);
            assert!(r.offered_events > 0, "{model:?}");
            assert_eq!(
                r.offered_events,
                r.accepted_events + r.shed_events + r.backpressured_events,
                "{model:?}: every post gets exactly one verdict"
            );
            assert_eq!(r.outcomes.total(), r.injected, "{model:?}: outcome accounting");
        }
    }

    #[test]
    fn degraded_cycles_are_never_silent() {
        let r = run_once(&storm(StormModel::IpcFlood, 4.0, true), 5);
        assert!(r.degraded_cycles > 0, "aggregate flood at 4x saturation must shed screens: {r:?}");
        assert_eq!(
            r.degraded_cycles, r.degraded_findings,
            "every degraded cycle surfaces an explicit finding"
        );
        assert_eq!(
            r.starved_notes, r.degraded_cycles,
            "every degraded cycle files a starvation notice"
        );
        // Shedding keeps the hot table screened: detection still lands.
        assert!(r.detected, "degradation must not blind the auditor: {r:?}");
    }

    #[test]
    fn super_producer_is_shed_without_evicting_the_quiet_clients() {
        let r = run_once(&storm(StormModel::SuperProducer, 4.0, true), 7);
        assert!(r.shed_events + r.backpressured_events > 0, "past saturation the lane caps bite");
        // The background workload keeps completing calls throughout.
        assert!(r.calls_completed > 0);
        // Fairness contains a single spammer at its lane *before* the
        // spam can eat the audit budget: no degraded cycles, unlike the
        // aggregate flood at the same offered load.
        assert_eq!(r.degraded_cycles, 0, "one rogue lane must not degrade the audit: {r:?}");
    }

    #[test]
    fn isolation_bounds_detection_latency_under_storm() {
        let with = run_once(&storm(StormModel::SuperProducer, 4.0, true), 11);
        let without = run_once(&storm(StormModel::SuperProducer, 4.0, false), 11);
        assert!(with.detected, "isolated auditor detects mid-storm: {with:?}");
        assert!(
            with.false_restarts == 0,
            "no watermark-driven false restarts with isolation: {with:?}"
        );
        assert!(
            without.false_restarts > 0,
            "without isolation the busy auditor is condemned as livelocked: {without:?}"
        );
        assert!(
            !without.detected || without.detection_latency_s > 2.0 * with.detection_latency_s,
            "without isolation detection is late or never: with={} without={} (detected={})",
            with.detection_latency_s,
            without.detection_latency_s,
            without.detected,
        );
    }

    #[test]
    fn unloaded_baseline_detects_promptly_in_both_arms() {
        for isolation in [true, false] {
            let r = run_once(&storm(StormModel::SuperProducer, 0.1, isolation), 13);
            assert!(r.detected, "isolation={isolation}: {r:?}");
            assert!(r.false_restarts == 0, "isolation={isolation}: {r:?}");
            assert!(
                r.detection_latency_s <= 2.0 * config_period_s(),
                "unloaded detection within ~2 cycles: {r:?}"
            );
        }
    }

    fn config_period_s() -> f64 {
        StormCampaignConfig::default().audit_period.as_secs_f64()
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_once(&storm(StormModel::DiurnalBurst, 3.0, true), 77);
        let b = run_once(&storm(StormModel::DiurnalBurst, 3.0, true), 77);
        assert_eq!(a, b);
    }

    #[test]
    fn campaign_aggregates_across_runs() {
        let r = run_campaign(&storm(StormModel::IpcFlood, 2.0, true), 3);
        assert_eq!(r.runs, 3);
        assert_eq!(r.outcomes.total(), r.injected);
        assert_eq!(r.detected_runs, 3, "{r:?}");
        assert!(r.max_detection_latency_s >= r.detection_latency_s);
    }
}
