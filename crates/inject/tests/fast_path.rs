//! Fast-path regression tests: the predecoded engine must observe
//! every text-segment injection, including corruptions landing inside
//! an assertion block whose decoded slots and fused plan are already
//! cached — and campaign classifications must be bit-identical across
//! the two engines.

use wtnc_inject::text_campaign::{run_one, InjectionTarget, TextCampaignConfig};
use wtnc_inject::ErrorModel;
use wtnc_isa::{ExceptionKind, Machine, MachineConfig, NoSyscalls, StepOutcome};
use wtnc_pecos::instrument_source;

/// A corruption landing inside an already-cached (decoded + fused)
/// assertion block is observed by that block's very next execution:
/// both engines raise the same illegal-instruction exception at the
/// corrupted word.
#[test]
fn warmed_assertion_block_observes_interior_injection() {
    // One protected CFI (the loop bne); its 9-instruction assertion
    // block executes once per iteration.
    let src = r#"
    start:
        movi r9, 4
    loop:
        addi r9, r9, -1
        add  r1, r1, r9
        bne  r9, r0, loop
        halt
    "#;
    let inst = instrument_source(src).unwrap();
    assert_eq!(inst.meta.assertion_ranges.len(), 1);
    let (start, end) = inst.meta.assertion_ranges[0];
    assert_eq!(end - start, 9, "branch blocks are nine instructions");

    // Reference run to learn the total step count.
    let mut ref_m = Machine::load(&inst.program, MachineConfig::default());
    inst.meta.install_fast_path(&mut ref_m);
    ref_m.spawn_thread(inst.program.entry);
    ref_m.run(&mut NoSyscalls, 1_000_000);
    let total = ref_m.total_steps();
    assert!(ref_m.fused_supersteps() >= 4, "every loop iteration should fuse");

    // Drive both engines: warm for half the program (several block
    // executions), inject an undecodable word over the block's DIVU,
    // then continue. The stale Hot slot (and stale fused plan) must
    // not survive the store.
    let drive = |fast_path: bool| {
        let mut m =
            Machine::load(&inst.program, MachineConfig { fast_path, ..MachineConfig::default() });
        if fast_path {
            inst.meta.install_fast_path(&mut m);
        }
        let t = m.spawn_thread(inst.program.entry);
        let warm = m.run(&mut NoSyscalls, total / 2);
        assert!(matches!(warm, StepOutcome::Executed { .. }), "warm-up must not finish the run");
        m.store_text((end - 1) as usize, 0xFF00_0000); // poison the DIVU
        let out = m.run(&mut NoSyscalls, 1_000_000);
        let regs: Vec<u64> = (0..16).map(|r| m.reg(t, r).unwrap()).collect();
        (out, m.thread_state(t), m.pc(t), regs, m.total_steps(), m.fused_supersteps())
    };
    let fast = drive(true);
    let slow = drive(false);

    // The corruption was observed at the corrupted word...
    match fast.0 {
        StepOutcome::Exception(info) => {
            assert_eq!(info.kind, ExceptionKind::IllegalInstruction);
            assert_eq!(info.pc, end - 1, "fault must land on the corrupted word");
        }
        other => panic!("stale cache executed through the corruption: {other:?}"),
    }
    // ...the warm phase really did fuse the block...
    assert!(fast.5 > 0, "warm phase never fused the assertion block");
    // ...and the two engines agree on everything observable.
    assert_eq!(
        (&fast.0, &fast.1, &fast.2, &fast.3, &fast.4),
        (&slow.0, &slow.1, &slow.2, &slow.3, &slow.4),
        "engines diverged after an interior block injection"
    );
}

/// Campaign classifications are identical on both engines for a grid
/// of seeds across both targeting modes — the fast path changes
/// wall-clock only, never outcomes. Directed-CFI runs corrupt exactly
/// the input word of a warmed fused plan; random-text runs also land
/// inside assertion blocks and target tables.
#[test]
fn run_one_outcomes_identical_across_engines() {
    for &target in &[InjectionTarget::DirectedCfi, InjectionTarget::RandomText] {
        for &model in &[ErrorModel::Datainf, ErrorModel::Dataof] {
            let config = |fast_path: bool| TextCampaignConfig {
                pecos: true,
                audits: false,
                model,
                target,
                runs: 1,
                threads: 2,
                iterations: 6,
                audit_every_steps: 2_000,
                step_budget: 150_000,
                seed: 0,
                fast_path,
            };
            for seed in 0..20u64 {
                let fast = run_one(&config(true), seed);
                let slow = run_one(&config(false), seed);
                assert_eq!(fast, slow, "outcome diverged for {target:?}/{model:?} seed {seed}");
            }
        }
    }
}
