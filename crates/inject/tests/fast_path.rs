//! Fast-path regression tests: the predecoded engine must observe
//! every text-segment injection, including corruptions landing inside
//! an assertion block whose decoded slots and fused plan are already
//! cached — and campaign classifications must be bit-identical across
//! the two engines.

use proptest::prelude::*;
use wtnc_inject::text_campaign::{run_one, InjectionTarget, TextCampaignConfig};
use wtnc_inject::ErrorModel;
use wtnc_isa::{Engine, ExceptionKind, Machine, MachineConfig, NoSyscalls, StepOutcome};
use wtnc_pecos::instrument_source;

/// A corruption landing inside an already-cached (decoded + fused)
/// assertion block is observed by that block's very next execution:
/// both engines raise the same illegal-instruction exception at the
/// corrupted word.
#[test]
fn warmed_assertion_block_observes_interior_injection() {
    // One protected CFI (the loop bne); its 9-instruction assertion
    // block executes once per iteration.
    let src = r#"
    start:
        movi r9, 4
    loop:
        addi r9, r9, -1
        add  r1, r1, r9
        bne  r9, r0, loop
        halt
    "#;
    let inst = instrument_source(src).unwrap();
    assert_eq!(inst.meta.assertion_ranges.len(), 1);
    let (start, end) = inst.meta.assertion_ranges[0];
    assert_eq!(end - start, 9, "branch blocks are nine instructions");

    // Reference run to learn the total step count.
    let mut ref_m = Machine::load(&inst.program, MachineConfig::default());
    inst.meta.install_fast_path(&mut ref_m);
    ref_m.spawn_thread(inst.program.entry);
    ref_m.run(&mut NoSyscalls, 1_000_000);
    let total = ref_m.total_steps();
    assert!(ref_m.fused_supersteps() >= 4, "every loop iteration should fuse");

    // Drive both engines: warm for half the program (several block
    // executions), inject an undecodable word over the block's DIVU,
    // then continue. The stale Hot slot (and stale fused plan) must
    // not survive the store.
    let drive = |fast_path: bool| {
        let mut m =
            Machine::load(&inst.program, MachineConfig { fast_path, ..MachineConfig::default() });
        if fast_path {
            inst.meta.install_fast_path(&mut m);
        }
        let t = m.spawn_thread(inst.program.entry);
        let warm = m.run(&mut NoSyscalls, total / 2);
        assert!(matches!(warm, StepOutcome::Executed { .. }), "warm-up must not finish the run");
        m.store_text((end - 1) as usize, 0xFF00_0000); // poison the DIVU
        let out = m.run(&mut NoSyscalls, 1_000_000);
        let regs: Vec<u64> = (0..16).map(|r| m.reg(t, r).unwrap()).collect();
        (out, m.thread_state(t), m.pc(t), regs, m.total_steps(), m.fused_supersteps())
    };
    let fast = drive(true);
    let slow = drive(false);

    // The corruption was observed at the corrupted word...
    match fast.0 {
        StepOutcome::Exception(info) => {
            assert_eq!(info.kind, ExceptionKind::IllegalInstruction);
            assert_eq!(info.pc, end - 1, "fault must land on the corrupted word");
        }
        other => panic!("stale cache executed through the corruption: {other:?}"),
    }
    // ...the warm phase really did fuse the block...
    assert!(fast.5 > 0, "warm phase never fused the assertion block");
    // ...and the two engines agree on everything observable.
    assert_eq!(
        (&fast.0, &fast.1, &fast.2, &fast.3, &fast.4),
        (&slow.0, &slow.1, &slow.2, &slow.3, &slow.4),
        "engines diverged after an interior block injection"
    );
}

/// Campaign classifications are identical on all three engines for a
/// grid of seeds across both targeting modes — the fast engines change
/// wall-clock only, never outcomes. Directed-CFI runs corrupt exactly
/// the input word of a warmed fused plan; random-text runs also land
/// inside assertion blocks and target tables.
#[test]
fn run_one_outcomes_identical_across_engines() {
    for &target in &[InjectionTarget::DirectedCfi, InjectionTarget::RandomText] {
        for &model in &[ErrorModel::Datainf, ErrorModel::Dataof] {
            let config = |engine: Engine| TextCampaignConfig {
                pecos: true,
                audits: false,
                model,
                target,
                runs: 1,
                threads: 2,
                iterations: 6,
                audit_every_steps: 2_000,
                step_budget: 150_000,
                seed: 0,
                fast_path: engine != Engine::Slow,
                engine: Some(engine),
            };
            for seed in 0..20u64 {
                let slow = run_one(&config(Engine::Slow), seed);
                for engine in [Engine::Decoded, Engine::Superblock] {
                    let fast = run_one(&config(engine), seed);
                    assert_eq!(
                        fast, slow,
                        "outcome diverged for {target:?}/{model:?}/{engine:?} seed {seed}"
                    );
                }
            }
        }
    }
}

/// Source of the chained-superblock proptest program: two nested loops,
/// a call, and a helper — enough CFIs that the superblock engine
/// compiles blocks which chain across several fused assertion
/// supersteps per outer iteration.
const CHAIN_SRC: &str = r#"
    start:
        movi r9, 6
    outer:
        movi r8, 4
    inner:
        add  r1, r1, r8
        addi r8, r8, -1
        bne  r8, r0, inner
        call helper
        addi r9, r9, -1
        bne  r9, r0, outer
        halt
    helper:
        addi r2, r2, 1
        ret
"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A `store_text` landing mid-run in the interior of a warmed,
    /// chained superblock — including words on a fused-superstep
    /// boundary — invalidates every overlapping block, and the machine
    /// then proceeds in lockstep with the slow engine: identical
    /// retired-step counts, PCs, registers, thread states and final
    /// outcome, compared after every `run` chunk.
    #[test]
    fn warmed_chain_observes_midrun_store_text(
        addr_sel in 0usize..1024,
        // 0: anywhere in text; 1: interior of an assertion block;
        // 2: a fused-superstep boundary word (first or last of a block).
        mode in 0u8..3,
        bit in 0u32..32,
        warm_div in 2u64..6,
        chunk in 1u64..96,
    ) {
        let inst = instrument_source(CHAIN_SRC).unwrap();
        prop_assert!(inst.meta.assertion_ranges.len() >= 4);

        // Reference run for the total step count.
        let mut ref_m = Machine::load(&inst.program, MachineConfig::default());
        inst.meta.install_fast_path(&mut ref_m);
        ref_m.spawn_thread(inst.program.entry);
        ref_m.run(&mut NoSyscalls, 1_000_000);
        let total = ref_m.total_steps();
        prop_assert!(ref_m.fused_supersteps() > 10, "chain program must fuse repeatedly");
        prop_assert!(ref_m.superblock_stats().entered > 0, "chain program must enter blocks");

        let ranges = &inst.meta.assertion_ranges;
        let addr = match mode {
            0 => addr_sel % inst.program.len(),
            1 => {
                let (start, end) = ranges[addr_sel % ranges.len()];
                start as usize + addr_sel % (end - start) as usize
            }
            _ => {
                let (start, end) = ranges[addr_sel % ranges.len()];
                if addr_sel % 2 == 0 { start as usize } else { end as usize - 1 }
            }
        };
        let corrupted = inst.program.text[addr] ^ (1 << bit);
        let warm_budget = total / warm_div;

        let load = |engine: Engine| {
            let mut m = Machine::load(
                &inst.program,
                MachineConfig { fast_path: engine != Engine::Slow, engine: Some(engine), ..MachineConfig::default() },
            );
            if engine != Engine::Slow {
                inst.meta.install_fast_path(&mut m);
            }
            m.spawn_thread(inst.program.entry);
            m
        };
        let mut fast = load(Engine::Superblock);
        let mut slow = load(Engine::Slow);

        // Warm phase: both engines retire exactly `warm_budget` steps.
        fast.run(&mut NoSyscalls, warm_budget);
        slow.run(&mut NoSyscalls, warm_budget);
        prop_assert_eq!(fast.total_steps(), warm_budget);
        prop_assert_eq!(slow.total_steps(), warm_budget);
        prop_assert!(
            fast.superblock_stats().entered > 0,
            "warm phase must execute compiled superblocks"
        );

        // Mid-run injection into the warmed text.
        fast.store_text(addr, corrupted);
        slow.store_text(addr, corrupted);

        // Lockstep: drive both engines in `chunk`-step run batches,
        // comparing all observables after every batch. A budget cutoff
        // must land both engines on the same instruction.
        loop {
            let before = fast.total_steps();
            let out_fast = fast.run(&mut NoSyscalls, chunk);
            let retired = fast.total_steps() - before;
            if retired == 0 {
                prop_assert_eq!(slow.run(&mut NoSyscalls, chunk), out_fast);
                break;
            }
            let out_slow = slow.run(&mut NoSyscalls, chunk);
            prop_assert_eq!(slow.total_steps(), fast.total_steps(), "retired-step divergence");
            prop_assert_eq!(&out_fast, &out_slow, "outcome divergence after store_text");
            prop_assert_eq!(fast.pc(0), slow.pc(0), "pc divergence");
            prop_assert_eq!(fast.thread_state(0), slow.thread_state(0), "state divergence");
            for r in 0..16 {
                prop_assert_eq!(fast.reg(0, r), slow.reg(0, r), "register divergence");
            }
            if !matches!(out_fast, StepOutcome::Executed { .. }) {
                break;
            }
        }
    }
}
