//! Property-based tests of the process-fault campaign: seeded
//! determinism of the supervision trace and total classification
//! across the fault-model space.

use proptest::prelude::*;
use wtnc_inject::process_campaign::{run_once, ProcessCampaignConfig, ProcessFaultModel};
use wtnc_inject::RunOutcome;
use wtnc_sim::SimDuration;

fn arb_model() -> impl Strategy<Value = ProcessFaultModel> {
    prop_oneof![
        Just(ProcessFaultModel::ClientCrash),
        Just(ProcessFaultModel::ClientHangWithLock),
        Just(ProcessFaultModel::ClientLivelock),
        Just(ProcessFaultModel::AuditCrash),
        Just(ProcessFaultModel::AuditHang),
    ]
}

fn config(model: ProcessFaultModel, clients: u32) -> ProcessCampaignConfig {
    ProcessCampaignConfig {
        duration: SimDuration::from_secs(200),
        fault_iat: SimDuration::from_secs(25),
        clients,
        model,
        ..ProcessCampaignConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The same seed must reproduce the identical restart/escalation
    /// trace — every `RestartRecord` (pids, cause, condemnation and
    /// restart times, stolen locks) and the full run result.
    #[test]
    fn same_seed_reproduces_the_supervision_trace(
        model in arb_model(),
        clients in 1u32..5,
        seed in any::<u64>(),
    ) {
        let cfg = config(model, clients);
        let a = run_once(&cfg, seed);
        let b = run_once(&cfg, seed);
        prop_assert_eq!(&a.trace, &b.trace, "supervision traces must be identical");
        prop_assert_eq!(a, b, "whole run results must be identical");
    }

    /// Every injected fault classifies into exactly one outcome
    /// (accounting is complete), and the taxonomy is structurally
    /// sound: process faults never produce data-path outcomes, and
    /// measured unavailability only appears alongside restarts or
    /// downtime outcomes.
    #[test]
    fn accounting_is_complete_and_structurally_sound(
        model in arb_model(),
        clients in 1u32..5,
        seed in any::<u64>(),
    ) {
        let r = run_once(&config(model, clients), seed);
        prop_assert_eq!(r.outcomes.total(), r.injected);
        // Data-path outcomes cannot arise from process faults.
        for o in [
            RunOutcome::PecosDetection,
            RunOutcome::FailSilenceViolation,
            RunOutcome::NotManifested,
            RunOutcome::SystemDetection,
        ] {
            prop_assert_eq!(r.outcomes.count(o), 0, "unexpected {} outcome", o);
        }
        // Availability bookkeeping is internally consistent.
        prop_assert!(r.outcomes.availability() >= r.outcomes.coverage() - 1e-9);
        if r.restarts > 0 {
            prop_assert!(r.downtime_s > 0.0, "restarts imply measured downtime");
            prop_assert!(r.unavailable_s > 0.0);
        }
        let down_outcomes: u64 = RunOutcome::ALL
            .iter()
            .filter(|o| o.implies_downtime())
            .map(|&o| r.outcomes.count(o))
            .sum();
        if down_outcomes > 0 {
            prop_assert!(
                r.downtime_s > 0.0,
                "downtime outcomes require a measured downtime interval"
            );
        }
    }
}
