//! Property-based tests of the injection campaigns: total
//! classification and determinism across the whole configuration
//! space.

use proptest::prelude::*;
use wtnc_inject::text_campaign::{run_one, InjectionTarget, TextCampaignConfig};
use wtnc_inject::{ErrorModel, RunOutcome};

fn arb_model() -> impl Strategy<Value = ErrorModel> {
    prop_oneof![
        Just(ErrorModel::Addif),
        Just(ErrorModel::Dataif),
        Just(ErrorModel::Dataof),
        Just(ErrorModel::Datainf),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every combination of protection, model, target and seed
    /// classifies into exactly one Table-7 outcome without panicking,
    /// and the classification is deterministic.
    #[test]
    fn every_run_classifies_and_is_deterministic(
        pecos in any::<bool>(),
        audits in any::<bool>(),
        model in arb_model(),
        directed in any::<bool>(),
        fast_path in any::<bool>(),
        engine in prop_oneof![
            Just(None),
            Just(Some(wtnc_isa::Engine::Slow)),
            Just(Some(wtnc_isa::Engine::Decoded)),
            Just(Some(wtnc_isa::Engine::Superblock)),
        ],
        seed in any::<u64>(),
    ) {
        let config = TextCampaignConfig {
            pecos,
            audits,
            model,
            target: if directed {
                InjectionTarget::DirectedCfi
            } else {
                InjectionTarget::RandomText
            },
            runs: 1,
            threads: 2,
            iterations: 6,
            audit_every_steps: 2_000,
            step_budget: 150_000,
            seed: 0,
            fast_path,
            engine,
        };
        let outcome = run_one(&config, seed);
        prop_assert!(RunOutcome::ALL.contains(&outcome));
        prop_assert_eq!(run_one(&config, seed), outcome, "classification must be deterministic");
        // Structural impossibilities.
        if !pecos {
            prop_assert_ne!(outcome, RunOutcome::PecosDetection);
        }
        if !audits {
            prop_assert_ne!(outcome, RunOutcome::AuditDetection);
        }
    }
}
