//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no crates.io access; this crate keeps the
//! workspace's `harness = false` benchmarks compiling and runnable.
//! Measurement is deliberately simple — a warm-up pass, then a timed
//! batch whose mean is printed per benchmark — with none of
//! criterion's statistics, plots or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id for `function` at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }
}

/// Input-recreation granularity for [`Bencher::iter_batched`]; only a
/// hint in the real API, ignored here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: one per batch.
    LargeInput,
    /// Recreate per iteration.
    PerIteration,
}

/// Units for a group's reported throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (untimed) so one-off setup costs don't dominate.
        std::hint::black_box(routine());
        let iterations = 10u64;
        let start = Instant::now();
        for _ in 0..iterations {
            std::hint::black_box(routine());
        }
        self.total = start.elapsed();
        self.iterations = iterations;
    }

    /// Like [`Bencher::iter`], but re-creates the input with `setup`
    /// (untimed) before each timed call of `routine`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        let iterations = 10u64;
        let mut total = Duration::ZERO;
        for _ in 0..iterations {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
        self.iterations = iterations;
    }

    fn mean(&self) -> Duration {
        if self.iterations == 0 {
            Duration::ZERO
        } else {
            self.total / self.iterations as u32
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    // Holds the `Criterion` borrow for the group's lifetime, matching
    // the real API's exclusive-group discipline.
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed per iteration, for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        routine(&mut bencher, input);
        self.report(&format!("{}/{}", id.function, id.parameter), &bencher);
        self
    }

    /// Runs one unparameterised benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        routine(&mut bencher);
        self.report(name, &bencher);
        self
    }

    fn report(&self, label: &str, bencher: &Bencher) {
        let mean = bencher.mean();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  {:.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  {:.0} B/s", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{}/{label}: {mean:?}/iter{rate}", self.name);
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }
}

/// Opaque-to-the-optimiser identity, mirroring `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
