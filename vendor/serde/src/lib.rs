//! Offline stand-in for the `serde` facade.
//!
//! Re-exports no-op `Serialize` / `Deserialize` derive macros (the
//! workspace only ever derives; it never calls serializer methods) and
//! declares the two marker traits so fully-qualified bounds keep
//! resolving. The derive macros expand to nothing, so no type in the
//! workspace actually implements the traits — which is fine, because
//! nothing requires the bounds either.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
