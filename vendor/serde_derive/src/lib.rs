//! No-op stand-ins for serde's `Serialize` / `Deserialize` derives.
//!
//! The build environment has no access to crates.io, and nothing in
//! this workspace serializes at runtime — the derives exist so types
//! stay annotated for a future wire format. Expanding to an empty
//! token stream keeps every annotation compiling without pulling in
//! the real implementation.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` request.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` request.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
