//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the subset of the proptest DSL the workspace's
//! property tests use: the `proptest!` macro, `prop_assert*!` /
//! `prop_assume!`, numeric-range and tuple strategies, `Just`,
//! `prop_oneof!`, `prop_map`, `prop::collection::vec`, `any::<T>()`
//! and `prop::sample::Index`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics
//! with the generating test's name and the failed assertion. Every
//! test's random stream is seeded from a hash of the test name, so
//! runs are fully deterministic across processes and machines.

pub mod test_runner {
    //! Deterministic case runner and configuration.

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the case out; it is not counted.
        Reject(String),
        /// A `prop_assert*!` failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A failing case with a message.
        pub fn fail(message: String) -> Self {
            TestCaseError::Fail(message)
        }

        /// A rejected (assume-filtered) case.
        pub fn reject(message: String) -> Self {
            TestCaseError::Reject(message)
        }
    }

    /// SplitMix64 random stream backing all strategies.
    ///
    /// Small state, full 64-bit output, and — critically for
    /// reproducibility — no global or time-derived entropy.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A stream seeded with `seed`.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform index in `0..n` (`n` must be nonzero).
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// FNV-1a over the test name: the per-test seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drives one property test: keeps generating cases until `cases`
    /// of them are accepted, panicking on the first failure.
    pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::new(seed_for(name));
        let mut accepted: u32 = 0;
        let mut rejected: u64 = 0;
        while accepted < config.cases {
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > 20 * u64::from(config.cases) + 1024 {
                        panic!("{name}: too many prop_assume! rejections ({rejected})");
                    }
                }
                Err(TestCaseError::Fail(message)) => {
                    panic!("{name}: property failed after {accepted} cases: {message}")
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    ///
    /// Real proptest separates value trees from strategies to support
    /// shrinking; without shrinking a strategy is just a seeded
    /// generator.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `map`.
        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, map }
        }

        /// Erases the strategy type (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone, Copy)]
    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let pick = rng.below(self.options.len());
            self.options[pick].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (*self.start() as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` over primitive types.

    use core::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// A strategy over `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
            crate::sample::Index::new(rng.next_u64() as usize)
        }
    }
}

pub mod sample {
    //! Collection sampling helpers.

    /// A length-independent index: generated once, projected onto any
    /// collection length with [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Wraps a raw draw.
        pub fn new(raw: usize) -> Self {
            Index(raw)
        }

        /// Projects onto `0..len` (`len` must be nonzero).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index(0)");
            self.0 % len
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// A `Vec` of `element` draws with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.start + rng.below(self.size.end - self.size.start);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property-test file imports.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running [`test_runner::run_cases`] with a seed
/// derived from the test's name.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run_cases(&config, stringify!($name), |prop_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), prop_rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Uniform choice among strategies yielding one common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), left, right
        );
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`: {}\n  both: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), left
        );
    }};
}

/// Rejects the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::new(7);
        for _ in 0..1000 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = (-5i16..=5).generate(&mut rng);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = crate::test_runner::TestRng::new(crate::test_runner::seed_for("x"));
        let mut b = crate::test_runner::TestRng::new(crate::test_runner::seed_for("x"));
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_lengths_respect_size_range(
            items in prop::collection::vec(any::<u16>(), 2..7),
            pick in any::<prop::sample::Index>(),
        ) {
            prop_assert!(items.len() >= 2 && items.len() < 7);
            prop_assert!(pick.index(items.len()) < items.len());
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            Just(0u32),
            (1u32..10).prop_map(|x| x * 100),
        ]) {
            prop_assume!(v != 3);
            prop_assert!(v == 0 || (100..1000).contains(&v));
        }
    }
}
